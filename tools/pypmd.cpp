//===- tools/pypmd.cpp - PyPM rewrite-as-a-service daemon ----------------===//
///
/// \file
/// The daemon face of the deployment story: load and lint rule sets once,
/// then serve rewrite requests over a length-prefixed frame protocol
/// (server/Protocol.h) on stdin/stdout or a Unix socket, with per-request
/// budgets, admission control, graceful drain, and a crash-safe plan
/// cache.
///
///   pypmd serve --stdio [serve-options]        frame loop on stdin/stdout
///   pypmd serve --socket <path> [serve-opts]   accept loop on a Unix socket
///   pypmd emit rewrite <rules> <graph> [...]   write a request frame to
///                                              stdout (shell-composable:
///                                              pipe emit | pypmd serve
///                                              --stdio | pypmd decode)
///   pypmd emit ping|shutdown [--seq N]
///   pypmd emit corrupt-body ...                a rewrite frame with one
///                                              body byte flipped (the
///                                              recoverable corruption
///                                              class; smoke tests use it)
///   pypmd decode                               read reply frames from
///                                              stdin, one JSON line each
///   pypmd selftest                             in-process socketpair
///                                              smoke: ping + rewrite +
///                                              over-budget + corrupt +
///                                              shutdown must all round-
///                                              trip; exit 0 iff they do
///
/// serve options:
///   --workers N           worker threads (default 2)
///   --queue N             admission queue capacity (default 16)
///   --plan-cache-dir P    on-disk plan cache directory
///   --aot                 fourth cache tier: build/serve emitted-plan
///                         .pypmso libraries next to each .pypmplan
///                         (needs --plan-cache-dir and a C++ compiler;
///                         best-effort — absent toolchain or failed
///                         builds just serve the interpreter tiers)
///   --ruleset NAME=PATH   preload a named rule set (repeatable)
///   --sticky-quarantine   carry quarantine decisions across requests
///
/// Exit codes: 0 clean serve/selftest pass, 1 startup or protocol
/// failure, 2 usage.
///
//===----------------------------------------------------------------------===//

#include "server/Server.h"
#include "support/Budget.h"
#include "support/Shutdown.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace pypm;
using namespace pypm::server;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: pypmd serve --stdio [--workers N] [--queue N]\n"
      "                   [--plan-cache-dir P] [--aot]\n"
      "                   [--ruleset NAME=PATH]...\n"
      "                   [--sticky-quarantine]\n"
      "       pypmd serve --socket <path> [same options]\n"
      "       pypmd emit rewrite <rules.pypm[bin|plan]|-@NAME> "
      "<graph.pypmg>\n"
      "                   [--seq N] [--deadline-us N] [--max-steps N]\n"
      "                   [--max-mu N] [--max-rewrites N] [--threads N]\n"
      "                   [--matcher=machine|fast|plan|plan-threaded|"
      "plan-aot]\n"
      "                   [--incremental]\n"
      "                   [--batch] [--fault-seed N] [--fault-period N]\n"
      "                   [--search=greedy|best-of-n|beam|auto] "
      "[--beam-width N]\n"
      "                   [--lookahead N] [--search-witnesses N]\n"
      "       pypmd emit ping [--seq N]\n"
      "       pypmd emit shutdown [--seq N]\n"
      "       pypmd emit corrupt-body <rules> <graph> [--seq N]\n"
      "       pypmd emit corrupt-header <rules> <graph>\n"
      "       pypmd decode [--graph]\n"
      "       pypmd selftest\n");
  return 2;
}

bool readFileTo(const char *Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "pypmd: cannot open '%s'\n", Path);
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

std::string jsonEscape(std::string_view S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\', Out += C;
    else if (C == '\n')
      Out += "\\n";
    else if (static_cast<unsigned char>(C) < 0x20)
      Out += ' ';
    else
      Out += C;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// emit
//===----------------------------------------------------------------------===//

/// Builds the RewriteRequest for `emit rewrite` / `emit corrupt-*`.
/// Returns false on bad flags. A rules operand of the form -@NAME makes a
/// named-rule-set request instead of inlining file bytes.
bool parseEmitRewrite(int Argc, char **Argv, RewriteRequest &R) {
  const char *Rules = nullptr, *Graph = nullptr;
  for (int I = 0; I != Argc; ++I) {
    auto Num = [&](const char *Flag, uint64_t &Out) {
      if (std::strcmp(Argv[I], Flag) == 0 && I + 1 != Argc) {
        Out = std::strtoull(Argv[++I], nullptr, 10);
        return true;
      }
      return false;
    };
    uint64_t Threads64 = 0;
    if (Num("--seq", R.Seq) || Num("--deadline-us", R.DeadlineMicros) ||
        Num("--max-steps", R.MaxSteps) || Num("--max-mu", R.MaxMuUnfolds) ||
        Num("--max-rewrites", R.MaxRewrites) ||
        Num("--fault-seed", R.FaultSiteSeed) ||
        Num("--fault-period", R.FaultSitePeriod))
      continue;
    if (Num("--threads", Threads64)) {
      R.Threads = static_cast<uint32_t>(Threads64);
      continue;
    }
    uint64_t U32Tmp = 0;
    if (Num("--beam-width", U32Tmp)) {
      R.BeamWidth = static_cast<uint32_t>(U32Tmp);
      continue;
    }
    if (Num("--lookahead", U32Tmp)) {
      R.Lookahead = static_cast<uint32_t>(U32Tmp);
      continue;
    }
    if (Num("--search-witnesses", U32Tmp)) {
      R.SearchWitnesses = static_cast<uint32_t>(U32Tmp);
      continue;
    }
    if (std::strncmp(Argv[I], "--search=", 9) == 0) {
      const char *V = Argv[I] + 9;
      if (std::strcmp(V, "greedy") == 0)
        R.Search = 0;
      else if (std::strcmp(V, "best-of-n") == 0)
        R.Search = 1;
      else if (std::strcmp(V, "beam") == 0)
        R.Search = 2;
      else if (std::strcmp(V, "auto") == 0)
        R.Search = 3;
      else
        return false;
      continue;
    }
    if (std::strncmp(Argv[I], "--matcher=", 10) == 0) {
      const char *V = Argv[I] + 10;
      if (std::strcmp(V, "machine") == 0)
        R.Matcher = 1;
      else if (std::strcmp(V, "fast") == 0)
        R.Matcher = 2;
      else if (std::strcmp(V, "plan") == 0)
        R.Matcher = 3;
      else if (std::strcmp(V, "plan-threaded") == 0)
        R.Matcher = 4;
      else if (std::strcmp(V, "plan-aot") == 0)
        R.Matcher = 5;
      else
        return false;
    } else if (std::strcmp(Argv[I], "--incremental") == 0)
      R.Incremental = true;
    else if (std::strcmp(Argv[I], "--batch") == 0)
      R.Batch = true;
    else if (!Rules)
      Rules = Argv[I];
    else if (!Graph)
      Graph = Argv[I];
    else
      return false;
  }
  if (!Rules || !Graph)
    return false;
  if (std::strncmp(Rules, "-@", 2) == 0) {
    R.NamedRuleSet = true;
    R.RuleSet = Rules + 2;
  } else if (!readFileTo(Rules, R.RuleSet))
    return false;
  return readFileTo(Graph, R.GraphText);
}

void writeAll(const std::string &Bytes) {
  std::fwrite(Bytes.data(), 1, Bytes.size(), stdout);
  std::fflush(stdout);
}

int cmdEmit(int Argc, char **Argv) {
  if (Argc < 1)
    return usage();
  const char *Kind = Argv[0];
  --Argc, ++Argv;

  if (std::strcmp(Kind, "ping") == 0 || std::strcmp(Kind, "shutdown") == 0) {
    uint64_t Seq = 0;
    if (Argc == 2 && std::strcmp(Argv[0], "--seq") == 0)
      Seq = std::strtoull(Argv[1], nullptr, 10);
    else if (Argc != 0)
      return usage();
    writeAll(frameBytes(/*Request=*/true, Kind[0] == 'p' ? encodePing(Seq)
                                                         : encodeShutdown(Seq)));
    return 0;
  }

  RewriteRequest R;
  if (!parseEmitRewrite(Argc, Argv, R))
    return usage();
  std::string Frame = frameBytes(/*Request=*/true, encodeRewriteRequest(R));

  if (std::strcmp(Kind, "rewrite") == 0) {
    writeAll(Frame);
    return 0;
  }
  if (std::strcmp(Kind, "corrupt-body") == 0) {
    // Flip one body byte (past the 16-byte header): headerCk still passes,
    // bodyCk fails — the recoverable class; the server must reply
    // MalformedRequest and keep the connection alive.
    Frame[16] ^= 0x01;
    writeAll(Frame);
    return 0;
  }
  if (std::strcmp(Kind, "corrupt-header") == 0) {
    // Flip one length byte: headerCk fails — the fatal-but-clean class;
    // the server must drain and close without desyncing.
    Frame[4] ^= 0x01;
    writeAll(Frame);
    return 0;
  }
  return usage();
}

//===----------------------------------------------------------------------===//
// decode
//===----------------------------------------------------------------------===//

void printReply(std::string_view Body, bool DumpGraph) {
  std::optional<FrameType> FT = frameType(Body);
  if (FT == FrameType::PingReply) {
    uint64_t Seq = 0;
    decodeSeqOnly(Body, FrameType::PingReply, Seq);
    std::printf("{\"type\":\"ping\",\"seq\":%llu}\n",
                (unsigned long long)Seq);
    return;
  }
  if (FT == FrameType::ShutdownReply) {
    ShutdownReply SR;
    decodeShutdownReply(Body, SR);
    std::printf(
        "{\"type\":\"shutdown\",\"seq\":%llu,\"served\":%llu,\"shed\":%llu}\n",
        (unsigned long long)SR.Seq, (unsigned long long)SR.Served,
        (unsigned long long)SR.Shed);
    return;
  }
  RewriteReply Rep;
  std::string Err;
  if (FT != FrameType::RewriteReply || !decodeRewriteReply(Body, Rep, Err)) {
    std::printf("{\"type\":\"garbage\",\"error\":\"%s\"}\n",
                jsonEscape(Err).c_str());
    return;
  }
  std::printf("{\"type\":\"rewrite\",\"seq\":%llu,\"status\":\"%s\"",
              (unsigned long long)Rep.Seq,
              std::string(serverStatusName(Rep.Status)).c_str());
  if (Rep.Status == ServerStatus::Ok) {
    std::printf(
        ",\"engine\":\"%s\",\"reason\":\"%s\",\"cache\":\"%s\","
        "\"passes\":%llu,\"fired\":%llu,\"matches\":%llu,\"nodes\":%llu,"
        "\"faults\":%llu,\"quarantined\":%zu",
        std::string(engineStatusName(
                        static_cast<EngineStatusCode>(Rep.EngineCode)))
            .c_str(),
        std::string(budgetReasonName(static_cast<BudgetReason>(Rep.Reason)))
            .c_str(),
        std::string(cacheSourceName(Rep.Cache)).c_str(),
        (unsigned long long)Rep.Passes, (unsigned long long)Rep.Fired,
        (unsigned long long)Rep.Matches, (unsigned long long)Rep.LiveNodes,
        (unsigned long long)Rep.FaultsAbsorbed, Rep.Quarantined.size());
  }
  if (!Rep.Message.empty())
    std::printf(",\"message\":\"%s\"", jsonEscape(Rep.Message).c_str());
  std::printf("}\n");
  if (DumpGraph && !Rep.GraphText.empty())
    std::fwrite(Rep.GraphText.data(), 1, Rep.GraphText.size(), stderr);
}

int cmdDecode(int Argc, char **Argv) {
  bool DumpGraph = false;
  for (int I = 0; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--graph") == 0)
      DumpGraph = true;
    else
      return usage();
  }
  for (;;) {
    std::string Body;
    FrameStatus FS = readFrame(/*Fd=*/0, /*Request=*/false, Body);
    if (FS == FrameStatus::Eof)
      return 0;
    if (FS != FrameStatus::Ok) {
      std::fprintf(stderr, "pypmd: reply stream error: %s\n",
                   std::string(frameStatusName(FS)).c_str());
      return 1;
    }
    printReply(Body, DumpGraph);
  }
}

//===----------------------------------------------------------------------===//
// serve
//===----------------------------------------------------------------------===//

bool parseServeOptions(int Argc, char **Argv, ServerOptions &SO,
                       const char *&Socket, bool &Stdio) {
  for (int I = 0; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--stdio") == 0)
      Stdio = true;
    else if (std::strcmp(Argv[I], "--socket") == 0 && I + 1 != Argc)
      Socket = Argv[++I];
    else if (std::strcmp(Argv[I], "--workers") == 0 && I + 1 != Argc)
      SO.Workers =
          static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else if (std::strcmp(Argv[I], "--queue") == 0 && I + 1 != Argc)
      SO.QueueCapacity = std::strtoull(Argv[++I], nullptr, 10);
    else if (std::strcmp(Argv[I], "--plan-cache-dir") == 0 && I + 1 != Argc)
      SO.Cache.Dir = Argv[++I];
    else if (std::strcmp(Argv[I], "--aot") == 0)
      SO.Cache.Aot = true;
    else if (std::strcmp(Argv[I], "--sticky-quarantine") == 0)
      SO.StickyQuarantine = true;
    else if (std::strcmp(Argv[I], "--ruleset") == 0 && I + 1 != Argc) {
      const char *Spec = Argv[++I];
      const char *Eq = std::strchr(Spec, '=');
      if (!Eq || Eq == Spec)
        return false;
      SO.NamedRuleSets.emplace_back(std::string(Spec, Eq),
                                    std::string(Eq + 1));
    } else
      return false;
  }
  return Stdio != (Socket != nullptr); // exactly one transport
}

int serveSocket(Server &Srv, const char *Path) {
  int Listen = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listen < 0) {
    std::perror("pypmd: socket");
    return 1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (std::strlen(Path) >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "pypmd: socket path too long\n");
    return 1;
  }
  std::strcpy(Addr.sun_path, Path);
  ::unlink(Path); // stale socket from a previous run
  if (::bind(Listen, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Listen, 16) < 0) {
    std::perror("pypmd: bind/listen");
    ::close(Listen);
    return 1;
  }

  const ShutdownFlag &Flag = ShutdownFlag::global();
  std::vector<std::thread> Conns;
  while (!Flag.requested()) {
    int Fd = ::accept(Listen, nullptr, nullptr);
    if (Fd < 0)
      continue; // EINTR (SIGTERM) lands here; loop re-checks the flag
    Conns.emplace_back([&Srv, Fd, &Flag] {
      Srv.serve(Fd, Fd, &Flag);
      ::close(Fd);
    });
  }
  for (std::thread &T : Conns)
    T.join();
  ::close(Listen);
  ::unlink(Path);
  return 0;
}

int cmdServe(int Argc, char **Argv) {
  ServerOptions SO;
  const char *Socket = nullptr;
  bool Stdio = false;
  if (!parseServeOptions(Argc, Argv, SO, Socket, Stdio))
    return usage();

  // A client that hangs up mid-reply must not kill the daemon: writes
  // fail with EPIPE instead, and the connection is marked dead.
  std::signal(SIGPIPE, SIG_IGN);
  installShutdownSignalHandlers();

  Server Srv(SO);
  std::string Err;
  if (!Srv.preload(Err)) {
    std::fprintf(stderr, "pypmd: %s\n", Err.c_str());
    return 1;
  }
  Srv.start();

  int RC;
  if (Stdio)
    RC = Srv.serve(/*InFd=*/0, /*OutFd=*/1, &ShutdownFlag::global()) ? 0 : 1;
  else
    RC = serveSocket(Srv, Socket);
  Srv.stop();
  std::fprintf(stderr, "pypmd: drained; served=%llu shed=%llu\n",
               (unsigned long long)Srv.served(),
               (unsigned long long)Srv.shed());
  return RC;
}

//===----------------------------------------------------------------------===//
// selftest
//===----------------------------------------------------------------------===//

/// In-process end-to-end smoke over a socketpair: the wire protocol, the
/// worker pool, budgets, corruption recovery, and drain — no filesystem,
/// no subprocesses. CI runs this under every sanitizer.
int cmdSelftest() {
  static const char *RulesSrc =
      "op Add(2);\n"
      "op Zero(0);\n"
      "pattern AddZero(x) { return Add(x, Zero()); }\n"
      "rule elim_add_zero for AddZero(x) { return x; }\n";
  static const char *GraphSrc = "z = Zero() : f32[]\n"
                                "a = Add(z, z) : f32[]\n"
                                "b = Add(a, z) : f32[]\n"
                                "output b\n";

  int Fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) != 0) {
    std::perror("pypmd: socketpair");
    return 1;
  }
  ServerOptions SO;
  SO.Workers = 2;
  Server Srv(SO);
  Srv.start();
  std::thread ServerThread([&] { Srv.serve(Fds[1], Fds[1]); });

  auto Send = [&](std::string Frame) {
    size_t Off = 0;
    while (Off < Frame.size()) {
      ssize_t N = ::write(Fds[0], Frame.data() + Off, Frame.size() - Off);
      if (N <= 0)
        return false;
      Off += static_cast<size_t>(N);
    }
    return true;
  };
  auto Recv = [&](std::string &Body) {
    return readFrame(Fds[0], /*Request=*/false, Body) == FrameStatus::Ok;
  };

  unsigned Failures = 0;
  auto Check = [&](bool Ok, const char *What) {
    if (!Ok) {
      ++Failures;
      std::fprintf(stderr, "pypmd selftest: FAIL %s\n", What);
    }
  };

  RewriteRequest R;
  R.Seq = 1;
  R.RuleSet = RulesSrc;
  R.GraphText = GraphSrc;

  // 1. Plain rewrite completes and fires both AddZero rewrites.
  Send(frameBytes(true, encodeRewriteRequest(R)));
  // 2. Over-budget rewrite: 1-step ceiling => BudgetExhausted(Steps).
  RewriteRequest OB = R;
  OB.Seq = 2;
  OB.MaxSteps = 1;
  Send(frameBytes(true, encodeRewriteRequest(OB)));
  // 3. Corrupt body: MalformedRequest, connection survives.
  {
    std::string Frame = frameBytes(true, encodeRewriteRequest(R));
    Frame[16] ^= 0x01;
    Send(Frame);
  }
  // 4. Ping still answered after the corruption.
  Send(frameBytes(true, encodePing(7)));
  // 5. Shutdown: drain + ShutdownReply.
  Send(frameBytes(true, encodeShutdown(9)));

  unsigned Oks = 0, Exhausted = 0, Malformed = 0, Pings = 0, Shutdowns = 0;
  std::string Body;
  while (Recv(Body)) {
    std::optional<FrameType> FT = frameType(Body);
    if (FT == FrameType::PingReply) {
      ++Pings;
      continue;
    }
    if (FT == FrameType::ShutdownReply) {
      ++Shutdowns;
      break;
    }
    RewriteReply Rep;
    std::string Err;
    if (!decodeRewriteReply(Body, Rep, Err)) {
      Check(false, "undecodable reply");
      continue;
    }
    if (Rep.Status == ServerStatus::MalformedRequest)
      ++Malformed;
    else if (Rep.Status == ServerStatus::Ok &&
             static_cast<EngineStatusCode>(Rep.EngineCode) ==
                 EngineStatusCode::BudgetExhausted)
      ++Exhausted;
    else if (Rep.Status == ServerStatus::Ok &&
             static_cast<EngineStatusCode>(Rep.EngineCode) ==
                 EngineStatusCode::Completed &&
             Rep.Fired >= 1)
      ++Oks;
    else
      Check(false, "unexpected reply disposition");
  }
  ServerThread.join();
  Srv.stop();
  ::close(Fds[0]);
  ::close(Fds[1]);

  Check(Oks == 1, "completed rewrite");
  Check(Exhausted == 1, "budget-exhausted rewrite");
  Check(Malformed == 1, "malformed-frame recovery");
  Check(Pings == 1, "ping after corruption");
  Check(Shutdowns == 1, "shutdown reply");
  if (Failures == 0)
    std::fprintf(stderr, "pypmd selftest: ok (served=%llu)\n",
                 (unsigned long long)Srv.served());
  return Failures == 0 ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  const char *Cmd = Argv[1];
  if (std::strcmp(Cmd, "serve") == 0)
    return cmdServe(Argc - 2, Argv + 2);
  if (std::strcmp(Cmd, "emit") == 0)
    return cmdEmit(Argc - 2, Argv + 2);
  if (std::strcmp(Cmd, "decode") == 0)
    return cmdDecode(Argc - 2, Argv + 2);
  if (std::strcmp(Cmd, "selftest") == 0)
    return cmdSelftest();
  return usage();
}
