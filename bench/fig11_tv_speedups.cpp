//===- bench/fig11_tv_speedups.cpp - Figure 11 reproduction --------------------===//
///
/// \file
/// Paper Figure 11: the same speedup histograms on the TorchVision suite.
/// Vision models contain no attention, so the FMHA-only distribution
/// collapses onto 1.0× — the paper shows exactly this — while the Epilog
/// rewrite fuses every Conv/GEMM + pointwise block.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace pypm;
using namespace pypm::bench;

int main() {
  std::printf("=== Figure 11: TorchVision suite, relative speedup per "
              "optimization set ===\n\n");
  std::printf("%-20s %10s | %8s %8s %8s | %5s\n", "model", "base(ms)",
              "fmha", "epilog", "both", "#epi");

  std::vector<double> Fmha, Epilog, Both;
  for (const models::ModelEntry &Model : models::tvSuite()) {
    ConfigResult None = runConfig(Model, opt::OptConfig::None);
    ConfigResult F = runConfig(Model, opt::OptConfig::FmhaOnly);
    ConfigResult E = runConfig(Model, opt::OptConfig::EpilogOnly);
    ConfigResult B = runConfig(Model, opt::OptConfig::Both);
    double SF = None.Seconds / F.Seconds;
    double SE = None.Seconds / E.Seconds;
    double SB = None.Seconds / B.Seconds;
    Fmha.push_back(SF);
    Epilog.push_back(SE);
    Both.push_back(SB);
    std::printf("%-20s %10.3f | %7.3fx %7.3fx %7.3fx | %5llu\n",
                Model.Name.c_str(), None.Seconds * 1e3, SF, SE, SB,
                (unsigned long long)E.Fired);
  }

  printHistogram("FMHA only: relative speedup distribution", Fmha);
  printHistogram("Epilog only: relative speedup distribution", Epilog);
  printHistogram("FMHA + Epilog: relative speedup distribution", Both);

  std::printf("\nExpected shape (paper): FMHA-only pinned at 1.0x (no "
              "attention to match in CNNs);\nEpilog and Both coincide and "
              "deliver the suite's gains.\n");
  return 0;
}
