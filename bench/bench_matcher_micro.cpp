//===- bench/bench_matcher_micro.cpp - Matcher micro-benchmarks ----------------===//
///
/// \file
/// google-benchmark suite for the backtracking machine itself: how cost
/// scales with pattern/term size, alternate count (backtracking), μ
/// recursion depth, nonlinear equality checks (O(1) via hash-consing),
/// guard evaluation, serialization, and the full MHA pattern against a
/// transformer layer's term view.
///
//===----------------------------------------------------------------------===//

#include "dsl/Sema.h"
#include "graph/TermView.h"
#include "match/Declarative.h"
#include "match/FastMatcher.h"
#include "match/Machine.h"
#include "models/Transformers.h"
#include "opt/StdPatterns.h"
#include "pattern/Serializer.h"
#include "plan/PlanBuilder.h"
#include "plan/Profile.h"
#include "rewrite/RewriteEngine.h"
#include "support/Budget.h"

#include <benchmark/benchmark.h>

using namespace pypm;
using namespace pypm::match;
using namespace pypm::pattern;

namespace {

/// Fixture state shared by one benchmark run.
struct Ctx {
  term::Signature Sig;
  term::TermArena Arena{Sig};
  PatternArena PA;

  term::OpId U, B, C;
  Ctx() {
    U = Sig.addOp("u", 1, 1, "unary_pointwise");
    B = Sig.addOp("b", 2);
    C = Sig.addOp("c", 0);
  }

  term::TermRef chain(int Depth) {
    term::TermRef T = Arena.leaf(C);
    for (int I = 0; I != Depth; ++I)
      T = Arena.make(U, {T});
    return T;
  }

  term::TermRef tree(int Depth) {
    if (Depth == 0)
      return Arena.leaf(C);
    term::TermRef Sub = tree(Depth - 1);
    return Arena.make(B, {Sub, Sub});
  }
};

void BM_MatchLinearChain(benchmark::State &State) {
  Ctx X;
  int Depth = static_cast<int>(State.range(0));
  term::TermRef T = X.chain(Depth);
  // u(u(...u(x)...)) with exactly Depth levels.
  const Pattern *P = X.PA.var("x");
  for (int I = 0; I != Depth; ++I)
    P = X.PA.app(X.U, {P});
  for (auto _ : State) {
    MatchResult R = matchPattern(P, T, X.Arena);
    benchmark::DoNotOptimize(R.Status);
  }
  State.SetComplexityN(Depth);
}
BENCHMARK(BM_MatchLinearChain)->RangeMultiplier(4)->Range(4, 1024)
    ->Complexity(benchmark::oN);

void BM_BacktrackThroughAlternates(benchmark::State &State) {
  // N alternates; only the last one matches — worst-case backtracking.
  Ctx X;
  int N = static_cast<int>(State.range(0));
  term::TermRef T = X.tree(4);
  std::vector<const Pattern *> Alts;
  for (int I = 0; I != N - 1; ++I)
    Alts.push_back(X.PA.app(X.U, {X.PA.var("x")})); // wrong root
  Alts.push_back(X.PA.var("x"));
  const Pattern *P = X.PA.altList(Alts);
  for (auto _ : State) {
    MatchResult R = matchPattern(P, T, X.Arena);
    benchmark::DoNotOptimize(R.W.Theta.size());
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_BacktrackThroughAlternates)->RangeMultiplier(4)->Range(4, 256)
    ->Complexity(benchmark::oN);

void BM_RecursiveChainUnfolding(benchmark::State &State) {
  // Fig. 3's UnaryChain against towers of growing depth: one μ-unfold
  // (with binder freshening) per level.
  Ctx X;
  int Depth = static_cast<int>(State.range(0));
  term::TermRef T = X.chain(Depth);
  Symbol Self = Symbol::intern("Chain"), Var = Symbol::intern("x"),
         F = Symbol::intern("f");
  const Pattern *Body =
      X.PA.alt(X.PA.funVarApp(F, {X.PA.recCall(Self, {Var, F})}),
               X.PA.funVarApp(F, {X.PA.var(Var)}));
  const Pattern *Mu = X.PA.mu(Self, {Var, F}, {Var, F}, Body);
  for (auto _ : State) {
    MatchResult R = matchPattern(Mu, T, X.Arena);
    benchmark::DoNotOptimize(R.Stats.MuUnfolds);
  }
  State.SetComplexityN(Depth);
}
BENCHMARK(BM_RecursiveChainUnfolding)->RangeMultiplier(2)->Range(2, 256)
    ->Complexity(benchmark::oNSquared);

void BM_NonlinearEqualityIsO1(benchmark::State &State) {
  // b(x, x) against b(T, T) where T is a full binary tree of the given
  // depth: with hash-consing the equality check is pointer comparison,
  // so cost must NOT grow with subterm size.
  Ctx X;
  term::TermRef Sub = X.tree(static_cast<int>(State.range(0)));
  term::TermRef T = X.Arena.make(X.B, {Sub, Sub});
  const Pattern *P = X.PA.app(X.B, {X.PA.var("x"), X.PA.var("x")});
  for (auto _ : State) {
    MatchResult R = matchPattern(P, T, X.Arena);
    benchmark::DoNotOptimize(R.Status);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_NonlinearEqualityIsO1)->DenseRange(2, 18, 4)
    ->Complexity(benchmark::o1);

void BM_GuardEvaluation(benchmark::State &State) {
  Ctx X;
  term::TermRef T = X.chain(8);
  Subst Theta;
  Theta.bind(Symbol::intern("x"), T);
  FunSubst Phi;
  Symbol Var = Symbol::intern("x");
  const GuardExpr *G = X.PA.binary(
      GuardKind::And,
      X.PA.binary(GuardKind::Eq, X.PA.attr(Var, Symbol::intern("depth")),
                  X.PA.intLit(9)),
      X.PA.binary(GuardKind::Le, X.PA.attr(Var, Symbol::intern("size")),
                  X.PA.binary(GuardKind::Mul, X.PA.intLit(3),
                              X.PA.intLit(4))));
  SubstEnv Env(Theta, Phi, X.Arena);
  for (auto _ : State) {
    GuardEval E = G->evalBool(Env);
    benchmark::DoNotOptimize(E.Value);
  }
}
BENCHMARK(BM_GuardEvaluation);

void BM_DeclarativeEnumeration(benchmark::State &State) {
  // The executable spec is allowed to be slow; measure it anyway.
  Ctx X;
  term::TermRef T = X.tree(static_cast<int>(State.range(0)));
  const Pattern *P =
      X.PA.alt(X.PA.app(X.B, {X.PA.var("x"), X.PA.var("y")}),
               X.PA.app(X.B, {X.PA.var("y"), X.PA.var("x")}));
  for (auto _ : State) {
    EnumResult R = enumerateWitnesses(P, T, X.Arena);
    benchmark::DoNotOptimize(R.Witnesses.size());
  }
}
BENCHMARK(BM_DeclarativeEnumeration)->DenseRange(2, 6, 2);

void BM_MhaPatternOnTransformerTerm(benchmark::State &State) {
  // The production pattern against the real term view of an attention
  // output node (a successful match) and of an FFN node (a failure).
  term::Signature Sig;
  models::TransformerConfig Cfg;
  Cfg.Name = "bench";
  Cfg.Layers = 1;
  Cfg.Hidden = 256;
  auto G = models::buildTransformer(Sig, Cfg);
  auto Fmha = opt::compileFmha(Sig);
  const Pattern *MHA = Fmha->findPattern("MHA")->Pat;
  term::TermArena Arena(Sig);
  graph::TermView View(*G, Arena);

  // Locate the attention output: the MatMul whose input is a Softmax.
  term::TermRef Target = nullptr;
  for (graph::NodeId N : G->topoOrder())
    if (Sig.name(G->op(N)).str() == "MatMul" &&
        Sig.name(G->op(G->inputs(N)[0])).str() == "Softmax")
      Target = View.termFor(N);
  for (auto _ : State) {
    MatchResult R = matchPattern(MHA, Target, Arena);
    benchmark::DoNotOptimize(R.Status);
  }
}
BENCHMARK(BM_MhaPatternOnTransformerTerm);

/// A chain of alternates where θ grows by one binding per level: the
/// reference machine snapshots the whole substitution at every choice
/// point (Σi = O(N²) copying), the production matcher records two trail
/// marks (O(N) total). This is the workload the trail design exists for.
const Pattern *thetaChainPattern(Ctx &X, int Depth) {
  const Pattern *P = X.PA.var("end");
  for (int I = Depth; I-- > 0;) {
    Symbol TV = Symbol::intern("t" + std::to_string(I));
    Symbol VV = Symbol::intern("v" + std::to_string(I));
    term::OpId Trans = X.Sig.getOrAddOp("tr", 1);
    const Pattern *Choice =
        X.PA.alt(X.PA.app(Trans, {X.PA.var(TV)}), X.PA.var(VV));
    P = X.PA.app(X.B, {Choice, P});
  }
  return P;
}

term::TermRef thetaChainTerm(Ctx &X, int Depth) {
  term::TermRef T = X.Arena.leaf(X.C);
  for (int I = 0; I != Depth; ++I)
    T = X.Arena.make(X.B, {X.Arena.leaf(X.C), T});
  return T;
}

void BM_ReferenceMachineThetaSnapshots(benchmark::State &State) {
  Ctx X;
  int Depth = static_cast<int>(State.range(0));
  const Pattern *P = thetaChainPattern(X, Depth);
  term::TermRef T = thetaChainTerm(X, Depth);
  for (auto _ : State) {
    MatchResult R = matchPattern(P, T, X.Arena);
    benchmark::DoNotOptimize(R.Status);
  }
  State.SetComplexityN(Depth);
}
BENCHMARK(BM_ReferenceMachineThetaSnapshots)
    ->RangeMultiplier(2)->Range(16, 512)->Complexity(benchmark::oNSquared);

void BM_FastMatcherThetaTrail(benchmark::State &State) {
  Ctx X;
  int Depth = static_cast<int>(State.range(0));
  const Pattern *P = thetaChainPattern(X, Depth);
  term::TermRef T = thetaChainTerm(X, Depth);
  for (auto _ : State) {
    MatchResult R = FastMatcher::run(P, T, X.Arena);
    benchmark::DoNotOptimize(R.Status);
  }
  State.SetComplexityN(Depth);
}
BENCHMARK(BM_FastMatcherThetaTrail)
    ->RangeMultiplier(2)->Range(16, 512)->Complexity(benchmark::oN);

/// Reference machine vs production matcher on the same recursive-chain
/// workload: quantifies what the snapshot-per-choice-point idealization
/// costs relative to persistent continuations + trail unwinding.
void BM_ReferenceMachineChain(benchmark::State &State) {
  Ctx X;
  int Depth = static_cast<int>(State.range(0));
  term::TermRef T = X.chain(Depth);
  Symbol Self = Symbol::intern("ChainR"), Var = Symbol::intern("x"),
         F = Symbol::intern("f");
  const Pattern *Body =
      X.PA.alt(X.PA.funVarApp(F, {X.PA.recCall(Self, {Var, F})}),
               X.PA.funVarApp(F, {X.PA.var(Var)}));
  const Pattern *Mu = X.PA.mu(Self, {Var, F}, {Var, F}, Body);
  for (auto _ : State) {
    MatchResult R = matchPattern(Mu, T, X.Arena);
    benchmark::DoNotOptimize(R.Status);
  }
}
BENCHMARK(BM_ReferenceMachineChain)->Arg(16)->Arg(64)->Arg(256);

void BM_FastMatcherChain(benchmark::State &State) {
  Ctx X;
  int Depth = static_cast<int>(State.range(0));
  term::TermRef T = X.chain(Depth);
  Symbol Self = Symbol::intern("ChainF"), Var = Symbol::intern("x"),
         F = Symbol::intern("f");
  const Pattern *Body =
      X.PA.alt(X.PA.funVarApp(F, {X.PA.recCall(Self, {Var, F})}),
               X.PA.funVarApp(F, {X.PA.var(Var)}));
  const Pattern *Mu = X.PA.mu(Self, {Var, F}, {Var, F}, Body);
  for (auto _ : State) {
    MatchResult R = FastMatcher::run(Mu, T, X.Arena);
    benchmark::DoNotOptimize(R.Status);
  }
}
BENCHMARK(BM_FastMatcherChain)->Arg(16)->Arg(64)->Arg(256);

/// Budget-governance overhead on the matcher hot path: the identical
/// recursive-chain workload with and without an (unlimited) Budget
/// attached. The governed run adds one relaxed-load poll every 1024
/// machine steps, so it must stay within ~2% of the ungoverned twin —
/// compare these two numbers when touching the poll.
void BM_MatchChainUngoverned(benchmark::State &State) {
  Ctx X;
  term::TermRef T = X.chain(static_cast<int>(State.range(0)));
  Symbol Self = Symbol::intern("ChainU"), Var = Symbol::intern("x"),
         F = Symbol::intern("f");
  const Pattern *Body =
      X.PA.alt(X.PA.funVarApp(F, {X.PA.recCall(Self, {Var, F})}),
               X.PA.funVarApp(F, {X.PA.var(Var)}));
  const Pattern *Mu = X.PA.mu(Self, {Var, F}, {Var, F}, Body);
  for (auto _ : State) {
    MatchResult R = matchPattern(Mu, T, X.Arena);
    benchmark::DoNotOptimize(R.Status);
  }
}
BENCHMARK(BM_MatchChainUngoverned)->Arg(64)->Arg(256);

void BM_MatchChainGoverned(benchmark::State &State) {
  Ctx X;
  term::TermRef T = X.chain(static_cast<int>(State.range(0)));
  Symbol Self = Symbol::intern("ChainG"), Var = Symbol::intern("x"),
         F = Symbol::intern("f");
  const Pattern *Body =
      X.PA.alt(X.PA.funVarApp(F, {X.PA.recCall(Self, {Var, F})}),
               X.PA.funVarApp(F, {X.PA.var(Var)}));
  const Pattern *Mu = X.PA.mu(Self, {Var, F}, {Var, F}, Body);
  Budget Bgt; // no ceilings: pure poll overhead
  match::Machine::Options Opts;
  Opts.EngineBudget = &Bgt;
  for (auto _ : State) {
    MatchResult R = matchPattern(Mu, T, X.Arena, Opts);
    benchmark::DoNotOptimize(R.Status);
  }
}
BENCHMARK(BM_MatchChainGoverned)->Arg(64)->Arg(256);

void BM_SerializeRoundTrip(benchmark::State &State) {
  term::Signature Sig;
  auto Lib = opt::compileEpilog(Sig);
  for (auto _ : State) {
    std::string Bytes = serializeLibrary(*Lib, Sig);
    term::Signature Sig2;
    DiagnosticEngine Diags;
    auto Loaded = deserializeLibrary(Bytes, Sig2, Diags);
    benchmark::DoNotOptimize(Loaded->PatternDefs.size());
  }
}
BENCHMARK(BM_SerializeRoundTrip);

void BM_DslCompile(benchmark::State &State) {
  for (auto _ : State) {
    term::Signature Sig;
    auto Lib = opt::compileEpilog(Sig);
    benchmark::DoNotOptimize(Lib->Rules.size());
  }
}
BENCHMARK(BM_DslCompile);

/// Thread sweep for the parallel discovery phase: matchAll is the pure
/// candidate-discovery workload (no mutation, so the same graph is reused
/// across iterations). Arg = RewriteOptions::NumThreads; 0 is the serial
/// legacy engine. On a single-core container the parallel counts only
/// measure overhead; on real hardware the DiscoverySeconds counter drops
/// roughly linearly until memory bandwidth saturates.
void BM_DiscoveryThreadSweep(benchmark::State &State) {
  term::Signature Sig;
  models::TransformerConfig Cfg;
  Cfg.Name = "sweep";
  Cfg.Layers = 4;
  Cfg.Hidden = 256;
  auto G = models::buildTransformer(Sig, Cfg);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
  rewrite::RewriteOptions Opts;
  Opts.NumThreads = static_cast<unsigned>(State.range(0));
  double Discovery = 0;
  uint64_t Iters = 0;
  for (auto _ : State) {
    rewrite::RewriteStats Stats = rewrite::matchAll(*G, Pipe.Rules, Opts);
    benchmark::DoNotOptimize(Stats.TotalMatches);
    Discovery += Stats.DiscoverySeconds;
    ++Iters;
  }
  State.counters["discovery_s"] =
      benchmark::Counter(Iters ? Discovery / static_cast<double>(Iters) : 0);
}
BENCHMARK(BM_DiscoveryThreadSweep)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Rule-set-size sweep: discovery cost of matchAll over a transformer
/// layer as the rule set grows through the first k StdPatterns entries
/// (every rule-bearing pattern of every library — 7 in total, the way
/// the rewrite engine loads them). The fast matcher runs one per-pattern
/// machine per node, so its cost scales with k; the MatchPlan walks one
/// shared discrimination tree per node, so common root prefixes are paid
/// once. The plan is compiled once outside the loop (the
/// cacheable-artifact configuration) — compare the two discovery_s
/// counters at equal k for the speedup-vs-|RuleSet| curve.
struct RuleSweepCtx {
  term::Signature Sig;
  std::unique_ptr<graph::Graph> G;
  std::vector<std::unique_ptr<pattern::Library>> Libs;
  rewrite::RuleSet All;

  RuleSweepCtx() {
    models::TransformerConfig Cfg;
    Cfg.Name = "rulesweep";
    Cfg.Layers = 2;
    Cfg.Hidden = 256;
    G = models::buildTransformer(Sig, Cfg);
    Libs.push_back(opt::compileFmha(Sig));
    Libs.push_back(opt::compileEpilog(Sig));
    Libs.push_back(opt::compileCublas(Sig));
    Libs.push_back(opt::compileUnaryChain(Sig));
    for (const auto &Lib : Libs)
      All.addLibrary(*Lib);
  }

  rewrite::RuleSet prefix(size_t K) const {
    rewrite::RuleSet R;
    for (size_t I = 0; I != K && I != All.entries().size(); ++I)
      R.addPattern(*All.entries()[I].Pattern, All.entries()[I].Rules);
    return R;
  }
};

void runRuleSweep(benchmark::State &State, rewrite::MatcherKind Kind) {
  RuleSweepCtx X;
  rewrite::RuleSet Rules = X.prefix(static_cast<size_t>(State.range(0)));
  rewrite::RewriteOptions Opts;
  Opts.Matcher = Kind;
  plan::Program Plan;
  if (Kind == rewrite::MatcherKind::Plan) {
    Plan = plan::PlanBuilder::compile(Rules, X.Sig);
    Opts.PrecompiledPlan = &Plan;
  }
  double Discovery = 0;
  uint64_t Iters = 0;
  for (auto _ : State) {
    rewrite::RewriteStats Stats = rewrite::matchAll(*X.G, Rules, Opts);
    benchmark::DoNotOptimize(Stats.TotalMatches);
    Discovery += Stats.DiscoverySeconds;
    ++Iters;
  }
  State.counters["discovery_s"] =
      benchmark::Counter(Iters ? Discovery / static_cast<double>(Iters) : 0);
}

void BM_FastMatchAllRuleSweep(benchmark::State &State) {
  runRuleSweep(State, rewrite::MatcherKind::Fast);
}
BENCHMARK(BM_FastMatchAllRuleSweep)->DenseRange(1, 7, 2)
    ->Unit(benchmark::kMillisecond);

void BM_PlanMatchAllRuleSweep(benchmark::State &State) {
  runRuleSweep(State, rewrite::MatcherKind::Plan);
}
BENCHMARK(BM_PlanMatchAllRuleSweep)->DenseRange(1, 7, 2)
    ->Unit(benchmark::kMillisecond);

/// Profile-recording overhead on the plan matcher's hot path: the
/// identical matchAll workload with and without a plan::Profile attached.
/// Recording adds a per-group/per-edge counter bump inside the tree
/// traversal and one pair of entry-counter increments per attempt, so the
/// recording run must stay within ~5% of its twin — compare these two
/// numbers when touching the recording hooks (same contract as the
/// Ungoverned/Governed budget pair above).
void runPlanDiscovery(benchmark::State &State, bool Record) {
  RuleSweepCtx X;
  rewrite::RuleSet Rules = X.prefix(7);
  plan::Program Plan = plan::PlanBuilder::compile(Rules, X.Sig);
  rewrite::RewriteOptions Opts;
  Opts.Matcher = rewrite::MatcherKind::Plan;
  Opts.PrecompiledPlan = &Plan;
  plan::Profile Prof;
  if (Record)
    Opts.PlanProfile = &Prof;
  double Discovery = 0;
  uint64_t Iters = 0;
  for (auto _ : State) {
    rewrite::RewriteStats Stats = rewrite::matchAll(*X.G, Rules, Opts);
    benchmark::DoNotOptimize(Stats.TotalMatches);
    Discovery += Stats.DiscoverySeconds;
    ++Iters;
  }
  State.counters["discovery_s"] =
      benchmark::Counter(Iters ? Discovery / static_cast<double>(Iters) : 0);
}

void BM_PlanDiscoveryUnprofiled(benchmark::State &State) {
  runPlanDiscovery(State, /*Record=*/false);
}
BENCHMARK(BM_PlanDiscoveryUnprofiled)->Unit(benchmark::kMillisecond);

void BM_PlanDiscoveryRecording(benchmark::State &State) {
  runPlanDiscovery(State, /*Record=*/true);
}
BENCHMARK(BM_PlanDiscoveryRecording)->Unit(benchmark::kMillisecond);

/// Same sweep through the full rewrite loop (graph rebuilt per iteration
/// since rewriting is destructive): end-to-end fixpoint wall-clock per
/// thread count.
void BM_RewriteThreadSweep(benchmark::State &State) {
  rewrite::RewriteOptions Opts;
  Opts.NumThreads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    term::Signature Sig;
    models::TransformerConfig Cfg;
    Cfg.Name = "sweep";
    Cfg.Layers = 2;
    Cfg.Hidden = 256;
    auto G = models::buildTransformer(Sig, Cfg);
    opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
    rewrite::RewriteStats Stats = rewrite::rewriteToFixpoint(
        *G, Pipe.Rules, graph::ShapeInference(), Opts);
    benchmark::DoNotOptimize(Stats.TotalFired);
  }
}
BENCHMARK(BM_RewriteThreadSweep)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace
