//===- bench/BenchCommon.h - Shared figure-harness helpers ------*- C++ -*-===//
///
/// \file
/// Helpers shared by the figure-reproduction harnesses: running one model
/// through one optimization configuration, and rendering the paper's
/// speedup histograms as ASCII.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_BENCH_BENCHCOMMON_H
#define PYPM_BENCH_BENCHCOMMON_H

#include "models/Zoo.h"
#include "opt/StdPatterns.h"
#include "rewrite/RewriteEngine.h"
#include "sim/CostModel.h"

#include <cstdio>
#include <string>
#include <vector>

namespace pypm::bench {

struct ConfigResult {
  double Seconds = 0;       ///< simulated per-iteration inference time
  unsigned Kernels = 0;
  uint64_t Fired = 0;
  double MatchSeconds = 0;  ///< wall-clock inside the matcher
  rewrite::RewriteStats Stats;
};

/// Builds the model fresh, runs the configuration's rewrite pipeline to
/// fixpoint, and measures with the cost model. \p Opts selects the engine
/// variant (the thread-sweep benches pass NumThreads here).
inline ConfigResult runConfig(const models::ModelEntry &Model,
                              opt::OptConfig Config,
                              rewrite::RewriteOptions Opts = {}) {
  term::Signature Sig;
  auto G = Model.Build(Sig);
  opt::Pipeline Pipe = opt::makePipeline(Sig, Config);
  ConfigResult R;
  R.Stats = rewrite::rewriteToFixpoint(*G, Pipe.Rules,
                                       graph::ShapeInference(), Opts);
  R.Fired = R.Stats.TotalFired;
  R.MatchSeconds = R.Stats.MatchSeconds;
  sim::GraphCost C = sim::CostModel().graphCost(*G);
  R.Seconds = C.Seconds;
  R.Kernels = C.Kernels;
  return R;
}

/// The paper's Figures 10/11 histograms: distribution of relative
/// speedups across a suite, one row per bucket.
inline void printHistogram(const char *Title,
                           const std::vector<double> &Speedups) {
  const double Edges[] = {1.00, 1.05, 1.10, 1.15, 1.20, 1.30,
                          1.40, 1.50, 1.75, 2.00};
  constexpr size_t NumEdges = sizeof(Edges) / sizeof(Edges[0]);
  size_t Buckets[NumEdges + 1] = {};
  for (double S : Speedups) {
    size_t B = 0;
    while (B < NumEdges && S >= Edges[B])
      ++B;
    ++Buckets[B];
  }
  std::printf("\n%s (n=%zu)\n", Title, Speedups.size());
  for (size_t B = 0; B <= NumEdges; ++B) {
    if (B == 0)
      std::printf("  %11s<%.2f | ", "", Edges[0]);
    else if (B == NumEdges)
      std::printf("  %10s>=%.2f | ", "", Edges[NumEdges - 1]);
    else
      std::printf("  [%.2f, %.2f) | ", Edges[B - 1], Edges[B]);
    for (size_t I = 0; I != Buckets[B]; ++I)
      std::printf("#");
    std::printf(" %zu\n", Buckets[B]);
  }
}

} // namespace pypm::bench

#endif // PYPM_BENCH_BENCHCOMMON_H
