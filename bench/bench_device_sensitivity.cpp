//===- bench/bench_device_sensitivity.cpp - Simulator robustness check ---------===//
///
/// \file
/// The cost-model simulator stands in for the paper's A6000 (DESIGN.md §1);
/// this harness checks that the Figure 10/11 *conclusions* do not hinge on
/// the particular device constants. Each suite is optimized once and then
/// priced under four device profiles — the A6000-like default, a
/// bandwidth-rich part, a compute-rich part, and a launch-overhead-heavy
/// part — reporting the geometric-mean speedup per configuration.
///
/// Expected invariants across every profile: speedups ≥ 1 everywhere,
/// FMHA+Epilog ≥ each alone, FMHA ≈ 1.0 on the vision suite. Magnitudes
/// shift (launch-heavy devices reward fusion the most; compute-rich ones
/// make the pointwise passes relatively cheaper to begin with), which the
/// table makes visible.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>

using namespace pypm;
using namespace pypm::bench;

namespace {

struct Profile {
  const char *Name;
  sim::DeviceSpec Spec;
};

std::vector<Profile> profiles() {
  sim::DeviceSpec Base = sim::DeviceSpec::a6000Like();
  sim::DeviceSpec BwRich = Base;
  BwRich.Name = "bandwidth-rich";
  BwRich.MemBandwidth *= 3.0;
  sim::DeviceSpec Compute = Base;
  Compute.Name = "compute-rich";
  Compute.PeakFlops *= 3.0;
  sim::DeviceSpec Launchy = Base;
  Launchy.Name = "launch-heavy";
  Launchy.LaunchOverhead *= 10.0;
  return {{"a6000-like", Base},
          {"bandwidth-rich", BwRich},
          {"compute-rich", Compute},
          {"launch-heavy", Launchy}};
}

/// Geometric-mean speedup of one configuration over the baseline graphs,
/// priced with the given device.
double geomeanSpeedup(const std::vector<models::ModelEntry> &Suite,
                      opt::OptConfig Config, const sim::DeviceSpec &Spec) {
  sim::CostModel CM(Spec);
  double LogSum = 0;
  for (const models::ModelEntry &Model : Suite) {
    term::Signature SigBase, SigOpt;
    auto GBase = Model.Build(SigBase);
    auto GOpt = Model.Build(SigOpt);
    opt::Pipeline Pipe = opt::makePipeline(SigOpt, Config);
    rewrite::rewriteToFixpoint(*GOpt, Pipe.Rules, graph::ShapeInference());
    double S = CM.graphCost(*GBase).Seconds / CM.graphCost(*GOpt).Seconds;
    LogSum += std::log(S);
  }
  return std::exp(LogSum / static_cast<double>(Suite.size()));
}

void runSuite(const char *Title,
              const std::vector<models::ModelEntry> &Suite) {
  std::printf("\n--- %s: geometric-mean speedup by device profile ---\n",
              Title);
  std::printf("%-16s | %8s %8s %8s\n", "device", "fmha", "epilog", "both");
  for (const Profile &P : profiles()) {
    double F = geomeanSpeedup(Suite, opt::OptConfig::FmhaOnly, P.Spec);
    double E = geomeanSpeedup(Suite, opt::OptConfig::EpilogOnly, P.Spec);
    double B = geomeanSpeedup(Suite, opt::OptConfig::Both, P.Spec);
    std::printf("%-16s | %7.3fx %7.3fx %7.3fx\n", P.Name, F, E, B);
    if (B + 1e-9 < F || B + 1e-9 < E) {
      std::fprintf(stderr, "conclusion violated on %s!\n", P.Name);
      std::exit(1);
    }
  }
}

} // namespace

int main() {
  std::printf("=== Device-sensitivity check: do the Fig. 10/11 conclusions "
              "survive other hardware? ===\n");
  runSuite("HuggingFace suite", models::hfSuite());
  runSuite("TorchVision suite", models::tvSuite());
  std::printf("\nInvariants held on every profile: all speedups >= 1, "
              "combined >= each alone, FMHA ~ 1.0 on CNNs.\n");
  return 0;
}
