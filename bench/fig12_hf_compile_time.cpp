//===- bench/fig12_hf_compile_time.cpp - Figure 12 reproduction ----------------===//
///
/// \file
/// Paper Figure 12: "time spent running the pattern matcher during DLCB
/// evaluation as a function of number of matches that are found in a
/// model", on the HuggingFace suite, separately for the MHA and Epilog
/// passes (each run to fixpoint, as in the paper). The paper's
/// observations to reproduce:
///  - matcher time grows with the number of matches, but also with model
///    AST size (partial matches cost time even when nothing matches);
///  - the Epilog pass is ~2 orders of magnitude costlier than MHA at the
///    same match count, because "there are many more matrix multiplies
///    … than potential MHA matches" — its function-variable-rooted
///    patterns must be attempted at almost every node;
///  - no per-model pass ever takes longer than 3 seconds.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "rewrite/Partition.h"

using namespace pypm;
using namespace pypm::bench;

namespace {

struct Series {
  std::string Model;
  size_t Nodes = 0;
  uint64_t Matches = 0;
  uint64_t Attempts = 0;
  uint64_t Steps = 0;
  double Millis = 0;
};

/// The recursive Fig. 14 epilog family, match-only (no rules): per node
/// it unfolds μ, freshens binders, and backtracks through alternates —
/// the expensive matcher shape behind the paper's "2 orders of magnitude"
/// Epilog observation.
Series measureRecursiveEpilog(const models::ModelEntry &Model) {
  term::Signature Sig;
  auto G = Model.Build(Sig);
  Series S;
  S.Model = Model.Name;
  S.Nodes = G->numLiveNodes();
  auto Lib = opt::compilePartition(Sig);
  rewrite::RuleSet RS;
  RS.addPattern(*Lib->findPattern("MatMulEpilogExt"));
  rewrite::RewriteStats Stats = rewrite::matchAll(*G, RS);
  S.Matches = Stats.TotalMatches;
  S.Millis = Stats.MatchSeconds * 1e3;
  for (const auto &[Name, PS] : Stats.PerPattern) {
    S.Attempts += PS.Attempts;
    S.Steps += PS.MachineSteps;
  }
  return S;
}

Series measure(const models::ModelEntry &Model, opt::OptConfig Config) {
  term::Signature Sig;
  auto G = Model.Build(Sig);
  Series S;
  S.Model = Model.Name;
  S.Nodes = G->numLiveNodes();
  opt::Pipeline Pipe = opt::makePipeline(Sig, Config);
  rewrite::RewriteStats Stats =
      rewrite::rewriteToFixpoint(*G, Pipe.Rules, graph::ShapeInference());
  S.Matches = Stats.TotalMatches;
  S.Millis = Stats.MatchSeconds * 1e3;
  for (const auto &[Name, PS] : Stats.PerPattern) {
    S.Attempts += PS.Attempts;
    S.Steps += PS.MachineSteps;
  }
  return S;
}

void printSeries(const char *Title, const std::vector<Series> &Rows) {
  std::printf("\n--- %s ---\n", Title);
  std::printf("%-20s %7s %9s %10s %12s %12s\n", "model", "nodes", "matches",
              "attempts", "vm-steps", "time(ms)");
  double Max = 0;
  for (const Series &S : Rows) {
    std::printf("%-20s %7zu %9llu %10llu %12llu %12.3f\n", S.Model.c_str(),
                S.Nodes, (unsigned long long)S.Matches,
                (unsigned long long)S.Attempts,
                (unsigned long long)S.Steps, S.Millis);
    Max = std::max(Max, S.Millis);
  }
  std::printf("max pass time: %.3f ms (paper bound: < 3000 ms)\n", Max);
}

} // namespace

int main() {
  std::printf("=== Figure 12: HuggingFace compile-time cost "
              "(matcher wall-clock vs matches, to fixpoint) ===\n");
  std::vector<Series> Mha, Epilog, Recursive;
  for (const models::ModelEntry &Model : models::hfSuite()) {
    Mha.push_back(measure(Model, opt::OptConfig::FmhaOnly));
    Epilog.push_back(measure(Model, opt::OptConfig::EpilogOnly));
    Recursive.push_back(measureRecursiveEpilog(Model));
  }
  printSeries("MHA pattern pass", Mha);
  printSeries("Epilog pattern pass (flat GemmAct family)", Epilog);
  printSeries("Epilog pattern pass (recursive Fig. 14 family, match-only)",
              Recursive);

  // The paper's headline ratio: epilog cost / MHA cost per model. Our flat
  // epilog patterns are cheaper than the paper's matcher; the recursive
  // family reproduces the magnitude of the gap.
  double FlatSum = 0, RecSum = 0;
  for (size_t I = 0; I != Mha.size(); ++I) {
    FlatSum += Epilog[I].Millis / std::max(1e-6, Mha[I].Millis);
    RecSum += Recursive[I].Millis / std::max(1e-6, Mha[I].Millis);
  }
  std::printf("\nmean epilog/MHA matcher-time ratio: flat %.1fx, "
              "recursive %.1fx (paper: ~2 orders of magnitude)\n",
              FlatSum / Mha.size(), RecSum / Mha.size());
  return 0;
}
