//===- bench/fig13_tv_compile_time.cpp - Figure 13 reproduction ----------------===//
///
/// \file
/// Paper Figure 13: compile-time cost on the TorchVision suite. The key
/// datapoint the paper highlights: the MHA pass finds ZERO matches on
/// every vision model yet still costs time (it must traverse the whole
/// model probing partial matches), while the Epilog pass finds many
/// matches and costs orders of magnitude more.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace pypm;
using namespace pypm::bench;

namespace {

struct Series {
  std::string Model;
  size_t Nodes = 0;
  uint64_t Matches = 0;
  uint64_t Attempts = 0;
  double Millis = 0;
};

Series measure(const models::ModelEntry &Model, opt::OptConfig Config) {
  term::Signature Sig;
  auto G = Model.Build(Sig);
  Series S;
  S.Model = Model.Name;
  S.Nodes = G->numLiveNodes();
  opt::Pipeline Pipe = opt::makePipeline(Sig, Config);
  rewrite::RewriteStats Stats =
      rewrite::rewriteToFixpoint(*G, Pipe.Rules, graph::ShapeInference());
  S.Matches = Stats.TotalMatches;
  S.Millis = Stats.MatchSeconds * 1e3;
  for (const auto &[Name, PS] : Stats.PerPattern)
    S.Attempts += PS.Attempts;
  return S;
}

} // namespace

int main() {
  std::printf("=== Figure 13: TorchVision compile-time cost "
              "(matcher wall-clock vs matches, to fixpoint) ===\n");
  std::printf("\n%-20s %7s | %9s %10s | %9s %10s\n", "model", "nodes",
              "mha-match", "mha(ms)", "epi-match", "epi(ms)");
  double MaxMs = 0;
  uint64_t MhaMatchTotal = 0;
  for (const models::ModelEntry &Model : models::tvSuite()) {
    Series Mha = measure(Model, opt::OptConfig::FmhaOnly);
    Series Epi = measure(Model, opt::OptConfig::EpilogOnly);
    std::printf("%-20s %7zu | %9llu %10.3f | %9llu %10.3f\n",
                Model.Name.c_str(), Mha.Nodes,
                (unsigned long long)Mha.Matches, Mha.Millis,
                (unsigned long long)Epi.Matches, Epi.Millis);
    MaxMs = std::max({MaxMs, Mha.Millis, Epi.Millis});
    MhaMatchTotal += Mha.Matches;
  }
  std::printf("\ntotal MHA matches across the suite: %llu (paper: none — "
              "\"Even when there are none, the\nimplementation takes 2 "
              "orders of magnitude longer looking for Epilog matches than "
              "MHA matches\")\nmax pass time: %.3f ms (paper bound: "
              "< 3000 ms)\n",
              (unsigned long long)MhaMatchTotal, MaxMs);
  return 0;
}
