//===- bench/bench_partitioning.cpp - §4.2 directed graph partitioning ---------===//
///
/// \file
/// The Section 4.2 experiment: partition every suite model with the
/// Fig. 14 patterns (after contracting decomposed GELU so the epilog
/// towers are visible), fuse the accepted regions as just-in-time
/// kernels, and report region statistics, partitioning wall-clock, and
/// simulated speedup.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "plan/PlanBuilder.h"
#include "plan/Profile.h"
#include "rewrite/Partition.h"

#include <string_view>

using namespace pypm;
using namespace pypm::bench;
using namespace pypm::rewrite;

namespace {

void runSuite(const char *Title,
              const std::vector<models::ModelEntry> &Suite) {
  std::printf("\n--- %s ---\n", Title);
  std::printf("%-20s %7s %8s %8s %8s %10s %9s\n", "model", "nodes",
              "regions", "avg-ops", "rejects", "part(ms)", "speedup");
  for (const models::ModelEntry &Model : Suite) {
    term::Signature Sig;
    auto G = Model.Build(Sig);

    // Contract decomposed GELU first (stage 1 of the §4.2 pipeline).
    auto Epilog = opt::compileEpilog(Sig);
    RuleSet GeluOnly;
    for (const pattern::NamedPattern &NP : Epilog->PatternDefs)
      if (NP.Name == Symbol::intern("GeluExpanded"))
        GeluOnly.addPattern(NP, Epilog->rulesFor(NP.Name));
    rewriteToFixpoint(*G, GeluOnly, graph::ShapeInference());

    double Before = sim::CostModel().graphCost(*G).Seconds;
    auto Partition = opt::compilePartition(Sig);
    Symbol Frontier[3] = {Symbol::intern("a"), Symbol::intern("b"),
                          Symbol::intern("b1")};
    PartitionResult PR = partitionGraph(
        *G, *Partition->findPattern("MatMulEpilogExt"), Frontier);

    size_t TotalOps = 0;
    for (const Region &R : PR.Regions)
      TotalOps += R.Interior.size();
    fuseRegions(*G, PR, graph::ShapeInference());
    double After = sim::CostModel().graphCost(*G).Seconds;

    std::printf("%-20s %7zu %8zu %8.1f %8llu %10.3f %8.3fx\n",
                Model.Name.c_str(), G->numLiveNodes(), PR.Regions.size(),
                PR.Regions.empty()
                    ? 0.0
                    : static_cast<double>(TotalOps) / PR.Regions.size(),
                (unsigned long long)(PR.Stats.OverlapRejects +
                                     PR.Stats.EscapeRejects),
                PR.Stats.Seconds * 1e3, Before / After);
  }
}

/// `--threads-sweep`: run the full rewrite pipeline over the largest zoo
/// model at several thread counts and emit machine-readable JSON, one
/// object per configuration. NumThreads=0 is the serial legacy engine —
/// the ablation baseline the parallel discovery phase is measured against.
int runThreadsSweep() {
  models::ModelEntry Largest;
  size_t LargestNodes = 0;
  for (const auto &Suite : {models::hfSuite(), models::tvSuite()})
    for (const models::ModelEntry &Model : Suite) {
      term::Signature Sig;
      auto G = Model.Build(Sig);
      if (G->numLiveNodes() > LargestNodes) {
        LargestNodes = G->numLiveNodes();
        Largest = Model;
      }
    }

  std::printf("{\n  \"model\": \"%s\",\n  \"nodes\": %zu,\n  \"sweep\": [\n",
              Largest.Name.c_str(), LargestNodes);
  const unsigned Threads[] = {0, 1, 2, 4, 8};
  constexpr size_t NumConfigs = sizeof(Threads) / sizeof(Threads[0]);
  for (size_t I = 0; I != NumConfigs; ++I) {
    rewrite::RewriteOptions Opts;
    Opts.NumThreads = Threads[I];
    ConfigResult R = runConfig(Largest, opt::OptConfig::Both, Opts);
    std::printf("    {\"threads\": %u, \"fired\": %llu, "
                "\"discovery_seconds\": %.6f, \"match_seconds\": %.6f, "
                "\"total_seconds\": %.6f}%s\n",
                Threads[I], (unsigned long long)R.Fired,
                R.Stats.DiscoverySeconds, R.Stats.MatchSeconds,
                R.Stats.TotalSeconds, I + 1 == NumConfigs ? "" : ",");
  }
  std::printf("  ]\n}\n");
  return 0;
}

/// `--ruleset-sweep`: discovery cost as a function of |RuleSet|, fast
/// matcher vs the shared MatchPlan, over the whole model zoo. For each
/// prefix of the full StdPatterns rule set (every library, loaded the way
/// the rewrite engine loads them: rule-bearing entries only) the serial
/// engine's matchAll runs once per model per matcher; the JSON rows chart
/// the speedup-vs-|RuleSet| curve. The plan is compiled in-run, so
/// plan_compile_seconds quantifies what the cacheable .pypmplan artifact
/// saves; speedup compares discovery alone. Match-only partition
/// patterns are deliberately excluded: they are driven one at a time by
/// partitionGraph, not by a RuleSet, and their μ-shaped roots defeat
/// shape-prefix pruning for the fast matcher and the plan alike.
int runRulesetSweep() {
  std::vector<models::ModelEntry> Zoo;
  for (const auto &Suite : {models::hfSuite(), models::tvSuite()})
    for (const models::ModelEntry &Model : Suite)
      Zoo.push_back(Model);

  // Entry count is signature-independent; probe it once.
  size_t NumEntries = 0;
  {
    term::Signature Sig;
    RuleSet All;
    for (auto &Lib :
         {opt::compileFmha(Sig), opt::compileEpilog(Sig),
          opt::compileCublas(Sig), opt::compileUnaryChain(Sig)})
      All.addLibrary(*Lib);
    NumEntries = All.entries().size();
  }

  std::printf("{\n  \"models\": %zu,\n  \"ruleset_sweep\": [\n", Zoo.size());
  for (size_t K = 1; K <= NumEntries; ++K) {
    double FastDiscovery = 0, PlanDiscovery = 0, PlanCompile = 0;
    uint64_t FastMatches = 0, PlanMatches = 0;
    for (const models::ModelEntry &Model : Zoo) {
      term::Signature Sig;
      auto G = Model.Build(Sig);
      auto Fmha = opt::compileFmha(Sig);
      auto Epilog = opt::compileEpilog(Sig);
      auto Cublas = opt::compileCublas(Sig);
      auto Unary = opt::compileUnaryChain(Sig);
      RuleSet All;
      for (const pattern::Library *Lib :
           {Fmha.get(), Epilog.get(), Cublas.get(), Unary.get()})
        All.addLibrary(*Lib);
      RuleSet Prefix;
      for (size_t I = 0; I != K && I != All.entries().size(); ++I)
        Prefix.addPattern(*All.entries()[I].Pattern, All.entries()[I].Rules);

      rewrite::RewriteOptions FastOpts;
      FastOpts.Matcher = rewrite::MatcherKind::Fast;
      rewrite::RewriteStats FS = rewrite::matchAll(*G, Prefix, FastOpts);
      FastDiscovery += FS.DiscoverySeconds;
      FastMatches += FS.TotalMatches;

      rewrite::RewriteOptions PlanOpts;
      PlanOpts.Matcher = rewrite::MatcherKind::Plan;
      rewrite::RewriteStats PS = rewrite::matchAll(*G, Prefix, PlanOpts);
      PlanDiscovery += PS.DiscoverySeconds;
      PlanCompile += PS.PlanCompileSeconds;
      PlanMatches += PS.TotalMatches;
    }
    std::printf("    {\"rules\": %zu, \"fast_matches\": %llu, "
                "\"plan_matches\": %llu, \"fast_discovery_seconds\": %.6f, "
                "\"plan_discovery_seconds\": %.6f, "
                "\"plan_compile_seconds\": %.6f, \"speedup\": %.3f}%s\n",
                K, (unsigned long long)FastMatches,
                (unsigned long long)PlanMatches, FastDiscovery, PlanDiscovery,
                PlanCompile,
                PlanDiscovery > 0 ? FastDiscovery / PlanDiscovery : 0.0,
                K == NumEntries ? "" : ",");
  }
  std::printf("  ]\n}\n");
  return 0;
}

/// `--profiled-sweep`: cold plan layout (compile order) vs profile-guided
/// layout, over the same rule-prefix sweep as `--ruleset-sweep`. Per
/// prefix and model the plan is compiled once, a serial matchAll records
/// a profile against it, the cold layout is timed best-of-R, then
/// applyProfile permutes the *same program object in place* and the
/// profiled layout is timed best-of-R. In-place is load-bearing: a
/// second, separately compiled Program pays a consistent ~5% allocation-
/// locality penalty that swamps the ordering effect (measured: two
/// byte-identical cold plans differ by that much), whereas applyProfile
/// only stable_sorts existing vectors, so the comparison isolates layout
/// order. PrecompiledPlan keeps compilation out of the measurement, and
/// match counts are asserted equal as the runs are timed — the
/// differential suite's bit-identity claim, re-checked where the numbers
/// come from.
int runProfiledSweep() {
  std::vector<models::ModelEntry> Zoo;
  for (const auto &Suite : {models::hfSuite(), models::tvSuite()})
    for (const models::ModelEntry &Model : Suite)
      Zoo.push_back(Model);

  size_t NumEntries = 0;
  {
    term::Signature Sig;
    RuleSet All;
    for (auto &Lib :
         {opt::compileFmha(Sig), opt::compileEpilog(Sig),
          opt::compileCublas(Sig), opt::compileUnaryChain(Sig)})
      All.addLibrary(*Lib);
    NumEntries = All.entries().size();
  }

  constexpr int Repeats = 9;
  std::printf("{\n  \"models\": %zu,\n  \"repeats\": %d,\n"
              "  \"profiled_sweep\": [\n",
              Zoo.size(), Repeats);
  for (size_t K = 1; K <= NumEntries; ++K) {
    double ColdDiscovery = 0, ProfDiscovery = 0;
    uint64_t ColdMatches = 0, ProfMatches = 0;
    uint64_t Traversals = 0;
    for (const models::ModelEntry &Model : Zoo) {
      term::Signature Sig;
      auto G = Model.Build(Sig);
      auto Fmha = opt::compileFmha(Sig);
      auto Epilog = opt::compileEpilog(Sig);
      auto Cublas = opt::compileCublas(Sig);
      auto Unary = opt::compileUnaryChain(Sig);
      RuleSet All;
      for (const pattern::Library *Lib :
           {Fmha.get(), Epilog.get(), Cublas.get(), Unary.get()})
        All.addLibrary(*Lib);
      RuleSet Prefix;
      for (size_t I = 0; I != K && I != All.entries().size(); ++I)
        Prefix.addPattern(*All.entries()[I].Pattern, All.entries()[I].Rules);

      plan::Program Prog = plan::PlanBuilder::compile(Prefix, Sig);
      rewrite::RewriteOptions Opts;
      Opts.Matcher = rewrite::MatcherKind::Plan;
      Opts.PrecompiledPlan = &Prog;
      plan::Profile Prof;
      {
        rewrite::RewriteOptions RecOpts = Opts;
        RecOpts.PlanProfile = &Prof;
        rewrite::matchAll(*G, Prefix, RecOpts);
      }
      Traversals += Prof.Traversals;

      double BestCold = 0, BestProf = 0;
      uint64_t MCold = 0, MProf = 0;
      for (int Rep = 0; Rep != Repeats; ++Rep) {
        rewrite::RewriteStats CS = rewrite::matchAll(*G, Prefix, Opts);
        if (Rep == 0 || CS.DiscoverySeconds < BestCold)
          BestCold = CS.DiscoverySeconds;
        MCold = CS.TotalMatches;
      }
      if (!plan::PlanBuilder::applyProfile(Prog, Prof)) {
        std::fprintf(stderr, "profiled-sweep: recorded profile failed to "
                             "bind to its own plan (rules=%zu)\n",
                     K);
        return 1;
      }
      for (int Rep = 0; Rep != Repeats; ++Rep) {
        rewrite::RewriteStats PS = rewrite::matchAll(*G, Prefix, Opts);
        if (Rep == 0 || PS.DiscoverySeconds < BestProf)
          BestProf = PS.DiscoverySeconds;
        MProf = PS.TotalMatches;
      }
      if (MCold != MProf) {
        std::fprintf(stderr,
                     "profiled-sweep: match divergence (rules=%zu, "
                     "model=%s, cold=%llu, profiled=%llu)\n",
                     K, Model.Name.c_str(), (unsigned long long)MCold,
                     (unsigned long long)MProf);
        return 1;
      }
      ColdDiscovery += BestCold;
      ProfDiscovery += BestProf;
      ColdMatches += MCold;
      ProfMatches += MProf;
    }
    std::printf("    {\"rules\": %zu, \"matches\": %llu, "
                "\"traversals\": %llu, \"cold_discovery_seconds\": %.6f, "
                "\"profiled_discovery_seconds\": %.6f, \"speedup\": %.3f}%s\n",
                K, (unsigned long long)ColdMatches,
                (unsigned long long)Traversals, ColdDiscovery, ProfDiscovery,
                ProfDiscovery > 0 ? ColdDiscovery / ProfDiscovery : 0.0,
                K == NumEntries ? "" : ",");
    (void)ProfMatches;
  }
  std::printf("  ]\n}\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (std::string_view(argv[I]) == "--threads-sweep")
      return runThreadsSweep();
    if (std::string_view(argv[I]) == "--ruleset-sweep")
      return runRulesetSweep();
    if (std::string_view(argv[I]) == "--profiled-sweep")
      return runProfiledSweep();
  }
  std::printf("=== Section 4.2: directed graph partitioning with Fig. 14's "
              "MatMulEpilog family ===\n");
  runSuite("HuggingFace suite", models::hfSuite());
  runSuite("TorchVision suite", models::tvSuite());
  std::printf("\nEach accepted region is replaced by one just-in-time "
              "fused kernel priced by the cost model\n(one launch, "
              "boundary-only memory traffic) — the \"pass the subgraph to "
              "a compiler that can\nbuild the fused kernel\" step of "
              "§4.2.\n");
  return 0;
}
