//===- bench/bench_partitioning.cpp - §4.2 directed graph partitioning ---------===//
///
/// \file
/// The Section 4.2 experiment: partition every suite model with the
/// Fig. 14 patterns (after contracting decomposed GELU so the epilog
/// towers are visible), fuse the accepted regions as just-in-time
/// kernels, and report region statistics, partitioning wall-clock, and
/// simulated speedup.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "analysis/CriticalPairs.h"
#include "dsl/Sema.h"
#include "graph/GraphIO.h"
#include "pattern/Serializer.h"
#include "plan/PlanBuilder.h"
#include "plan/Profile.h"
#include "plan/aot/Threaded.h"
#include "rewrite/Partition.h"
#include "server/Server.h"

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string_view>
#include <unistd.h>

using namespace pypm;
using namespace pypm::bench;
using namespace pypm::rewrite;

namespace {

void runSuite(const char *Title,
              const std::vector<models::ModelEntry> &Suite) {
  std::printf("\n--- %s ---\n", Title);
  std::printf("%-20s %7s %8s %8s %8s %10s %9s\n", "model", "nodes",
              "regions", "avg-ops", "rejects", "part(ms)", "speedup");
  for (const models::ModelEntry &Model : Suite) {
    term::Signature Sig;
    auto G = Model.Build(Sig);

    // Contract decomposed GELU first (stage 1 of the §4.2 pipeline).
    auto Epilog = opt::compileEpilog(Sig);
    RuleSet GeluOnly;
    for (const pattern::NamedPattern &NP : Epilog->PatternDefs)
      if (NP.Name == Symbol::intern("GeluExpanded"))
        GeluOnly.addPattern(NP, Epilog->rulesFor(NP.Name));
    rewriteToFixpoint(*G, GeluOnly, graph::ShapeInference());

    double Before = sim::CostModel().graphCost(*G).Seconds;
    auto Partition = opt::compilePartition(Sig);
    Symbol Frontier[3] = {Symbol::intern("a"), Symbol::intern("b"),
                          Symbol::intern("b1")};
    PartitionResult PR = partitionGraph(
        *G, *Partition->findPattern("MatMulEpilogExt"), Frontier);

    size_t TotalOps = 0;
    for (const Region &R : PR.Regions)
      TotalOps += R.Interior.size();
    fuseRegions(*G, PR, graph::ShapeInference());
    double After = sim::CostModel().graphCost(*G).Seconds;

    std::printf("%-20s %7zu %8zu %8.1f %8llu %10.3f %8.3fx\n",
                Model.Name.c_str(), G->numLiveNodes(), PR.Regions.size(),
                PR.Regions.empty()
                    ? 0.0
                    : static_cast<double>(TotalOps) / PR.Regions.size(),
                (unsigned long long)(PR.Stats.OverlapRejects +
                                     PR.Stats.EscapeRejects),
                PR.Stats.Seconds * 1e3, Before / After);
  }
}

/// `--threads-sweep`: run the full rewrite pipeline over the largest zoo
/// model at several thread counts and emit machine-readable JSON, one
/// object per configuration. NumThreads=0 is the serial legacy engine —
/// the ablation baseline the parallel discovery phase is measured against.
int runThreadsSweep() {
  models::ModelEntry Largest;
  size_t LargestNodes = 0;
  for (const auto &Suite : {models::hfSuite(), models::tvSuite()})
    for (const models::ModelEntry &Model : Suite) {
      term::Signature Sig;
      auto G = Model.Build(Sig);
      if (G->numLiveNodes() > LargestNodes) {
        LargestNodes = G->numLiveNodes();
        Largest = Model;
      }
    }

  std::printf("{\n  \"model\": \"%s\",\n  \"nodes\": %zu,\n  \"sweep\": [\n",
              Largest.Name.c_str(), LargestNodes);
  const unsigned Threads[] = {0, 1, 2, 4, 8};
  constexpr size_t NumConfigs = sizeof(Threads) / sizeof(Threads[0]);
  for (size_t I = 0; I != NumConfigs; ++I) {
    rewrite::RewriteOptions Opts;
    Opts.NumThreads = Threads[I];
    ConfigResult R = runConfig(Largest, opt::OptConfig::Both, Opts);
    std::printf("    {\"threads\": %u, \"fired\": %llu, "
                "\"discovery_seconds\": %.6f, \"match_seconds\": %.6f, "
                "\"total_seconds\": %.6f}%s\n",
                Threads[I], (unsigned long long)R.Fired,
                R.Stats.DiscoverySeconds, R.Stats.MatchSeconds,
                R.Stats.TotalSeconds, I + 1 == NumConfigs ? "" : ",");
  }
  std::printf("  ]\n}\n");
  return 0;
}

/// `--ruleset-sweep`: discovery cost as a function of |RuleSet|, fast
/// matcher vs the shared MatchPlan, over the whole model zoo. For each
/// prefix of the full StdPatterns rule set (every library, loaded the way
/// the rewrite engine loads them: rule-bearing entries only) the serial
/// engine's matchAll runs once per model per matcher; the JSON rows chart
/// the speedup-vs-|RuleSet| curve. The plan is compiled in-run, so
/// plan_compile_seconds quantifies what the cacheable .pypmplan artifact
/// saves; speedup compares discovery alone. Match-only partition
/// patterns are deliberately excluded: they are driven one at a time by
/// partitionGraph, not by a RuleSet, and their μ-shaped roots defeat
/// shape-prefix pruning for the fast matcher and the plan alike.
int runRulesetSweep() {
  std::vector<models::ModelEntry> Zoo;
  for (const auto &Suite : {models::hfSuite(), models::tvSuite()})
    for (const models::ModelEntry &Model : Suite)
      Zoo.push_back(Model);

  // Entry count is signature-independent; probe it once.
  size_t NumEntries = 0;
  {
    term::Signature Sig;
    RuleSet All;
    for (auto &Lib :
         {opt::compileFmha(Sig), opt::compileEpilog(Sig),
          opt::compileCublas(Sig), opt::compileUnaryChain(Sig)})
      All.addLibrary(*Lib);
    NumEntries = All.entries().size();
  }

  std::printf("{\n  \"models\": %zu,\n  \"ruleset_sweep\": [\n", Zoo.size());
  for (size_t K = 1; K <= NumEntries; ++K) {
    double FastDiscovery = 0, PlanDiscovery = 0, PlanCompile = 0;
    uint64_t FastMatches = 0, PlanMatches = 0;
    for (const models::ModelEntry &Model : Zoo) {
      term::Signature Sig;
      auto G = Model.Build(Sig);
      auto Fmha = opt::compileFmha(Sig);
      auto Epilog = opt::compileEpilog(Sig);
      auto Cublas = opt::compileCublas(Sig);
      auto Unary = opt::compileUnaryChain(Sig);
      RuleSet All;
      for (const pattern::Library *Lib :
           {Fmha.get(), Epilog.get(), Cublas.get(), Unary.get()})
        All.addLibrary(*Lib);
      RuleSet Prefix;
      for (size_t I = 0; I != K && I != All.entries().size(); ++I)
        Prefix.addPattern(*All.entries()[I].Pattern, All.entries()[I].Rules);

      rewrite::RewriteOptions FastOpts;
      FastOpts.Matcher = rewrite::MatcherKind::Fast;
      rewrite::RewriteStats FS = rewrite::matchAll(*G, Prefix, FastOpts);
      FastDiscovery += FS.DiscoverySeconds;
      FastMatches += FS.TotalMatches;

      rewrite::RewriteOptions PlanOpts;
      PlanOpts.Matcher = rewrite::MatcherKind::Plan;
      rewrite::RewriteStats PS = rewrite::matchAll(*G, Prefix, PlanOpts);
      PlanDiscovery += PS.DiscoverySeconds;
      PlanCompile += PS.PlanCompileSeconds;
      PlanMatches += PS.TotalMatches;
    }
    std::printf("    {\"rules\": %zu, \"fast_matches\": %llu, "
                "\"plan_matches\": %llu, \"fast_discovery_seconds\": %.6f, "
                "\"plan_discovery_seconds\": %.6f, "
                "\"plan_compile_seconds\": %.6f, \"speedup\": %.3f}%s\n",
                K, (unsigned long long)FastMatches,
                (unsigned long long)PlanMatches, FastDiscovery, PlanDiscovery,
                PlanCompile,
                PlanDiscovery > 0 ? FastDiscovery / PlanDiscovery : 0.0,
                K == NumEntries ? "" : ",");
  }
  std::printf("  ]\n}\n");
  return 0;
}

/// `--aot-sweep`: the plan interpreter vs the threaded-code backend over
/// the same rule-prefix sweep (and model zoo) as `--ruleset-sweep`. Both
/// matchers run the SAME compiled Program via PrecompiledPlan, so the
/// delta is pure execution-loop cost: the interpreter re-decodes operands
/// and re-dispatches per instruction visit, the threaded tier pays
/// decoding once per program (decode_seconds, amortized across every
/// attempt of the run) and then jumps label-to-label. Best-of-R per
/// (prefix, model); match counts are asserted equal as the numbers are
/// produced — the bit-identity claim re-checked where the speedup is
/// measured. `--smoke` shrinks the zoo and repeat count.
int runAotSweep(bool Smoke) {
  std::vector<models::ModelEntry> Zoo;
  for (const auto &Suite : {models::hfSuite(), models::tvSuite()}) {
    const size_t PerSuite = Smoke ? 3 : SIZE_MAX;
    size_t N = 0;
    for (const models::ModelEntry &Model : Suite)
      if (N++ < PerSuite)
        Zoo.push_back(Model);
  }
  const int Repeats = Smoke ? 3 : 7;

  size_t NumEntries = 0;
  {
    term::Signature Sig;
    RuleSet All;
    for (auto &Lib :
         {opt::compileFmha(Sig), opt::compileEpilog(Sig),
          opt::compileCublas(Sig), opt::compileUnaryChain(Sig)})
      All.addLibrary(*Lib);
    NumEntries = All.entries().size();
  }

  std::printf("{\n  \"models\": %zu,\n  \"repeats\": %d,\n"
              "  \"smoke\": %s,\n  \"aot_sweep\": [\n",
              Zoo.size(), Repeats, Smoke ? "true" : "false");
  for (size_t K = 1; K <= NumEntries; ++K) {
    double PlanDiscovery = 0, ThrDiscovery = 0, DecodeSeconds = 0;
    uint64_t Matches = 0;
    for (const models::ModelEntry &Model : Zoo) {
      term::Signature Sig;
      auto G = Model.Build(Sig);
      auto Fmha = opt::compileFmha(Sig);
      auto Epilog = opt::compileEpilog(Sig);
      auto Cublas = opt::compileCublas(Sig);
      auto Unary = opt::compileUnaryChain(Sig);
      RuleSet All;
      for (const pattern::Library *Lib :
           {Fmha.get(), Epilog.get(), Cublas.get(), Unary.get()})
        All.addLibrary(*Lib);
      RuleSet Prefix;
      for (size_t I = 0; I != K && I != All.entries().size(); ++I)
        Prefix.addPattern(*All.entries()[I].Pattern, All.entries()[I].Rules);

      plan::Program Prog = plan::PlanBuilder::compile(Prefix, Sig);
      auto T0 = std::chrono::steady_clock::now();
      plan::aot::ThreadedProgram TP = plan::aot::ThreadedProgram::decode(Prog);
      DecodeSeconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
              .count();

      double BestPlan = 0, BestThr = 0;
      uint64_t PlanM = 0, ThrM = 0;
      for (int R = 0; R != Repeats; ++R) {
        rewrite::RewriteOptions PO;
        PO.Matcher = rewrite::MatcherKind::Plan;
        PO.PrecompiledPlan = &Prog;
        rewrite::RewriteStats PS = rewrite::matchAll(*G, Prefix, PO);
        if (R == 0 || PS.DiscoverySeconds < BestPlan)
          BestPlan = PS.DiscoverySeconds;
        PlanM = PS.TotalMatches;

        rewrite::RewriteOptions TO;
        TO.Matcher = rewrite::MatcherKind::PlanThreaded;
        TO.PrecompiledPlan = &Prog;
        TO.PrecompiledThreaded = &TP; // decode paid once, above
        rewrite::RewriteStats TS = rewrite::matchAll(*G, Prefix, TO);
        if (R == 0 || TS.DiscoverySeconds < BestThr)
          BestThr = TS.DiscoverySeconds;
        ThrM = TS.TotalMatches;
      }
      if (PlanM != ThrM) {
        std::fprintf(stderr,
                     "aot-sweep: match divergence at rules=%zu model=%s "
                     "(plan %llu vs threaded %llu)\n",
                     K, Model.Name.c_str(), (unsigned long long)PlanM,
                     (unsigned long long)ThrM);
        return 1;
      }
      PlanDiscovery += BestPlan;
      ThrDiscovery += BestThr;
      Matches += PlanM;
    }
    std::printf("    {\"rules\": %zu, \"matches\": %llu, "
                "\"plan_discovery_seconds\": %.6f, "
                "\"threaded_discovery_seconds\": %.6f, "
                "\"decode_seconds\": %.6f, \"speedup\": %.3f}%s\n",
                K, (unsigned long long)Matches, PlanDiscovery, ThrDiscovery,
                DecodeSeconds,
                ThrDiscovery > 0 ? PlanDiscovery / ThrDiscovery : 0.0,
                K == NumEntries ? "" : ",");
  }
  std::printf("  ]\n}\n");
  return 0;
}

/// `--profiled-sweep`: cold plan layout (compile order) vs profile-guided
/// layout, over the same rule-prefix sweep as `--ruleset-sweep`. Per
/// prefix and model the plan is compiled once, a serial matchAll records
/// a profile against it, the cold layout is timed best-of-R, then
/// applyProfile permutes the *same program object in place* and the
/// profiled layout is timed best-of-R. In-place is load-bearing: a
/// second, separately compiled Program pays a consistent ~5% allocation-
/// locality penalty that swamps the ordering effect (measured: two
/// byte-identical cold plans differ by that much), whereas applyProfile
/// only stable_sorts existing vectors, so the comparison isolates layout
/// order. PrecompiledPlan keeps compilation out of the measurement, and
/// match counts are asserted equal as the runs are timed — the
/// differential suite's bit-identity claim, re-checked where the numbers
/// come from.
int runProfiledSweep() {
  std::vector<models::ModelEntry> Zoo;
  for (const auto &Suite : {models::hfSuite(), models::tvSuite()})
    for (const models::ModelEntry &Model : Suite)
      Zoo.push_back(Model);

  size_t NumEntries = 0;
  {
    term::Signature Sig;
    RuleSet All;
    for (auto &Lib :
         {opt::compileFmha(Sig), opt::compileEpilog(Sig),
          opt::compileCublas(Sig), opt::compileUnaryChain(Sig)})
      All.addLibrary(*Lib);
    NumEntries = All.entries().size();
  }

  constexpr int Repeats = 9;
  std::printf("{\n  \"models\": %zu,\n  \"repeats\": %d,\n"
              "  \"profiled_sweep\": [\n",
              Zoo.size(), Repeats);
  for (size_t K = 1; K <= NumEntries; ++K) {
    double ColdDiscovery = 0, ProfDiscovery = 0;
    uint64_t ColdMatches = 0, ProfMatches = 0;
    uint64_t Traversals = 0;
    for (const models::ModelEntry &Model : Zoo) {
      term::Signature Sig;
      auto G = Model.Build(Sig);
      auto Fmha = opt::compileFmha(Sig);
      auto Epilog = opt::compileEpilog(Sig);
      auto Cublas = opt::compileCublas(Sig);
      auto Unary = opt::compileUnaryChain(Sig);
      RuleSet All;
      for (const pattern::Library *Lib :
           {Fmha.get(), Epilog.get(), Cublas.get(), Unary.get()})
        All.addLibrary(*Lib);
      RuleSet Prefix;
      for (size_t I = 0; I != K && I != All.entries().size(); ++I)
        Prefix.addPattern(*All.entries()[I].Pattern, All.entries()[I].Rules);

      plan::Program Prog = plan::PlanBuilder::compile(Prefix, Sig);
      rewrite::RewriteOptions Opts;
      Opts.Matcher = rewrite::MatcherKind::Plan;
      Opts.PrecompiledPlan = &Prog;
      plan::Profile Prof;
      {
        rewrite::RewriteOptions RecOpts = Opts;
        RecOpts.PlanProfile = &Prof;
        rewrite::matchAll(*G, Prefix, RecOpts);
      }
      Traversals += Prof.Traversals;

      double BestCold = 0, BestProf = 0;
      uint64_t MCold = 0, MProf = 0;
      for (int Rep = 0; Rep != Repeats; ++Rep) {
        rewrite::RewriteStats CS = rewrite::matchAll(*G, Prefix, Opts);
        if (Rep == 0 || CS.DiscoverySeconds < BestCold)
          BestCold = CS.DiscoverySeconds;
        MCold = CS.TotalMatches;
      }
      if (!plan::PlanBuilder::applyProfile(Prog, Prof)) {
        std::fprintf(stderr, "profiled-sweep: recorded profile failed to "
                             "bind to its own plan (rules=%zu)\n",
                     K);
        return 1;
      }
      for (int Rep = 0; Rep != Repeats; ++Rep) {
        rewrite::RewriteStats PS = rewrite::matchAll(*G, Prefix, Opts);
        if (Rep == 0 || PS.DiscoverySeconds < BestProf)
          BestProf = PS.DiscoverySeconds;
        MProf = PS.TotalMatches;
      }
      if (MCold != MProf) {
        std::fprintf(stderr,
                     "profiled-sweep: match divergence (rules=%zu, "
                     "model=%s, cold=%llu, profiled=%llu)\n",
                     K, Model.Name.c_str(), (unsigned long long)MCold,
                     (unsigned long long)MProf);
        return 1;
      }
      ColdDiscovery += BestCold;
      ProfDiscovery += BestProf;
      ColdMatches += MCold;
      ProfMatches += MProf;
    }
    std::printf("    {\"rules\": %zu, \"matches\": %llu, "
                "\"traversals\": %llu, \"cold_discovery_seconds\": %.6f, "
                "\"profiled_discovery_seconds\": %.6f, \"speedup\": %.3f}%s\n",
                K, (unsigned long long)ColdMatches,
                (unsigned long long)Traversals, ColdDiscovery, ProfDiscovery,
                ProfDiscovery > 0 ? ColdDiscovery / ProfDiscovery : 0.0,
                K == NumEntries ? "" : ",");
    (void)ProfMatches;
  }
  std::printf("  ]\n}\n");
  return 0;
}

/// `--incremental-sweep`: the two amortization modes against their cold
/// baselines (BENCH_incremental_sweep.json). Leg one re-runs the full
/// rewrite pipeline to fixpoint per zoo model — a commit-heavy workload
/// where every pass after a commit re-discovers the whole graph — with
/// RewriteOptions::Incremental on and off; the memo replays fruitless
/// visits outside the dirty region, so the incremental discovery time
/// must come in under the full rescan. Leg two repeats the
/// `--ruleset-sweep` rule-prefix ladder with the plan matcher against
/// itself, RewriteOptions::Batch on vs off: one frontier sweep computing
/// every candidate mask (plus reused per-pass matchers) vs the per-root
/// tree walk. Both legs time DiscoverySeconds best-of-R on fresh graphs
/// and assert the modes' match/fire counts against their baselines as
/// they are timed — the differential suite's bit-identity claim,
/// re-checked where the numbers come from. `--smoke` shrinks the zoo,
/// the ladder, and the repeat count to a CI-sized run.
int runIncrementalSweep(bool Smoke) {
  std::vector<models::ModelEntry> Zoo;
  {
    auto Hf = models::hfSuite();
    auto Tv = models::tvSuite();
    const size_t PerSuite = Smoke ? 3 : SIZE_MAX;
    for (size_t I = 0; I != Hf.size() && I != PerSuite; ++I)
      Zoo.push_back(Hf[I]);
    for (size_t I = 0; I != Tv.size() && I != PerSuite; ++I)
      Zoo.push_back(Tv[I]);
  }
  const int Repeats = Smoke ? 3 : 9;

  std::printf("{\n  \"models\": %zu,\n  \"repeats\": %d,\n"
              "  \"smoke\": %s,\n",
              Zoo.size(), Repeats, Smoke ? "true" : "false");

  // Leg one: commit-heavy fixpoint, full rescan vs incremental. The
  // pipeline additionally loads the μ-recursive unary-chain library, and
  // the run uses RootsFirst traversal: rewrites fire at the roots first,
  // so operand-side opportunities they expose land one pass later and
  // the fixpoint takes many passes — each of which the baseline re-scans
  // in full while the incremental engine re-discovers only the dirty
  // region and replays everything else from the memo. The leg runs the
  // fast matcher deliberately: it is the engine whose rescan passes pay
  // a real match attempt per candidate node, i.e. the work the memo
  // elides. (Under the plan matcher the discrimination tree already
  // prunes clean nodes to a near-free mask lookup, so there a memo
  // replay roughly breaks even with the rescan it replaces — the plan
  // side's amortization win is leg two's batching.)
  auto RunFixpoint = [](const models::ModelEntry &Model,
                        const rewrite::RewriteOptions &Opts) {
    term::Signature Sig;
    auto G = Model.Build(Sig);
    opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
    Pipe.Libs.push_back(opt::compileUnaryChain(Sig));
    Pipe.Rules.addLibrary(*Pipe.Libs.back());
    return rewrite::rewriteToFixpoint(*G, Pipe.Rules,
                                      graph::ShapeInference(), Opts);
  };
  std::printf("  \"incremental\": [\n");
  double FullSum = 0, IncSum = 0;
  for (size_t MI = 0; MI != Zoo.size(); ++MI) {
    const models::ModelEntry &Model = Zoo[MI];
    rewrite::RewriteOptions Full;
    Full.Matcher = rewrite::MatcherKind::Fast;
    Full.Order = rewrite::Traversal::RootsFirst;
    rewrite::RewriteOptions Inc = Full;
    Inc.Incremental = true;

    double BestFull = 0, BestInc = 0;
    uint64_t Fired = 0, Passes = 0, MemoHits = 0;
    for (int Rep = 0; Rep != Repeats; ++Rep) {
      rewrite::RewriteStats F = RunFixpoint(Model, Full);
      rewrite::RewriteStats N = RunFixpoint(Model, Inc);
      if (F.TotalFired != N.TotalFired || F.Passes != N.Passes) {
        std::fprintf(stderr,
                     "incremental-sweep: divergence on %s (fired %llu vs "
                     "%llu, passes %llu vs %llu)\n",
                     Model.Name.c_str(), (unsigned long long)F.TotalFired,
                     (unsigned long long)N.TotalFired,
                     (unsigned long long)F.Passes,
                     (unsigned long long)N.Passes);
        return 1;
      }
      if (Rep == 0 || F.DiscoverySeconds < BestFull)
        BestFull = F.DiscoverySeconds;
      if (Rep == 0 || N.DiscoverySeconds < BestInc)
        BestInc = N.DiscoverySeconds;
      Fired = N.TotalFired;
      Passes = N.Passes;
      MemoHits = N.MemoHits;
    }
    FullSum += BestFull;
    IncSum += BestInc;
    std::printf("    {\"model\": \"%s\", \"passes\": %llu, \"fired\": %llu, "
                "\"memo_hits\": %llu, \"full_discovery_seconds\": %.6f, "
                "\"incremental_discovery_seconds\": %.6f, "
                "\"speedup\": %.3f}%s\n",
                Model.Name.c_str(), (unsigned long long)Passes,
                (unsigned long long)Fired, (unsigned long long)MemoHits,
                BestFull, BestInc, BestInc > 0 ? BestFull / BestInc : 0.0,
                MI + 1 == Zoo.size() ? "" : ",");
  }
  std::printf("  ],\n  \"incremental_total\": {"
              "\"full_discovery_seconds\": %.6f, "
              "\"incremental_discovery_seconds\": %.6f, "
              "\"speedup\": %.3f},\n",
              FullSum, IncSum, IncSum > 0 ? FullSum / IncSum : 0.0);

  // Leg two: batched vs per-root plan discovery across the rule ladder.
  size_t NumEntries = 0;
  {
    term::Signature Sig;
    RuleSet All;
    for (auto &Lib :
         {opt::compileFmha(Sig), opt::compileEpilog(Sig),
          opt::compileCublas(Sig), opt::compileUnaryChain(Sig)})
      All.addLibrary(*Lib);
    NumEntries = All.entries().size();
  }

  std::printf("  \"batched_sweep\": [\n");
  for (size_t K = 1; K <= NumEntries; ++K) {
    double PerRoot = 0, Batched = 0;
    uint64_t Matches = 0, BatchedNodes = 0;
    for (const models::ModelEntry &Model : Zoo) {
      term::Signature Sig;
      auto G = Model.Build(Sig);
      auto Fmha = opt::compileFmha(Sig);
      auto Epilog = opt::compileEpilog(Sig);
      auto Cublas = opt::compileCublas(Sig);
      auto Unary = opt::compileUnaryChain(Sig);
      RuleSet All;
      for (const pattern::Library *Lib :
           {Fmha.get(), Epilog.get(), Cublas.get(), Unary.get()})
        All.addLibrary(*Lib);
      RuleSet Prefix;
      for (size_t I = 0; I != K && I != All.entries().size(); ++I)
        Prefix.addPattern(*All.entries()[I].Pattern, All.entries()[I].Rules);

      plan::Program Prog = plan::PlanBuilder::compile(Prefix, Sig);
      rewrite::RewriteOptions PerRootOpts;
      PerRootOpts.Matcher = rewrite::MatcherKind::Plan;
      PerRootOpts.PrecompiledPlan = &Prog;
      rewrite::RewriteOptions BatchOpts = PerRootOpts;
      BatchOpts.Batch = true;

      double BestPer = 0, BestBat = 0;
      uint64_t MPer = 0, MBat = 0, BN = 0;
      for (int Rep = 0; Rep != Repeats; ++Rep) {
        rewrite::RewriteStats PS = rewrite::matchAll(*G, Prefix, PerRootOpts);
        if (Rep == 0 || PS.DiscoverySeconds < BestPer)
          BestPer = PS.DiscoverySeconds;
        MPer = PS.TotalMatches;
        rewrite::RewriteStats BS = rewrite::matchAll(*G, Prefix, BatchOpts);
        if (Rep == 0 || BS.DiscoverySeconds < BestBat)
          BestBat = BS.DiscoverySeconds;
        MBat = BS.TotalMatches;
        BN = BS.BatchedNodes;
      }
      if (MPer != MBat) {
        std::fprintf(stderr,
                     "incremental-sweep: batch divergence (rules=%zu, "
                     "model=%s, per-root=%llu, batched=%llu)\n",
                     K, Model.Name.c_str(), (unsigned long long)MPer,
                     (unsigned long long)MBat);
        return 1;
      }
      PerRoot += BestPer;
      Batched += BestBat;
      Matches += MBat;
      BatchedNodes += BN;
    }
    std::printf("    {\"rules\": %zu, \"matches\": %llu, "
                "\"batched_nodes\": %llu, "
                "\"perroot_discovery_seconds\": %.6f, "
                "\"batched_discovery_seconds\": %.6f, \"speedup\": %.3f}%s\n",
                K, (unsigned long long)Matches,
                (unsigned long long)BatchedNodes, PerRoot, Batched,
                Batched > 0 ? PerRoot / Batched : 0.0,
                K == NumEntries ? "" : ",");
  }
  std::printf("  ]\n}\n");
  return 0;
}

/// `--daemon-sweep`: what the pypmd plan-cache tiers buy per request
/// (BENCH_daemon_sweep.json). The same rewrite request — the serialized
/// §4 epilog-fusion library plus a zoo model's graph text — is served
/// three ways and timed end to end through Server::handle:
///
///  - cold: a fresh daemon per request, no disk cache — every request
///    pays the .pypmbin deserialize, the lint preflight, and the
///    MatchPlan compile (this is single-shot `pypmc rewrite`);
///  - disk: a fresh daemon per request with a populated --plan-cache-dir
///    — the cold-CLI-start path, paying artifact load + key
///    re-verification but no compile;
///  - warm: one long-lived daemon — the raw-bytes memory hit, paying
///    neither parse nor compile.
///
/// Every reply's graph text is asserted identical across tiers while the
/// numbers are taken: the cache must be invisible in the results to be
/// allowed to show up in the latency. Best-of-R per tier; `--smoke`
/// shrinks the zoo and the repeat count to a CI-sized run.
int runDaemonSweep(bool Smoke) {
  std::vector<models::ModelEntry> Zoo;
  {
    auto Hf = models::hfSuite();
    auto Tv = models::tvSuite();
    const size_t PerSuite = Smoke ? 2 : SIZE_MAX;
    for (size_t I = 0; I != Hf.size() && I != PerSuite; ++I)
      Zoo.push_back(Hf[I]);
    for (size_t I = 0; I != Tv.size() && I != PerSuite; ++I)
      Zoo.push_back(Tv[I]);
  }
  const int Repeats = Smoke ? 3 : 9;

  // The request payload: a textual .pypm rule set, the natural form a
  // daemon client ships. Two safe shrinking rules that actually fire on
  // the zoo models plus a ladder of match-only patterns: the DSL front
  // end and the MatchPlan compile both get a realistic amount of work,
  // and the rewrite still terminates. (A .pypmbin payload would make the
  // cold tier's front end near-free and hide what the tiers save — the
  // hardened .pypmplan loader recompiles the plan as its semantic gate,
  // so the disk tier's win is exactly the skipped front-end parse.)
  std::string RuleBytes;
  {
    RuleBytes = "op Relu(1);\nop Tanh(1);\nop Sigmoid(1);\nop Neg(1);\n"
                "op Gelu(1);\nop Add(2);\nop Mul(2);\n"
                "pattern RR(x) { return Relu(Relu(x)); }\n"
                "rule rr for RR(x) { return Relu(x); }\n"
                "pattern NN(x) { return Neg(Neg(x)); }\n"
                "rule nn for NN(x) { return x; }\n";
    const char *U[] = {"Relu", "Tanh", "Sigmoid", "Neg", "Gelu"};
    const char *B[] = {"Add", "Mul"};
    int N = 0;
    for (const char *Outer : U)
      for (const char *Inner : U)
        for (const char *Bin : B) {
          char Buf[160];
          std::snprintf(Buf, sizeof(Buf),
                        "pattern M%d(x, y) { return %s(%s(%s(x), y)); }\n",
                        N++, Outer, Bin, Inner);
          RuleBytes += Buf;
        }
  }

  char DirTmpl[] = "/tmp/pypm_daemon_sweep_XXXXXX";
  std::string CacheDir = ::mkdtemp(DirTmpl);

  using Clock = std::chrono::steady_clock;
  auto TimeHandle = [](server::Server &Srv,
                       const server::RewriteRequest &R, double &BestSec,
                       bool First) {
    Clock::time_point T0 = Clock::now();
    server::RewriteReply Rep = Srv.handle(R);
    double Sec = std::chrono::duration<double>(Clock::now() - T0).count();
    if (First || Sec < BestSec)
      BestSec = Sec;
    return Rep;
  };

  std::printf("{\n  \"models\": %zu,\n  \"repeats\": %d,\n"
              "  \"smoke\": %s,\n  \"rule_bytes\": %zu,\n  \"sweep\": [\n",
              Zoo.size(), Repeats, Smoke ? "true" : "false",
              RuleBytes.size());
  double ColdSum = 0, DiskSum = 0, WarmSum = 0;
  for (size_t MI = 0; MI != Zoo.size(); ++MI) {
    const models::ModelEntry &Model = Zoo[MI];
    server::RewriteRequest R;
    R.Seq = MI + 1;
    R.RuleSet = RuleBytes;
    size_t Nodes = 0;
    {
      term::Signature Sig;
      auto G = Model.Build(Sig);
      Nodes = G->numLiveNodes();
      R.GraphText = graph::writeGraphText(*G);
    }

    double Cold = 0, Disk = 0, Warm = 0;
    std::string ColdGraph, DiskGraph, WarmGraph;
    // Cold tier: fresh server, no disk dir — compile per request.
    for (int Rep = 0; Rep != Repeats; ++Rep) {
      server::Server Srv(server::ServerOptions{});
      ColdGraph = TimeHandle(Srv, R, Cold, Rep == 0).GraphText;
    }
    // Disk tier: populate the artifact dir once, then fresh servers that
    // cold-start against it.
    {
      server::ServerOptions SO;
      SO.Cache.Dir = CacheDir;
      server::Server Warmup(SO);
      (void)Warmup.handle(R);
      for (int Rep = 0; Rep != Repeats; ++Rep) {
        server::Server Srv(SO);
        DiskGraph = TimeHandle(Srv, R, Disk, Rep == 0).GraphText;
      }
    }
    // Warm tier: one long-lived server; first request warms, the timed
    // ones hit the raw-bytes memory tier.
    {
      server::Server Srv(server::ServerOptions{});
      (void)Srv.handle(R);
      for (int Rep = 0; Rep != Repeats; ++Rep)
        WarmGraph = TimeHandle(Srv, R, Warm, Rep == 0).GraphText;
    }
    if (ColdGraph != DiskGraph || ColdGraph != WarmGraph) {
      std::fprintf(stderr,
                   "daemon-sweep: cache tier changed the result on %s\n",
                   Model.Name.c_str());
      return 1;
    }
    ColdSum += Cold;
    DiskSum += Disk;
    WarmSum += Warm;
    std::printf("    {\"model\": \"%s\", \"nodes\": %zu, "
                "\"cold_ms\": %.3f, \"disk_ms\": %.3f, \"warm_ms\": %.3f, "
                "\"disk_speedup\": %.2f, \"warm_speedup\": %.2f}%s\n",
                Model.Name.c_str(), Nodes, Cold * 1e3, Disk * 1e3,
                Warm * 1e3, Disk > 0 ? Cold / Disk : 0.0,
                Warm > 0 ? Cold / Warm : 0.0,
                MI + 1 == Zoo.size() ? "" : ",");
  }
  std::printf("  ],\n  \"total\": {\"cold_ms\": %.3f, \"disk_ms\": %.3f, "
              "\"warm_ms\": %.3f, \"disk_speedup\": %.2f, "
              "\"warm_speedup\": %.2f}\n}\n",
              ColdSum * 1e3, DiskSum * 1e3, WarmSum * 1e3,
              DiskSum > 0 ? ColdSum / DiskSum : 0.0,
              WarmSum > 0 ? ColdSum / WarmSum : 0.0);
  std::string Cleanup = "rm -rf '" + CacheDir + "'";
  [[maybe_unused]] int RC = std::system(Cleanup.c_str());
  return 0;
}

/// `--search-sweep`: what cost-directed commit selection buys over the
/// greedy canonical order (BENCH_search_sweep.json). Leg one scales the
/// conflict workload from tests/test_search.cpp — K independent
/// Gelu(MatMul(X, Trans(W))) towers where two fusions compete for each
/// region and declaration order puts the costlier epilog fuse first, so
/// greedy strands K Trans kernels while the beam folds each into the
/// cuBLAS call — and reports end-state modeled cost plus rewrite
/// wall-clock for greedy, beam, and best-of-N. The beam must strictly
/// beat greedy on every row or the sweep fails: the committed JSON is a
/// claim, not a log. Leg two runs the standard confluent pipeline over
/// the zoo under both engines; there every fixpoint costs the same, so
/// the rows isolate the search tax (clone + price per candidate) on
/// workloads where searching cannot help. Best-of-R wall times; `--smoke`
/// shrinks the ladder, the zoo, and the repeat count.
int runSearchSweep(bool Smoke) {
  const int Repeats = Smoke ? 3 : 9;
  using Clock = std::chrono::steady_clock;

  // Leg one: the conflict ladder.
  std::vector<size_t> Ladder = Smoke ? std::vector<size_t>{1, 2, 4}
                                     : std::vector<size_t>{1, 2, 4, 8, 16};
  std::printf("{\n  \"repeats\": %d,\n  \"smoke\": %s,\n  \"conflict\": [\n",
              Repeats, Smoke ? "true" : "false");

  constexpr const char *ConflictRules = R"pypm(
pattern EpiGelu(a, b) { return Gelu(MatMul(a, b)); }
rule epi for EpiGelu(a, b) { return GemmEpilog(a, b); }

pattern FullGelu(x, y) {
  yt = Trans(y);
  return Gelu(MatMul(x, yt));
}
rule full for FullGelu(x, y) { return Gelu(cublasMM_xyT_f32(x, y)); }
)pypm";

  // One timed run: build the K-tower graph fresh, rewrite under Opts,
  // return end-state modeled cost (and the stats for the counters).
  auto RunConflict = [&](size_t Blocks, const rewrite::RewriteOptions &Opts,
                         double &WallSec, rewrite::RewriteStats *StatsOut) {
    term::Signature Sig;
    models::declareModelOps(Sig);
    auto Lib = dsl::compileOrDie(ConflictRules, Sig);
    RuleSet RS;
    RS.addLibrary(*Lib);
    graph::Graph G(Sig);
    for (size_t I = 0; I != Blocks; ++I) {
      graph::NodeId A = G.addLeaf(
          "Input", graph::TensorType::make(term::DType::F32, {512, 512}));
      graph::NodeId B = G.addLeaf(
          "Input", graph::TensorType::make(term::DType::F32, {512, 512}));
      graph::NodeId T = G.addNode(Sig.lookup("Trans"), {B});
      graph::NodeId M = G.addNode(Sig.lookup("MatMul"), {A, T});
      graph::NodeId Ge = G.addNode(Sig.lookup("Gelu"), {M});
      G.addOutput(Ge);
    }
    graph::ShapeInference SI;
    SI.inferAll(G);
    Clock::time_point T0 = Clock::now();
    rewrite::RewriteStats S = rewrite::rewriteToFixpoint(G, RS, SI, Opts);
    WallSec = std::chrono::duration<double>(Clock::now() - T0).count();
    if (StatsOut)
      *StatsOut = S;
    return sim::CostModel().graphCost(G).Seconds;
  };

  auto BestOf = [&](size_t Blocks, const rewrite::RewriteOptions &Opts,
                    double &BestWall, rewrite::RewriteStats *StatsOut) {
    double Cost = 0;
    for (int Rep = 0; Rep != Repeats; ++Rep) {
      double Wall = 0;
      Cost = RunConflict(Blocks, Opts, Wall, StatsOut);
      if (Rep == 0 || Wall < BestWall)
        BestWall = Wall;
    }
    return Cost;
  };

  for (size_t LI = 0; LI != Ladder.size(); ++LI) {
    size_t Blocks = Ladder[LI];
    rewrite::RewriteOptions Greedy;
    rewrite::RewriteOptions Beam;
    Beam.Search = rewrite::SearchStrategy::Beam;
    Beam.BeamWidth = 2;
    Beam.Lookahead = 1;
    rewrite::RewriteOptions BestN;
    BestN.Search = rewrite::SearchStrategy::BestOfN;
    BestN.BeamWidth = 2;
    BestN.Lookahead = 1;

    double GreedyWall = 0, BeamWall = 0, BestNWall = 0;
    rewrite::RewriteStats BeamStats;
    double GreedyCost = BestOf(Blocks, Greedy, GreedyWall, nullptr);
    double BeamCost = BestOf(Blocks, Beam, BeamWall, &BeamStats);
    double BestNCost = BestOf(Blocks, BestN, BestNWall, nullptr);
    if (!(BeamCost < GreedyCost)) {
      std::fprintf(stderr,
                   "search-sweep: beam failed to beat greedy at %zu blocks "
                   "(%.9e vs %.9e)\n",
                   Blocks, BeamCost, GreedyCost);
      return 1;
    }
    std::printf("    {\"blocks\": %zu, \"greedy_cost_us\": %.3f, "
                "\"beam_cost_us\": %.3f, \"bestofn_cost_us\": %.3f, "
                "\"improvement\": %.4f, \"beam_fired\": %llu, "
                "\"beam_expansions\": %llu, \"greedy_wall_ms\": %.3f, "
                "\"beam_wall_ms\": %.3f}%s\n",
                Blocks, GreedyCost * 1e6, BeamCost * 1e6, BestNCost * 1e6,
                GreedyCost / BeamCost,
                (unsigned long long)BeamStats.TotalFired,
                (unsigned long long)BeamStats.SearchExpansions,
                GreedyWall * 1e3, BeamWall * 1e3,
                LI + 1 == Ladder.size() ? "" : ",");
  }

  // Leg two: the confluent zoo — search cannot improve the end state, so
  // the cost columns must agree and the wall columns price the tax.
  std::vector<models::ModelEntry> Zoo;
  {
    auto Hf = models::hfSuite();
    auto Tv = models::tvSuite();
    const size_t PerSuite = Smoke ? 2 : SIZE_MAX;
    for (size_t I = 0; I != Hf.size() && I != PerSuite; ++I)
      Zoo.push_back(Hf[I]);
    for (size_t I = 0; I != Tv.size() && I != PerSuite; ++I)
      Zoo.push_back(Tv[I]);
  }
  std::printf("  ],\n  \"zoo\": [\n");
  for (size_t MI = 0; MI != Zoo.size(); ++MI) {
    const models::ModelEntry &Model = Zoo[MI];
    auto RunZoo = [&](const rewrite::RewriteOptions &Opts, double &BestWall) {
      double Cost = 0;
      for (int Rep = 0; Rep != Repeats; ++Rep) {
        term::Signature Sig;
        auto G = Model.Build(Sig);
        opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
        Clock::time_point T0 = Clock::now();
        (void)rewrite::rewriteToFixpoint(*G, Pipe.Rules,
                                         graph::ShapeInference(), Opts);
        double Wall = std::chrono::duration<double>(Clock::now() - T0).count();
        if (Rep == 0 || Wall < BestWall)
          BestWall = Wall;
        Cost = sim::CostModel().graphCost(*G).Seconds;
      }
      return Cost;
    };
    rewrite::RewriteOptions Greedy;
    rewrite::RewriteOptions Beam;
    Beam.Search = rewrite::SearchStrategy::Beam;
    Beam.BeamWidth = 4;
    Beam.Lookahead = 2;
    double GreedyWall = 0, BeamWall = 0;
    double GreedyCost = RunZoo(Greedy, GreedyWall);
    double BeamCost = RunZoo(Beam, BeamWall);
    if (BeamCost > GreedyCost + 1e-15) {
      std::fprintf(stderr, "search-sweep: beam regressed the zoo model %s "
                           "(%.9e vs %.9e)\n",
                   Model.Name.c_str(), BeamCost, GreedyCost);
      return 1;
    }
    std::printf("    {\"model\": \"%s\", \"greedy_cost_us\": %.3f, "
                "\"beam_cost_us\": %.3f, \"greedy_wall_ms\": %.3f, "
                "\"beam_wall_ms\": %.3f, \"search_tax\": %.3f}%s\n",
                Model.Name.c_str(), GreedyCost * 1e6, BeamCost * 1e6,
                GreedyWall * 1e3, BeamWall * 1e3,
                GreedyWall > 0 ? BeamWall / GreedyWall : 0.0,
                MI + 1 == Zoo.size() ? "" : ",");
  }
  std::printf("  ]\n}\n");
  return 0;
}

/// `--critical-sweep`: what the confluence certificate costs to produce
/// and what it buys back (BENCH_critical_sweep.json). Leg one prices the
/// analysis itself: best-of-R analyzeConfluence wall time over every §4
/// std library plus the conflict rule set from `--search-sweep`, with the
/// verdict and pair counts alongside — the certificate is a compile-time
/// artifact, so this is the once-per-.pypmplan cost. Leg two measures the
/// search tax `--search=auto` avoids: over the zoo, the certified epilog
/// library is rewritten to fixpoint under an uncertified user's cautious
/// beam(4,1) and under auto carrying the certificate (which resolves to
/// greedy); end-state modeled costs must agree and auto must report zero
/// search work, so the wall-clock ratio is pure avoided tax. Leg three is
/// the safety half: on the conflict ladder auto must land exactly on
/// beam's (cheaper) end state — the certificate never trades result
/// quality for speed. `--smoke` shrinks the zoo and the repeat count.
int runCriticalSweep(bool Smoke) {
  namespace critical = analysis::critical;
  const int Repeats = Smoke ? 3 : 9;
  using Clock = std::chrono::steady_clock;

  constexpr const char *ConflictRules = R"pypm(
pattern EpiGelu(a, b) { return Gelu(MatMul(a, b)); }
rule epi for EpiGelu(a, b) { return GemmEpilog(a, b); }

pattern FullGelu(x, y) {
  yt = Trans(y);
  return Gelu(MatMul(x, yt));
}
rule full for FullGelu(x, y) { return Gelu(cublasMM_xyT_f32(x, y)); }
)pypm";

  std::printf("{\n  \"repeats\": %d,\n  \"smoke\": %s,\n  \"analysis\": [\n",
              Repeats, Smoke ? "true" : "false");

  // Leg one: analysis cost + verdict per rule set.
  struct Entry {
    const char *Name;
    std::unique_ptr<pattern::Library> (*Compile)(term::Signature &);
  };
  const Entry Libraries[] = {{"fmha", opt::compileFmha},
                             {"epilog", opt::compileEpilog},
                             {"cublas", opt::compileCublas},
                             {"unarychain", opt::compileUnaryChain},
                             {"partition", opt::compilePartition}};
  auto EmitRow = [&](const char *Name, size_t Rules,
                     const critical::ConfluenceReport &R, double BestSec,
                     bool Last) {
    std::printf("    {\"ruleset\": \"%s\", \"rules\": %zu, "
                "\"verdict\": \"%s\", \"pairs\": %u, \"joinable\": %u, "
                "\"conflicting\": %u, \"unknown\": %u, "
                "\"analysis_ms\": %.3f}%s\n",
                Name, Rules,
                std::string(critical::verdictName(R.Overall)).c_str(),
                R.PairsExamined, R.PairsJoinable, R.PairsConflicting,
                R.PairsUnknown, BestSec * 1e3, Last ? "" : ",");
  };
  for (const Entry &E : Libraries) {
    term::Signature Sig;
    auto Lib = E.Compile(Sig);
    critical::ConfluenceReport R;
    double Best = 0;
    for (int Rep = 0; Rep != Repeats; ++Rep) {
      Clock::time_point T0 = Clock::now();
      R = critical::analyzeConfluence(*Lib, Sig);
      double Sec = std::chrono::duration<double>(Clock::now() - T0).count();
      if (Rep == 0 || Sec < Best)
        Best = Sec;
    }
    EmitRow(E.Name, Lib->Rules.size(), R, Best, /*Last=*/false);
  }
  {
    term::Signature Sig;
    models::declareModelOps(Sig);
    auto Lib = dsl::compileOrDie(ConflictRules, Sig);
    critical::ConfluenceReport R;
    double Best = 0;
    for (int Rep = 0; Rep != Repeats; ++Rep) {
      Clock::time_point T0 = Clock::now();
      R = critical::analyzeConfluence(*Lib, Sig);
      double Sec = std::chrono::duration<double>(Clock::now() - T0).count();
      if (Rep == 0 || Sec < Best)
        Best = Sec;
    }
    if (R.Overall != critical::Verdict::Conflicting) {
      std::fprintf(stderr, "critical-sweep: the conflict rule set failed to "
                           "refute (verdict %s)\n",
                   std::string(critical::verdictName(R.Overall)).c_str());
      return 1;
    }
    EmitRow("conflict", Lib->Rules.size(), R, Best, /*Last=*/true);
  }

  // Leg two: search tax avoided by auto on the certified epilog library.
  std::vector<models::ModelEntry> Zoo;
  {
    auto Hf = models::hfSuite();
    auto Tv = models::tvSuite();
    const size_t PerSuite = Smoke ? 2 : SIZE_MAX;
    for (size_t I = 0; I != Hf.size() && I != PerSuite; ++I)
      Zoo.push_back(Hf[I]);
    for (size_t I = 0; I != Tv.size() && I != PerSuite; ++I)
      Zoo.push_back(Tv[I]);
  }
  std::printf("  ],\n  \"tax_avoided\": [\n");
  double BeamSum = 0, AutoSum = 0;
  for (size_t MI = 0; MI != Zoo.size(); ++MI) {
    const models::ModelEntry &Model = Zoo[MI];
    critical::ConfluenceReport CR;
    {
      term::Signature Sig;
      (void)Model.Build(Sig);
      CR = critical::analyzeConfluence(*opt::compileEpilog(Sig), Sig);
    }
    if (!CR.certified()) {
      std::fprintf(stderr, "critical-sweep: the epilog library failed to "
                           "certify on %s (verdict %s)\n",
                   Model.Name.c_str(),
                   std::string(critical::verdictName(CR.Overall)).c_str());
      return 1;
    }
    auto RunOnce = [&](const rewrite::RewriteOptions &Opts, double &BestWall,
                       bool First, rewrite::RewriteStats *StatsOut) {
      term::Signature Sig;
      auto G = Model.Build(Sig);
      auto Epilog = opt::compileEpilog(Sig);
      RuleSet RS;
      RS.addLibrary(*Epilog);
      Clock::time_point T0 = Clock::now();
      rewrite::RewriteStats S =
          rewrite::rewriteToFixpoint(*G, RS, graph::ShapeInference(), Opts);
      double Wall = std::chrono::duration<double>(Clock::now() - T0).count();
      if (First || Wall < BestWall)
        BestWall = Wall;
      if (StatsOut)
        *StatsOut = S;
      return sim::CostModel().graphCost(*G).Seconds;
    };
    rewrite::RewriteOptions Beam;
    Beam.Search = rewrite::SearchStrategy::Beam;
    Beam.BeamWidth = 4;
    Beam.Lookahead = 1;
    rewrite::RewriteOptions Auto = Beam;
    Auto.Search = rewrite::SearchStrategy::Auto;
    Auto.Confluence = &CR;

    double BeamWall = 0, AutoWall = 0;
    double BeamCost = 0, AutoCost = 0;
    rewrite::RewriteStats AutoStats;
    for (int Rep = 0; Rep != Repeats; ++Rep) {
      BeamCost = RunOnce(Beam, BeamWall, Rep == 0, nullptr);
      AutoCost = RunOnce(Auto, AutoWall, Rep == 0, &AutoStats);
    }
    if (AutoStats.SearchSteps != 0 || AutoStats.SearchExpansions != 0) {
      std::fprintf(stderr, "critical-sweep: auto spent search work on the "
                           "certified set (%s)\n",
                   Model.Name.c_str());
      return 1;
    }
    if (AutoCost > BeamCost + 1e-15) {
      std::fprintf(stderr, "critical-sweep: auto regressed end-state cost "
                           "on %s (%.9e vs %.9e)\n",
                   Model.Name.c_str(), AutoCost, BeamCost);
      return 1;
    }
    BeamSum += BeamWall;
    AutoSum += AutoWall;
    std::printf("    {\"model\": \"%s\", \"beam_wall_ms\": %.3f, "
                "\"auto_wall_ms\": %.3f, \"tax_avoided\": %.3f}%s\n",
                Model.Name.c_str(), BeamWall * 1e3, AutoWall * 1e3,
                AutoWall > 0 ? BeamWall / AutoWall : 0.0,
                MI + 1 == Zoo.size() ? "" : ",");
  }
  std::printf("  ],\n  \"tax_avoided_total\": {\"beam_wall_ms\": %.3f, "
              "\"auto_wall_ms\": %.3f, \"tax_avoided\": %.3f},\n",
              BeamSum * 1e3, AutoSum * 1e3,
              AutoSum > 0 ? BeamSum / AutoSum : 0.0);

  // Leg three: on the conflicting set auto must land on beam's end state.
  {
    auto RunConflictBlocks = [&](const rewrite::RewriteOptions &Opts) {
      term::Signature Sig;
      models::declareModelOps(Sig);
      auto Lib = dsl::compileOrDie(ConflictRules, Sig);
      RuleSet RS;
      RS.addLibrary(*Lib);
      graph::Graph G(Sig);
      for (size_t I = 0; I != 4; ++I) {
        graph::NodeId A = G.addLeaf(
            "Input", graph::TensorType::make(term::DType::F32, {512, 512}));
        graph::NodeId B = G.addLeaf(
            "Input", graph::TensorType::make(term::DType::F32, {512, 512}));
        graph::NodeId T = G.addNode(Sig.lookup("Trans"), {B});
        graph::NodeId M = G.addNode(Sig.lookup("MatMul"), {A, T});
        graph::NodeId Ge = G.addNode(Sig.lookup("Gelu"), {M});
        G.addOutput(Ge);
      }
      graph::ShapeInference SI;
      SI.inferAll(G);
      (void)rewrite::rewriteToFixpoint(G, RS, SI, Opts);
      return sim::CostModel().graphCost(G).Seconds;
    };
    rewrite::RewriteOptions Greedy;
    rewrite::RewriteOptions Beam;
    Beam.Search = rewrite::SearchStrategy::Beam;
    Beam.BeamWidth = 2;
    Beam.Lookahead = 1;
    rewrite::RewriteOptions Auto = Beam;
    Auto.Search = rewrite::SearchStrategy::Auto;
    double GreedyCost = RunConflictBlocks(Greedy);
    double BeamCost = RunConflictBlocks(Beam);
    double AutoCost = RunConflictBlocks(Auto);
    if (AutoCost != BeamCost || !(AutoCost < GreedyCost)) {
      std::fprintf(stderr, "critical-sweep: auto failed to keep beam's end "
                           "state on the conflicting set (greedy %.9e, "
                           "beam %.9e, auto %.9e)\n",
                   GreedyCost, BeamCost, AutoCost);
      return 1;
    }
    std::printf("  \"conflict_guard\": {\"greedy_cost_us\": %.3f, "
                "\"beam_cost_us\": %.3f, \"auto_cost_us\": %.3f}\n}\n",
                GreedyCost * 1e6, BeamCost * 1e6, AutoCost * 1e6);
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (std::string_view(argv[I]) == "--smoke")
      Smoke = true;
  for (int I = 1; I < argc; ++I) {
    if (std::string_view(argv[I]) == "--threads-sweep")
      return runThreadsSweep();
    if (std::string_view(argv[I]) == "--ruleset-sweep")
      return runRulesetSweep();
    if (std::string_view(argv[I]) == "--aot-sweep")
      return runAotSweep(Smoke);
    if (std::string_view(argv[I]) == "--profiled-sweep")
      return runProfiledSweep();
    if (std::string_view(argv[I]) == "--incremental-sweep")
      return runIncrementalSweep(Smoke);
    if (std::string_view(argv[I]) == "--daemon-sweep")
      return runDaemonSweep(Smoke);
    if (std::string_view(argv[I]) == "--search-sweep")
      return runSearchSweep(Smoke);
    if (std::string_view(argv[I]) == "--critical-sweep")
      return runCriticalSweep(Smoke);
  }
  std::printf("=== Section 4.2: directed graph partitioning with Fig. 14's "
              "MatMulEpilog family ===\n");
  runSuite("HuggingFace suite", models::hfSuite());
  runSuite("TorchVision suite", models::tvSuite());
  std::printf("\nEach accepted region is replaced by one just-in-time "
              "fused kernel priced by the cost model\n(one launch, "
              "boundary-only memory traffic) — the \"pass the subgraph to "
              "a compiler that can\nbuild the fused kernel\" step of "
              "§4.2.\n");
  return 0;
}
