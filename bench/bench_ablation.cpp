//===- bench/bench_ablation.cpp - Engine design-choice ablations ---------------===//
///
/// \file
/// Quantifies the two engine-level optimizations DESIGN.md calls out,
/// holding the rewrite results fixed (tests assert equality; this bench
/// measures the cost difference):
///
///  1. Root-operator prefilter: patterns whose possible root operators
///     are statically known (MHA ⇒ MatMul; ConvBiasAct ⇒ any — rooted at
///     a function variable) skip incompatible nodes without starting the
///     machine.
///  2. Memoized node→term conversion: without it, every match attempt
///     re-converts the subgraph.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace pypm;
using namespace pypm::bench;
using namespace pypm::rewrite;

namespace {

struct AblationRow {
  uint64_t Attempts = 0;
  uint64_t RootSkips = 0;
  double MatchMs = 0;
  uint64_t Fired = 0;
};

AblationRow run(const models::ModelEntry &Model, bool UseRootIndex,
                bool Memoize, bool FastMatcher = true) {
  term::Signature Sig;
  auto G = Model.Build(Sig);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
  RewriteOptions Opts;
  Opts.UseRootIndex = UseRootIndex;
  Opts.MemoizeTermView = Memoize;
  Opts.UseFastMatcher = FastMatcher;
  RewriteStats Stats =
      rewriteToFixpoint(*G, Pipe.Rules, graph::ShapeInference(), Opts);
  AblationRow Row;
  Row.MatchMs = Stats.MatchSeconds * 1e3;
  Row.Fired = Stats.TotalFired;
  for (const auto &[Name, PS] : Stats.PerPattern) {
    Row.Attempts += PS.Attempts;
    Row.RootSkips += PS.RootSkips;
  }
  return Row;
}

} // namespace

int main() {
  std::printf("=== Engine ablations over the HuggingFace suite "
              "(FMHA+Epilog pipeline) ===\n\n");
  std::printf("%-20s | %10s %10s %9s | %10s %9s | %10s %9s | %9s\n",
              "model", "attempts", "rootskips", "full(ms)", "attempts",
              "noidx(ms)", "attempts", "nomemo(ms)", "refvm(ms)");

  double FullTotal = 0, NoIndexTotal = 0, NoMemoTotal = 0, RefVmTotal = 0;
  for (const models::ModelEntry &Model : models::hfSuite()) {
    AblationRow Full = run(Model, /*UseRootIndex=*/true, /*Memoize=*/true);
    AblationRow NoIndex = run(Model, false, true);
    AblationRow NoMemo = run(Model, true, false);
    AblationRow RefVm = run(Model, true, true, /*FastMatcher=*/false);
    RefVmTotal += RefVm.MatchMs;
    if (Full.Fired != RefVm.Fired) {
      std::fprintf(stderr, "matcher ablation changed results on %s!\n",
                   Model.Name.c_str());
      return 1;
    }
    if (Full.Fired != NoIndex.Fired || Full.Fired != NoMemo.Fired) {
      std::fprintf(stderr, "ablation changed results on %s!\n",
                   Model.Name.c_str());
      return 1;
    }
    std::printf("%-20s | %10llu %10llu %9.3f | %10llu %9.3f | %10llu "
                "%9.3f | %9.3f\n",
                Model.Name.c_str(), (unsigned long long)Full.Attempts,
                (unsigned long long)Full.RootSkips, Full.MatchMs,
                (unsigned long long)NoIndex.Attempts, NoIndex.MatchMs,
                (unsigned long long)NoMemo.Attempts, NoMemo.MatchMs,
                RefVm.MatchMs);
    FullTotal += Full.MatchMs;
    NoIndexTotal += NoIndex.MatchMs;
    NoMemoTotal += NoMemo.MatchMs;
  }
  std::printf("\nsuite totals: full=%.1fms  no-root-index=%.1fms (%.2fx)  "
              "no-memo=%.1fms (%.2fx)  reference-vm=%.1fms (%.2fx)\n",
              FullTotal, NoIndexTotal, NoIndexTotal / FullTotal,
              NoMemoTotal, NoMemoTotal / FullTotal, RefVmTotal,
              RefVmTotal / FullTotal);
  std::printf("\nNote: the prefilter only helps patterns with concrete "
              "root operators (MHA, GeluExpanded);\nthe function-variable-"
              "rooted epilog patterns must probe every node either way — "
              "the same\nstructural fact behind Fig. 12/13's expensive "
              "Epilog pass.\n");
  return 0;
}
