//===- bench/fig10_hf_speedups.cpp - Figure 10 reproduction --------------------===//
///
/// \file
/// Paper Figure 10: "histograms reporting the distributions of relative
/// speedups (when compared to DLCB with neither optimization enabled)
/// across all models achieved under each set of optimizations", on the
/// HuggingFace suite. Each model is compiled four ways — baseline, FMHA
/// only, Epilog only, both — and timed with the cost-model simulator.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace pypm;
using namespace pypm::bench;

int main() {
  std::printf("=== Figure 10: HuggingFace suite, relative speedup per "
              "optimization set ===\n\n");
  std::printf("%-20s %10s | %8s %8s %8s | %5s %5s\n", "model", "base(ms)",
              "fmha", "epilog", "both", "#mha", "#epi");

  std::vector<double> Fmha, Epilog, Both;
  for (const models::ModelEntry &Model : models::hfSuite()) {
    ConfigResult None = runConfig(Model, opt::OptConfig::None);
    ConfigResult F = runConfig(Model, opt::OptConfig::FmhaOnly);
    ConfigResult E = runConfig(Model, opt::OptConfig::EpilogOnly);
    ConfigResult B = runConfig(Model, opt::OptConfig::Both);
    double SF = None.Seconds / F.Seconds;
    double SE = None.Seconds / E.Seconds;
    double SB = None.Seconds / B.Seconds;
    Fmha.push_back(SF);
    Epilog.push_back(SE);
    Both.push_back(SB);
    std::printf("%-20s %10.3f | %7.3fx %7.3fx %7.3fx | %5llu %5llu\n",
                Model.Name.c_str(), None.Seconds * 1e3, SF, SE, SB,
                (unsigned long long)F.Fired,
                (unsigned long long)(E.Fired));
  }

  printHistogram("FMHA only: relative speedup distribution", Fmha);
  printHistogram("Epilog only: relative speedup distribution", Epilog);
  printHistogram("FMHA + Epilog: relative speedup distribution", Both);

  std::printf("\nExpected shape (paper): speedups concentrated between "
              "1.0x and ~1.5x, every model >= 1.0x,\nFMHA+Epilog "
              "dominating either alone; attention-heavy long-context "
              "models gain most from FMHA.\n");
  return 0;
}
