//===- tests/test_fastmatcher.cpp - Optimized matcher ≡ reference machine ------===//
///
/// FastMatcher is the "production C++ matcher" of the paper's narrative;
/// the reference Machine is the idealized semantics of Figs. 17–18. These
/// tests pin their equivalence: identical terminal status, identical first
/// witness, identical resume() streams — on the paper's feature patterns
/// and on thousands of random (pattern, term) pairs spanning the whole
/// core calculus. Since the Machine is differentially tested against the
/// declarative semantics, equivalence transfers Theorem 2 to FastMatcher.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "dsl/Sema.h"
#include "match/FastMatcher.h"
#include "models/Transformers.h"
#include "opt/StdPatterns.h"
#include "rewrite/RewriteEngine.h"
#include "support/Random.h"

#include <functional>

using namespace pypm;
using namespace pypm::match;
using namespace pypm::pattern;
using pypm::testing::CoreFixture;

namespace {

bool isUserVisibleSym(Symbol S) {
  return S.str().find('$') == std::string_view::npos;
}

/// Restriction used where μ-unfold freshening makes binder names differ
/// between the two engines' memoization strategies (FastMatcher reuses the
/// first unfold's names on retries; the reference machine freshens per
/// retry — user-visible bindings are unaffected).
Witness restrictVisible(const Witness &W) {
  Witness Out;
  for (const auto &[K, V] : W.Theta)
    if (isUserVisibleSym(K))
      Out.Theta.bind(K, V);
  for (const auto &[K, V] : W.Phi)
    if (isUserVisibleSym(K))
      Out.Phi.bind(K, V);
  return Out;
}

class FastMatcherTest : public CoreFixture {
protected:
  void expectAgree(const Pattern *P, term::TermRef T) {
    MatchResult Ref = matchPattern(P, T, Arena);
    MatchResult Fast = FastMatcher::run(P, T, Arena);
    ASSERT_EQ(Fast.Status, Ref.Status)
        << P->toString(Sig) << " vs " << Arena.toString(T);
    if (Ref.Status == MachineStatus::Success) {
      EXPECT_EQ(Fast.W, Ref.W)
          << P->toString(Sig) << " vs " << Arena.toString(T) << "\n  ref  "
          << toString(Ref.W, Sig) << "\n  fast " << toString(Fast.W, Sig);
    }
  }
};

} // namespace

TEST_F(FastMatcherTest, AgreesOnBasicForms) {
  expectAgree(v("x"), t("F(C, D)"));
  expectAgree(app("Pair", {v("x"), v("x")}), t("Pair(C, C)"));
  expectAgree(app("Pair", {v("x"), v("x")}), t("Pair(C, D)"));
  expectAgree(app("Trans", {v("x")}), t("Softmax1(A)"));
}

TEST_F(FastMatcherTest, AgreesOnAlternatesAndGuards) {
  const GuardExpr *RankIs2 = PA.binary(
      GuardKind::Eq, PA.attr(Symbol::intern("x"), Symbol::intern("rank")),
      PA.intLit(2));
  const Pattern *P =
      PA.alt(PA.guarded(v("x"), RankIs2), app("Trans", {v("y")}));
  expectAgree(P, t("A[rank=2]"));
  expectAgree(P, t("Trans(B[rank=7])"));
  expectAgree(P, t("C"));
}

TEST_F(FastMatcherTest, AgreesOnExistsAndConstraints) {
  Symbol X = Symbol::intern("x"), Y = Symbol::intern("y");
  const Pattern *P = PA.exists(
      Y, PA.matchConstraint(PA.var(X), app("Trans", {PA.var(Y)}), X));
  expectAgree(P, t("Trans(B)"));
  expectAgree(P, t("Softmax1(B)"));
}

TEST_F(FastMatcherTest, AgreesOnRecursionIncludingFuelExhaustion) {
  Symbol U = Symbol::intern("U"), X = Symbol::intern("x"),
         F = Symbol::intern("f");
  const Pattern *Body = PA.alt(PA.funVarApp(F, {PA.recCall(U, {X, F})}),
                               PA.funVarApp(F, {PA.var(X)}));
  const Pattern *Chain = PA.mu(U, {X, F}, {X, F}, Body);
  expectAgree(Chain, t("Relu(Relu(Relu(C)))"));
  expectAgree(Chain, t("Relu(Tanh(C))"));
  expectAgree(Chain, t("C"));

  Symbol P = Symbol::intern("P");
  const Pattern *Diverge = PA.mu(P, {X}, {X}, PA.recCall(P, {X}));
  Machine::Options Tight;
  Tight.MaxMuUnfolds = 32;
  MatchResult Ref = matchPattern(Diverge, t("C"), Arena, Tight);
  MatchResult Fast = FastMatcher::run(Diverge, t("C"), Arena, Tight);
  EXPECT_EQ(Ref.Status, MachineStatus::OutOfFuel);
  EXPECT_EQ(Fast.Status, MachineStatus::OutOfFuel);
}

TEST_F(FastMatcherTest, ResumeStreamsAgree) {
  const Pattern *P = PA.alt(app("Pair", {v("x"), v("y")}),
                            app("Pair", {v("y"), v("x")}));
  term::TermRef T = t("Pair(C1, C2)");
  std::vector<Witness> RefStream = allSolutions(P, T, Arena);
  FastMatcher FM(Arena);
  std::vector<Witness> FastStream;
  MachineStatus S = FM.match(P, T);
  while (S == MachineStatus::Success) {
    FastStream.push_back(FM.witness());
    S = FM.resume();
  }
  ASSERT_EQ(FastStream.size(), RefStream.size());
  for (size_t I = 0; I != RefStream.size(); ++I)
    EXPECT_EQ(FastStream[I], RefStream[I]) << "solution " << I;
}

TEST_F(FastMatcherTest, BacktrackUnwindsTrailExactly) {
  // The left alternate binds x and F before failing; the right alternate
  // must observe a clean state (trail unwinding ≡ snapshot restore).
  Symbol F = Symbol::intern("F");
  op("G", 1);
  const Pattern *Left =
      app("Pair", {PA.funVarApp(F, {v("x")}), app("G", {v("x")})});
  const Pattern *Right = app("Pair", {v("x"), v("y")});
  const Pattern *P = PA.alt(Left, Right);
  term::TermRef T = t("Pair(Relu(C), G(D))");
  expectAgree(P, T);
  MatchResult Fast = FastMatcher::run(P, T, Arena);
  ASSERT_TRUE(Fast.matched());
  // Right branch: x = Relu(C), y = G(D); no φ binding survives.
  EXPECT_EQ(Fast.W.Theta.lookup(Symbol::intern("x")), t("Relu(C)"));
  EXPECT_TRUE(Fast.W.Phi.empty());
}

TEST_F(FastMatcherTest, AgreesOnThePaperLibraries) {
  term::Signature Sig2;
  models::declareModelOps(Sig2);
  auto Fmha = opt::compileFmha(Sig2);
  auto Epilog = opt::compileEpilog(Sig2);
  auto Partition = opt::compilePartition(Sig2);
  models::TransformerConfig TC;
  TC.Name = "t";
  TC.Layers = 1;
  TC.Hidden = 64;
  auto G = models::buildTransformer(Sig2, TC);
  term::TermArena Arena2(Sig2);
  graph::TermView View(*G, Arena2);

  std::vector<const Pattern *> Patterns;
  for (const auto *Lib : {Fmha.get(), Epilog.get(), Partition.get()})
    for (const NamedPattern &NP : Lib->PatternDefs)
      Patterns.push_back(NP.Pat);

  for (graph::NodeId N : G->topoOrder()) {
    term::TermRef T = View.termFor(N);
    for (const Pattern *P : Patterns) {
      MatchResult Ref = matchPattern(P, T, Arena2);
      MatchResult Fast = FastMatcher::run(P, T, Arena2);
      ASSERT_EQ(Fast.Status, Ref.Status) << "node " << N;
      if (Ref.matched()) {
        ASSERT_EQ(restrictVisible(Fast.W), restrictVisible(Ref.W))
            << "node " << N;
      }
    }
  }
}

TEST_F(FastMatcherTest, EngineResultsIdenticalUnderBothMatchers) {
  for (auto Config : {opt::OptConfig::FmhaOnly, opt::OptConfig::Both}) {
    term::Signature SigA, SigB;
    models::TransformerConfig TC;
    TC.Name = "t";
    TC.Layers = 2;
    TC.Hidden = 128;
    auto GA = models::buildTransformer(SigA, TC);
    auto GB = models::buildTransformer(SigB, TC);
    opt::Pipeline PA2 = opt::makePipeline(SigA, Config);
    opt::Pipeline PB = opt::makePipeline(SigB, Config);
    rewrite::RewriteOptions FastOpts, RefOpts;
    RefOpts.UseFastMatcher = false;
    rewrite::RewriteStats SA = rewrite::rewriteToFixpoint(
        *GA, PA2.Rules, graph::ShapeInference(), FastOpts);
    rewrite::RewriteStats SB = rewrite::rewriteToFixpoint(
        *GB, PB.Rules, graph::ShapeInference(), RefOpts);
    EXPECT_EQ(SA.TotalFired, SB.TotalFired);
    EXPECT_EQ(SA.TotalMatches, SB.TotalMatches);
    ASSERT_EQ(GA->numNodes(), GB->numNodes());
    for (graph::NodeId N = 0; N != GA->numNodes(); ++N) {
      EXPECT_EQ(GA->isDead(N), GB->isDead(N));
      if (!GA->isDead(N)) {
        EXPECT_EQ(SigA.name(GA->op(N)), SigB.name(GB->op(N)));
      }
    }
  }
}

TEST_F(FastMatcherTest, StepCountsMatchTheReferenceMachine) {
  // Both engines implement the same transition system; their step counts
  // coincide (one step per action processed).
  const Pattern *P = PA.alt(app("Pair", {v("x"), app("Trans", {v("x")})}),
                            app("Pair", {v("x"), v("y")}));
  term::TermRef T = t("Pair(C, Trans(D))");
  MatchResult Ref = matchPattern(P, T, Arena);
  MatchResult Fast = FastMatcher::run(P, T, Arena);
  EXPECT_EQ(Fast.Stats.Steps, Ref.Stats.Steps);
  EXPECT_EQ(Fast.Stats.Backtracks, Ref.Stats.Backtracks);
  EXPECT_EQ(Fast.Stats.MuUnfolds, Ref.Stats.MuUnfolds);
}

//===----------------------------------------------------------------------===//
// Randomized equivalence
//===----------------------------------------------------------------------===//

namespace {

class FastMatcherRandomTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(FastMatcherRandomTest, RandomPatternsAgree) {
  term::Signature Sig;
  term::TermArena Arena(Sig);
  PatternArena PA;
  Rng R(GetParam() * 6151 + 3);

  term::OpId C0 = Sig.addOp("c0", 0), C1 = Sig.addOp("c1", 0);
  term::OpId U0 = Sig.addOp("u0", 1), B0 = Sig.addOp("b0", 2);

  // Small structural generator (a lighter cousin of the one in
  // test_differential.cpp; μ and ∃F included).
  std::vector<Symbol> Vars{Symbol::intern("x"), Symbol::intern("y")};
  uint64_t Fresh = 0;
  std::function<term::TermRef(unsigned)> GenTerm =
      [&](unsigned Depth) -> term::TermRef {
    if (Depth == 0 || R.chance(1, 3))
      return Arena.leaf(R.chance(1, 2) ? C0 : C1);
    if (R.chance(1, 2))
      return Arena.make(U0, {GenTerm(Depth - 1)});
    return Arena.make(B0, {GenTerm(Depth - 1), GenTerm(Depth - 1)});
  };
  std::function<const Pattern *(unsigned)> GenPat =
      [&](unsigned Depth) -> const Pattern * {
    if (Depth == 0)
      return PA.var(Vars[R.below(2)]);
    switch (R.below(8)) {
    case 0:
      return PA.var(Vars[R.below(2)]);
    case 1:
      return PA.app(U0, {GenPat(Depth - 1)});
    case 2:
      return PA.app(B0, {GenPat(Depth - 1), GenPat(Depth - 1)});
    case 3:
      return PA.alt(GenPat(Depth - 1), GenPat(Depth - 1));
    case 4: {
      Symbol V = Symbol::intern("e" + std::to_string(Fresh++));
      return PA.exists(V, PA.app(U0, {PA.var(V)}));
    }
    case 5: {
      Symbol V = Vars[R.below(2)];
      return PA.matchConstraint(PA.var(V), GenPat(Depth - 1), V);
    }
    case 6: {
      Symbol F = Symbol::intern("F" + std::to_string(Fresh++));
      return PA.existsFun(F, PA.funVarApp(F, {GenPat(Depth - 1)}));
    }
    case 7: {
      Symbol Self = Symbol::intern("P" + std::to_string(Fresh++));
      Symbol Param = Symbol::intern("r" + std::to_string(Fresh++));
      const Pattern *Step = PA.app(U0, {PA.recCall(Self, {Param})});
      return PA.mu(Self, {Param}, {Vars[R.below(2)]},
                   PA.alt(Step, GenPat(Depth - 1)));
    }
    }
    return PA.var(Vars[0]);
  };

  for (int Iter = 0; Iter != 400; ++Iter) {
    term::TermRef T = GenTerm(4);
    const Pattern *P = GenPat(3);
    MatchResult Ref = matchPattern(P, T, Arena);
    MatchResult Fast = FastMatcher::run(P, T, Arena);
    ASSERT_EQ(Fast.Status, Ref.Status)
        << P->toString(Sig) << " against " << Arena.toString(T);
    if (Ref.matched()) {
      // Compare user-visible bindings (μ-retry freshening may differ).
      auto Visible = [](const Witness &W) {
        Witness Out;
        for (const auto &[K, V] : W.Theta)
          if (K.str().find('$') == std::string_view::npos)
            Out.Theta.bind(K, V);
        for (const auto &[K, V] : W.Phi)
          if (K.str().find('$') == std::string_view::npos)
            Out.Phi.bind(K, V);
        return Out;
      };
      ASSERT_EQ(Visible(Fast.W), Visible(Ref.W))
          << P->toString(Sig) << " against " << Arena.toString(T);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastMatcherRandomTest,
                         ::testing::Range<uint64_t>(0, 8));
