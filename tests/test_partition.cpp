//===- tests/test_partition.cpp - Directed graph partitioning (§4.2) -----------===//

#include "models/Zoo.h"
#include "opt/StdPatterns.h"
#include "rewrite/Partition.h"
#include "sim/CostModel.h"

#include <gtest/gtest.h>

using namespace pypm;
using namespace pypm::graph;
using namespace pypm::rewrite;

namespace {

class PartitionTest : public ::testing::Test {
protected:
  PartitionTest() : G(Sig) {
    models::declareModelOps(Sig);
    Lib = opt::compilePartition(Sig);
  }

  NodeId input(std::initializer_list<int64_t> Dims) {
    return G.addLeaf("Input", TensorType::make(term::DType::F32, Dims));
  }

  NodeId node(std::string_view Op, std::initializer_list<NodeId> In) {
    NodeId N = G.addNode(Sig.lookup(Op), In);
    SI.inferNode(G, N);
    return N;
  }

  PartitionResult partition(std::string_view PatternName,
                            std::vector<std::string_view> Frontier,
                            PartitionOptions Opts = {}) {
    std::vector<Symbol> Syms;
    for (std::string_view F : Frontier)
      Syms.push_back(Symbol::intern(F));
    return partitionGraph(G, *Lib->findPattern(PatternName), Syms, Opts);
  }

  term::Signature Sig;
  Graph G;
  ShapeInference SI;
  std::unique_ptr<pattern::Library> Lib;
};

} // namespace

TEST_F(PartitionTest, FindsUnaryTowerOverMatMul) {
  NodeId M = node("MatMul", {input({8, 8}), input({8, 8})});
  NodeId Root = node("Gelu", {node("Relu", {M})});
  G.addOutput(Root);
  PartitionResult P = partition("MatMulEpilog", {"a", "b"});
  ASSERT_EQ(P.Regions.size(), 1u);
  EXPECT_EQ(P.Regions[0].Root, Root);
  EXPECT_EQ(P.Regions[0].Interior.size(), 3u); // Gelu, Relu, MatMul
  EXPECT_EQ(P.Regions[0].Frontier.size(), 2u);
}

TEST_F(PartitionTest, BareMatMulFilteredByMinSize) {
  NodeId M = node("MatMul", {input({8, 8}), input({8, 8})});
  G.addOutput(M);
  EXPECT_TRUE(partition("MatMulEpilog", {"a", "b"}).Regions.empty());
  PartitionOptions Opts;
  Opts.MinInteriorSize = 1;
  EXPECT_EQ(partition("MatMulEpilog", {"a", "b"}, Opts).Regions.size(), 1u);
}

TEST_F(PartitionTest, ExtendedChainCapturesBiasAndScalars) {
  // Relu(BiasAdd(MatMul, b)) — the canonical FFN epilog.
  NodeId M = node("MatMul", {input({8, 8}), input({8, 8})});
  NodeId B = node("BiasAdd", {M, input({8})});
  NodeId Root = node("Relu", {B});
  G.addOutput(Root);
  PartitionResult P = partition("MatMulEpilogExt", {"a", "b", "b1"});
  ASSERT_EQ(P.Regions.size(), 1u);
  EXPECT_EQ(P.Regions[0].Interior.size(), 3u);
  EXPECT_EQ(P.Regions[0].Frontier.size(), 3u); // a, b, bias
}

TEST_F(PartitionTest, ScalarBinaryStepsJoinTheRegion) {
  // Div(MatMul, Const) — scaling folds into the region; the Const is
  // interior (an immediate), not a frontier input.
  NodeId M = node("MatMul", {input({8, 8}), input({8, 8})});
  NodeId Root = node("Div", {M, G.addConst(8.0)});
  G.addOutput(Root);
  PartitionResult P = partition("MatMulEpilogExt", {"a", "b", "b1"});
  ASSERT_EQ(P.Regions.size(), 1u);
  EXPECT_EQ(P.Regions[0].Interior.size(), 3u); // Div, Const, MatMul
  EXPECT_EQ(P.Regions[0].Frontier.size(), 2u); // bias absent
}

TEST_F(PartitionTest, EscapingInteriorValueRejectsRegion) {
  // The BiasAdd feeds both the Relu tower AND another consumer; fusing it
  // away would orphan that consumer.
  NodeId M = node("MatMul", {input({8, 8}), input({8, 8})});
  NodeId B = node("BiasAdd", {M, input({8})});
  NodeId Root = node("Relu", {B});
  NodeId Other = node("Tanh", {B});
  NodeId Join = node("Add", {Root, Other});
  G.addOutput(Join);
  PartitionResult P = partition("MatMulEpilogExt", {"a", "b", "b1"});
  EXPECT_GE(P.Stats.EscapeRejects, 1u);
  // B may legitimately *root* a smaller region (its value survives as the
  // fused node's output); it must never be a fused-away interior node.
  for (const Region &R : P.Regions)
    for (NodeId N : R.Interior)
      if (N != R.Root) {
        EXPECT_NE(N, B) << "escaping BiasAdd was fused away";
      }
}

TEST_F(PartitionTest, OverlapGoesToOutermostMatch) {
  // A tower of 2 over a matmul: the outer match claims everything; the
  // inner sub-tower must not produce a second region.
  NodeId M = node("MatMul", {input({8, 8}), input({8, 8})});
  NodeId R1 = node("Relu", {M});
  NodeId Root = node("Gelu", {R1});
  G.addOutput(Root);
  PartitionResult P = partition("MatMulEpilog", {"a", "b"});
  ASSERT_EQ(P.Regions.size(), 1u);
  EXPECT_EQ(P.Regions[0].Root, Root);
}

TEST_F(PartitionTest, DisjointRegionsAreAllFound) {
  for (int I = 0; I != 3; ++I) {
    NodeId M = node("MatMul", {input({8, 8}), input({8, 8})});
    G.addOutput(node("Relu", {node("Relu", {M})}));
  }
  PartitionResult P = partition("MatMulEpilog", {"a", "b"});
  EXPECT_EQ(P.Regions.size(), 3u);
}

TEST_F(PartitionTest, FuseRegionsReplacesAndStaysValid) {
  NodeId M = node("MatMul", {input({8, 8}), input({8, 8})});
  NodeId Root = node("Gelu", {node("Relu", {M})});
  // Trans is not pointwise, so the tower (and region) ends at Root.
  NodeId Out = node("Trans", {Root});
  G.addOutput(Out);
  PartitionResult P = partition("MatMulEpilog", {"a", "b"});
  ASSERT_EQ(P.Regions.size(), 1u);
  TensorType RootType = G.type(Root);

  std::vector<NodeId> Fused = fuseRegions(G, P, SI);
  ASSERT_EQ(Fused.size(), 1u);
  EXPECT_EQ(G.type(Fused[0]), RootType);
  EXPECT_EQ(G.attr(Fused[0], Symbol::intern("fused_ops")), 3);
  EXPECT_EQ(G.countOps("MatMul"), 0u);
  EXPECT_EQ(G.countOps("FusedRegion2"), 1u);
  DiagnosticEngine Diags;
  EXPECT_TRUE(G.verify(Diags)) << Diags.renderAll();
}

TEST_F(PartitionTest, PartitioningDoesNotMutateTheGraph) {
  NodeId M = node("MatMul", {input({8, 8}), input({8, 8})});
  G.addOutput(node("Relu", {M}));
  size_t Before = G.numNodes();
  partition("MatMulEpilog", {"a", "b"});
  EXPECT_EQ(G.numNodes(), Before);
}

TEST_F(PartitionTest, TransformerFfnRegionsOnReluModel) {
  term::Signature Sig2;
  models::TransformerConfig TC;
  TC.Name = "relu-tiny";
  TC.Layers = 2;
  TC.Hidden = 64;
  TC.Activation = models::TransformerConfig::Act::Relu;
  auto G2 = models::buildTransformer(Sig2, TC);
  auto Lib2 = opt::compilePartition(Sig2);
  Symbol F[3] = {Symbol::intern("a"), Symbol::intern("b"),
                 Symbol::intern("b1")};
  PartitionResult P =
      partitionGraph(*G2, *Lib2->findPattern("MatMulEpilogExt"), F);
  // Per layer: Relu(BiasAdd(MatMul)) + BiasAdd(MatMul) + scaled scores.
  EXPECT_EQ(P.Regions.size(), 6u);
  sim::CostModel CM;
  double Before = CM.graphCost(*G2).Seconds;
  fuseRegions(*G2, P, ShapeInference());
  double After = CM.graphCost(*G2).Seconds;
  EXPECT_LT(After, Before); // fusing strictly helps under the cost model
  DiagnosticEngine Diags;
  EXPECT_TRUE(G2->verify(Diags)) << Diags.renderAll();
}
