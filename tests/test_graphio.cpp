//===- tests/test_graphio.cpp - Textual graph serialization ---------------------===//

#include "graph/GraphIO.h"
#include "models/Zoo.h"

#include <gtest/gtest.h>

using namespace pypm;
using namespace pypm::graph;

namespace {

std::unique_ptr<Graph> parseOk(std::string_view Text, term::Signature &Sig) {
  DiagnosticEngine Diags;
  auto G = parseGraphText(Text, Sig, Diags);
  EXPECT_TRUE(G != nullptr) << Diags.renderAll();
  return G;
}

std::string parseErr(std::string_view Text) {
  term::Signature Sig;
  DiagnosticEngine Diags;
  auto G = parseGraphText(Text, Sig, Diags);
  EXPECT_EQ(G, nullptr) << "parse unexpectedly succeeded";
  return Diags.renderAll();
}

} // namespace

TEST(GraphIO, ParsesBasicGraph) {
  term::Signature Sig;
  auto G = parseOk(R"(
    # A · Bᵀ
    a = Input[uid=0]() : f32[64x128]
    b = Input[uid=1]() : f32[32x128]
    t = Trans(b) : f32[128x32]
    m = MatMul(a, t) : f32[64x32]
    output m
  )",
                   Sig);
  ASSERT_TRUE(G != nullptr);
  EXPECT_EQ(G->numLiveNodes(), 4u);
  EXPECT_EQ(G->outputs().size(), 1u);
  EXPECT_EQ(G->type(G->outputs()[0]).Dims, (std::vector<int64_t>{64, 32}));
  EXPECT_EQ(G->attr(0, Symbol::intern("uid")), 0);
}

TEST(GraphIO, ScalarTypesAndAttrs) {
  term::Signature Sig;
  auto G = parseOk("c = Const[value_u6=500000]() : f32[]\noutput c\n", Sig);
  ASSERT_TRUE(G != nullptr);
  EXPECT_EQ(G->type(0).rank(), 0u);
  EXPECT_EQ(G->attr(0, Symbol::intern("value_u6")), 500000);
}

TEST(GraphIO, RoundTripsEverySuiteModel) {
  for (const auto &Suite : {models::hfSuite(), models::tvSuite()}) {
    for (const models::ModelEntry &E : Suite) {
      term::Signature Sig;
      auto G = E.Build(Sig);
      std::string Text = writeGraphText(*G);
      term::Signature Sig2;
      DiagnosticEngine Diags;
      auto G2 = parseGraphText(Text, Sig2, Diags);
      ASSERT_TRUE(G2 != nullptr) << E.Name << ": " << Diags.renderAll();
      ASSERT_EQ(G2->numLiveNodes(), G->numLiveNodes()) << E.Name;
      // Re-serialization is a fixpoint (canonical form).
      ASSERT_EQ(writeGraphText(*G2), Text) << E.Name;
      DiagnosticEngine VDiags;
      ASSERT_TRUE(G2->verify(VDiags)) << E.Name << ": "
                                      << VDiags.renderAll();
    }
  }
}

TEST(GraphIO, ErrorUnknownInput) {
  std::string E = parseErr("m = Relu(ghost) : f32[4]\n");
  EXPECT_NE(E.find("unknown input node 'ghost'"), std::string::npos);
  EXPECT_NE(E.find("1:"), std::string::npos); // line-located
}

TEST(GraphIO, ErrorRedefinition) {
  std::string E = parseErr(
      "a = Input() : f32[4]\na = Input() : f32[4]\n");
  EXPECT_NE(E.find("redefined"), std::string::npos);
}

TEST(GraphIO, ErrorBadDtype) {
  std::string E = parseErr("a = Input() : f99[4]\n");
  EXPECT_NE(E.find("unknown dtype"), std::string::npos);
}

TEST(GraphIO, ErrorArityMismatchAgainstDeclaredOp) {
  std::string E = parseErr(
      "a = Input() : f32[4]\nb = Relu(a) : f32[4]\nc = Relu(a, b) : "
      "f32[4]\n");
  EXPECT_NE(E.find("expects 1 inputs"), std::string::npos);
}

TEST(GraphIO, ErrorTrailingGarbage) {
  std::string E = parseErr("a = Input() : f32[4] huh\n");
  EXPECT_NE(E.find("trailing characters"), std::string::npos);
}

TEST(GraphIO, ErrorUnknownOutput) {
  std::string E = parseErr("a = Input() : f32[4]\noutput nope\n");
  EXPECT_NE(E.find("unknown node"), std::string::npos);
}

TEST(GraphIO, WarnsOnMissingOutputs) {
  term::Signature Sig;
  DiagnosticEngine Diags;
  auto G = parseGraphText("a = Input() : f32[4]\n", Sig, Diags);
  ASSERT_TRUE(G != nullptr);
  bool Warned = false;
  for (const Diagnostic &D : Diags.diagnostics())
    Warned |= D.Sev == Severity::Warning;
  EXPECT_TRUE(Warned);
}

TEST(GraphIO, CommentsAndBlankLinesIgnored) {
  term::Signature Sig;
  auto G = parseOk("\n# header\n\na = Input() : f32[4]\noutput a\n", Sig);
  ASSERT_TRUE(G != nullptr);
  EXPECT_EQ(G->numLiveNodes(), 1u);
}
