//===- tests/test_models.cpp - Model zoo generators ----------------------------===//

#include "graph/TermView.h"
#include "models/Zoo.h"

#include <gtest/gtest.h>

using namespace pypm;
using namespace pypm::graph;
using namespace pypm::models;

TEST(Transformers, LayerOpCountsScaleWithDepth) {
  term::Signature Sig;
  TransformerConfig C;
  C.Name = "t";
  C.Layers = 3;
  C.Hidden = 64;
  auto G = buildTransformer(Sig, C);
  // 6 MatMuls per layer (Q, K, V, scores, attn·V, out) + 2 FFN.
  EXPECT_EQ(G->countOps("MatMul"), 3u * 8u);
  EXPECT_EQ(G->countOps("Softmax"), 3u);
  EXPECT_EQ(G->countOps("Trans"), 3u);
  EXPECT_EQ(G->countOps("LayerNorm"), 6u);
}

TEST(Transformers, GraphVerifiesAndIsFullyTyped) {
  term::Signature Sig;
  TransformerConfig C;
  C.Name = "t";
  C.Layers = 2;
  C.Hidden = 128;
  auto G = buildTransformer(Sig, C);
  DiagnosticEngine Diags;
  EXPECT_TRUE(G->verify(Diags)) << Diags.renderAll();
  for (NodeId N : G->topoOrder()) {
    if (Sig.name(G->op(N)).str() == "Const")
      continue; // scalar constants are legitimately rank-0
    EXPECT_GT(G->type(N).rank(), 0u) << "untyped node " << N;
  }
  // Output keeps the input embedding shape.
  EXPECT_EQ(G->type(G->outputs()[0]).Dims,
            (std::vector<int64_t>{C.Batch, C.SeqLen, C.Hidden}));
}

TEST(Transformers, HalfStyleChangesGeluSpelling) {
  term::Signature Sig;
  TransformerConfig C;
  C.Name = "t";
  C.Layers = 1;
  C.Hidden = 64;
  C.Half = TransformerConfig::HalfStyle::DivTwo;
  auto GDiv = buildTransformer(Sig, C);
  C.Half = TransformerConfig::HalfStyle::MulHalf;
  auto GMul = buildTransformer(Sig, C);
  // DivTwo: Div(x,2) and Div(x,√2) → 2 Divs; MulHalf: one Div, extra Mul.
  EXPECT_EQ(GDiv->countOps("Div"), 3u);  // + scores scaling Div
  EXPECT_EQ(GMul->countOps("Div"), 2u);
  EXPECT_GT(GMul->countOps("Mul"), GDiv->countOps("Mul"));
}

TEST(Transformers, ScaleStyleChangesScoreScaling) {
  term::Signature Sig;
  TransformerConfig C;
  C.Name = "t";
  C.Layers = 1;
  C.Hidden = 64;
  C.Activation = TransformerConfig::Act::Relu;
  C.Scale = TransformerConfig::ScaleStyle::DivSqrtD;
  auto GDiv = buildTransformer(Sig, C);
  C.Scale = TransformerConfig::ScaleStyle::MulInvSqrtD;
  auto GMul = buildTransformer(Sig, C);
  EXPECT_EQ(GDiv->countOps("Div"), 1u);
  EXPECT_EQ(GMul->countOps("Div"), 0u);
  EXPECT_EQ(GMul->countOps("Mul"), 1u);
}

TEST(Transformers, ReluModelsHaveNoErf) {
  term::Signature Sig;
  TransformerConfig C;
  C.Name = "t";
  C.Layers = 2;
  C.Hidden = 64;
  C.Activation = TransformerConfig::Act::Relu;
  auto G = buildTransformer(Sig, C);
  EXPECT_EQ(G->countOps("Erf"), 0u);
  EXPECT_EQ(G->countOps("Relu"), 2u);
}

TEST(Transformers, BiaslessVariantDropsBiasAdds) {
  term::Signature Sig;
  TransformerConfig C;
  C.Name = "t";
  C.Layers = 2;
  C.Hidden = 64;
  C.FfnBias = false;
  auto G = buildTransformer(Sig, C);
  EXPECT_EQ(G->countOps("BiasAdd"), 0u);
}

TEST(Vision, VggStackVerifiesAndCounts) {
  term::Signature Sig;
  VisionConfig C;
  C.Name = "v";
  C.StageDepths = {1, 1};
  C.ImageSize = 32;
  C.Batch = 2;
  C.ClassifierHidden = 256;
  auto G = buildVisionModel(Sig, C);
  DiagnosticEngine Diags;
  EXPECT_TRUE(G->verify(Diags)) << Diags.renderAll();
  // Stem + 2 stage convs + 1 widening conv.
  EXPECT_EQ(G->countOps("Conv2D"), 4u);
  EXPECT_EQ(G->countOps("MaxPool"), 2u);
  EXPECT_EQ(G->countOps("Flatten"), 1u);
  EXPECT_EQ(G->countOps("MatMul"), 2u); // classifier MLP
  // Classifier output shape.
  EXPECT_EQ(G->type(G->outputs()[0]).Dims,
            (std::vector<int64_t>{2, C.Classes}));
}

TEST(Vision, ResNetHasResidualAddsAndBatchNorm) {
  term::Signature Sig;
  VisionConfig C;
  C.Name = "r";
  C.Kind = VisionConfig::Family::ResNet;
  C.StageDepths = {1, 1};
  C.ImageSize = 32;
  C.Batch = 2;
  C.BatchNormAfterConv = true;
  auto G = buildVisionModel(Sig, C);
  EXPECT_GT(G->countOps("Add"), 0u);
  EXPECT_GT(G->countOps("BatchNorm"), 0u);
  DiagnosticEngine Diags;
  EXPECT_TRUE(G->verify(Diags)) << Diags.renderAll();
}

TEST(Vision, NoAttentionInVisionModels) {
  term::Signature Sig;
  VisionConfig C;
  C.Name = "v";
  C.StageDepths = {1};
  C.ImageSize = 32;
  auto G = buildVisionModel(Sig, C);
  EXPECT_EQ(G->countOps("Softmax"), 0u);
  EXPECT_EQ(G->countOps("Trans"), 0u);
}

TEST(Transformers, VitHybridBuildsAndVerifies) {
  term::Signature Sig;
  VitConfig C;
  C.Name = "vit";
  C.ImageSize = 64;
  C.PatchSize = 16;
  C.Batch = 2;
  C.Encoder.Layers = 2;
  C.Encoder.Hidden = 96;
  C.Encoder.FfnHidden = 384;
  auto G = buildVit(Sig, C);
  DiagnosticEngine Diags;
  ASSERT_TRUE(G->verify(Diags)) << Diags.renderAll();
  EXPECT_EQ(G->countOps("Conv2D"), 1u);  // patch embedding
  EXPECT_EQ(G->countOps("Softmax"), 2u); // one attention per layer
  // Sequence length derives from the patch grid: (64/16)² = 16.
  EXPECT_EQ(G->type(G->outputs()[0]).Dims,
            (std::vector<int64_t>{2, 16, 96}));
}

TEST(Zoo, HfSuiteHasDocumentedSizeAndUniqueNames) {
  auto Suite = hfSuite();
  EXPECT_GE(Suite.size(), 20u);
  std::set<std::string> Names;
  for (const ModelEntry &E : Suite)
    EXPECT_TRUE(Names.insert(E.Name).second) << "duplicate " << E.Name;
}

TEST(Zoo, TvSuiteHasDocumentedSizeAndUniqueNames) {
  auto Suite = tvSuite();
  EXPECT_GE(Suite.size(), 18u);
  std::set<std::string> Names;
  for (const ModelEntry &E : Suite)
    EXPECT_TRUE(Names.insert(E.Name).second) << "duplicate " << E.Name;
}

TEST(Zoo, BuildersAreDeterministic) {
  auto Suite = hfSuite();
  term::Signature SigA, SigB;
  auto GA = Suite[0].Build(SigA);
  auto GB = Suite[0].Build(SigB);
  ASSERT_EQ(GA->numNodes(), GB->numNodes());
  for (NodeId N = 0; N != GA->numNodes(); ++N) {
    EXPECT_EQ(SigA.name(GA->op(N)), SigB.name(GB->op(N)));
    EXPECT_EQ(GA->type(N).Dims, GB->type(N).Dims);
  }
}

TEST(Zoo, EverySuiteModelBuildsAndVerifies) {
  // A smoke pass over both complete suites (the benchmark prerequisite).
  for (const auto &Suite : {hfSuite(), tvSuite()}) {
    for (const ModelEntry &E : Suite) {
      term::Signature Sig;
      auto G = E.Build(Sig);
      DiagnosticEngine Diags;
      ASSERT_TRUE(G->verify(Diags)) << E.Name << ": " << Diags.renderAll();
      ASSERT_GT(G->numLiveNodes(), 10u) << E.Name;
    }
  }
}

TEST(Zoo, DeclareModelOpsIsIdempotent) {
  term::Signature Sig;
  declareModelOps(Sig);
  size_t Count = Sig.size();
  declareModelOps(Sig);
  EXPECT_EQ(Sig.size(), Count);
}
