//===- tests/TestHelpers.h - Shared test fixtures ---------------*- C++ -*-===//
///
/// \file
/// Conveniences shared across the test suite: a fixture owning a Signature
/// + TermArena + PatternArena, term parsing shorthands, and witness
/// helpers.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_TESTS_TESTHELPERS_H
#define PYPM_TESTS_TESTHELPERS_H

#include "match/Declarative.h"
#include "match/Machine.h"
#include "pattern/Pattern.h"
#include "term/TermParser.h"

#include <gtest/gtest.h>

namespace pypm::testing {

/// A fixture with one signature/arena pair, term parsing, and a small
/// pattern-construction toolkit.
class CoreFixture : public ::testing::Test {
protected:
  CoreFixture() : Arena(Sig) {}

  term::TermRef t(std::string_view Text) {
    return term::parseTermOrDie(Text, Sig, Arena);
  }

  term::OpId op(std::string_view Name, unsigned Arity) {
    return Sig.getOrAddOp(Name, Arity);
  }

  const pattern::Pattern *v(std::string_view Name) { return PA.var(Name); }

  const pattern::Pattern *app(std::string_view Name,
                              std::vector<const pattern::Pattern *> Children) {
    term::OpId Op = op(Name, static_cast<unsigned>(Children.size()));
    return PA.app(Op, std::move(Children));
  }

  match::MatchResult matchP(const pattern::Pattern *P, term::TermRef T) {
    return match::matchPattern(P, T, Arena);
  }

  /// θ(x) as a term, or nullptr.
  term::TermRef bound(const match::Witness &W, std::string_view Var) {
    return W.Theta.lookup(Symbol::intern(Var)).value_or(nullptr);
  }

  term::Signature Sig;
  term::TermArena Arena;
  pattern::PatternArena PA;
};

} // namespace pypm::testing

#endif // PYPM_TESTS_TESTHELPERS_H
