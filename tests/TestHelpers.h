//===- tests/TestHelpers.h - Shared test fixtures ---------------*- C++ -*-===//
///
/// \file
/// Conveniences shared across the test suite: a fixture owning a Signature
/// + TermArena + PatternArena, term parsing shorthands, witness helpers,
/// and the zoo-differential scaffolding (runModel + the two engine-run
/// equality bars) shared by the MatchPlan / PlanProfile / incremental
/// suites.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_TESTS_TESTHELPERS_H
#define PYPM_TESTS_TESTHELPERS_H

#include "graph/GraphIO.h"
#include "graph/ShapeInference.h"
#include "match/Declarative.h"
#include "match/Machine.h"
#include "models/Zoo.h"
#include "opt/StdPatterns.h"
#include "pattern/Pattern.h"
#include "rewrite/RewriteEngine.h"
#include "term/TermParser.h"

#include <gtest/gtest.h>

namespace pypm::testing {

/// A fixture with one signature/arena pair, term parsing, and a small
/// pattern-construction toolkit.
class CoreFixture : public ::testing::Test {
protected:
  CoreFixture() : Arena(Sig) {}

  term::TermRef t(std::string_view Text) {
    return term::parseTermOrDie(Text, Sig, Arena);
  }

  term::OpId op(std::string_view Name, unsigned Arity) {
    return Sig.getOrAddOp(Name, Arity);
  }

  const pattern::Pattern *v(std::string_view Name) { return PA.var(Name); }

  const pattern::Pattern *app(std::string_view Name,
                              std::vector<const pattern::Pattern *> Children) {
    term::OpId Op = op(Name, static_cast<unsigned>(Children.size()));
    return PA.app(Op, std::move(Children));
  }

  match::MatchResult matchP(const pattern::Pattern *P, term::TermRef T) {
    return match::matchPattern(P, T, Arena);
  }

  /// θ(x) as a term, or nullptr.
  term::TermRef bound(const match::Witness &W, std::string_view Var) {
    return W.Theta.lookup(Symbol::intern(Var)).value_or(nullptr);
  }

  term::Signature Sig;
  term::TermArena Arena;
  pattern::PatternArena PA;
};

//===----------------------------------------------------------------------===//
// Zoo-differential scaffolding (engine-level equivalence suites)
//===----------------------------------------------------------------------===//

/// One engine run's observables: the committed graph plus the stats.
struct RunResult {
  std::string GraphText;
  rewrite::RewriteStats Stats;
};

/// Builds \p Model fresh and rewrites it to fixpoint under \p Opts with
/// the standard pipeline (\p WithUnaryChain additionally loads the
/// μ-recursive unary-chain library, the stress rule for deep unfolds).
inline RunResult runModel(const models::ModelEntry &Model,
                          rewrite::RewriteOptions Opts,
                          bool WithUnaryChain = false) {
  term::Signature Sig;
  auto G = Model.Build(Sig);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
  if (WithUnaryChain) {
    Pipe.Libs.push_back(opt::compileUnaryChain(Sig));
    Pipe.Rules.addLibrary(*Pipe.Libs.back());
  }
  RunResult R;
  R.Stats = rewrite::rewriteToFixpoint(*G, Pipe.Rules,
                                       graph::ShapeInference(), Opts);
  R.GraphText = graph::writeGraphText(*G);
  return R;
}

/// What MUST agree across matcher kinds: the committed rewrite sequence
/// and everything derived from it. Attempt-shaped counters (Attempts,
/// RootSkips, MachineSteps, Backtracks, FuelExhausted) legitimately differ
/// — the tree prefilter skips attempts the root-op index would have
/// started (see DESIGN.md §"MatchPlan").
inline void expectSameRewrites(const RunResult &A, const RunResult &B,
                               const std::string &Label) {
  SCOPED_TRACE(Label);
  EXPECT_EQ(A.GraphText, B.GraphText);
  EXPECT_EQ(A.Stats.Passes, B.Stats.Passes);
  EXPECT_EQ(A.Stats.NodesVisited, B.Stats.NodesVisited);
  EXPECT_EQ(A.Stats.TotalMatches, B.Stats.TotalMatches);
  EXPECT_EQ(A.Stats.TotalFired, B.Stats.TotalFired);
  EXPECT_EQ(A.Stats.NodesSwept, B.Stats.NodesSwept);
  EXPECT_EQ(A.Stats.Status, B.Stats.Status);
  ASSERT_EQ(A.Stats.PerPattern.size(), B.Stats.PerPattern.size());
  for (const auto &[Name, SP] : A.Stats.PerPattern) {
    SCOPED_TRACE(Name);
    auto It = B.Stats.PerPattern.find(Name);
    ASSERT_NE(It, B.Stats.PerPattern.end());
    EXPECT_EQ(SP.Matches, It->second.Matches);
    EXPECT_EQ(SP.RulesFired, It->second.RulesFired);
    EXPECT_EQ(SP.GuardRejects, It->second.GuardRejects);
  }
}

/// What must agree between two runs of the *same* matcher kind (across
/// thread counts, profiled orderings, or the batch/incremental discovery
/// modes): every observable except wall-clock and the mode-descriptive
/// memo/batch counters.
inline void expectFullyEqual(const RunResult &A, const RunResult &B,
                             const std::string &Label) {
  SCOPED_TRACE(Label);
  EXPECT_EQ(A.GraphText, B.GraphText);
  EXPECT_EQ(A.Stats.Passes, B.Stats.Passes);
  EXPECT_EQ(A.Stats.NodesVisited, B.Stats.NodesVisited);
  EXPECT_EQ(A.Stats.TotalMatches, B.Stats.TotalMatches);
  EXPECT_EQ(A.Stats.TotalFired, B.Stats.TotalFired);
  EXPECT_EQ(A.Stats.NodesSwept, B.Stats.NodesSwept);
  EXPECT_EQ(A.Stats.Status, B.Stats.Status);
  ASSERT_EQ(A.Stats.PerPattern.size(), B.Stats.PerPattern.size());
  for (const auto &[Name, SP] : A.Stats.PerPattern) {
    SCOPED_TRACE(Name);
    auto It = B.Stats.PerPattern.find(Name);
    ASSERT_NE(It, B.Stats.PerPattern.end());
    rewrite::PatternStats X = SP, Y = It->second;
    X.Seconds = Y.Seconds = 0.0;
    EXPECT_EQ(X, Y);
  }
}

/// Plan-matcher options at \p Threads worker threads.
inline rewrite::RewriteOptions planOpts(unsigned Threads) {
  rewrite::RewriteOptions O;
  O.Matcher = rewrite::MatcherKind::Plan;
  O.NumThreads = Threads;
  return O;
}

} // namespace pypm::testing

#endif // PYPM_TESTS_TESTHELPERS_H
