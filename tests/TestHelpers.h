//===- tests/TestHelpers.h - Shared test fixtures ---------------*- C++ -*-===//
///
/// \file
/// Conveniences shared across the test suite: a fixture owning a Signature
/// + TermArena + PatternArena, term parsing shorthands, witness helpers,
/// and the zoo-differential scaffolding (runModel + the two engine-run
/// equality bars) shared by the MatchPlan / PlanProfile / incremental
/// suites.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_TESTS_TESTHELPERS_H
#define PYPM_TESTS_TESTHELPERS_H

#include "graph/GraphIO.h"
#include "graph/ShapeInference.h"
#include "match/Declarative.h"
#include "match/Machine.h"
#include "models/Zoo.h"
#include "opt/StdPatterns.h"
#include "pattern/Pattern.h"
#include "rewrite/RewriteEngine.h"
#include "search/Search.h"
#include "sim/CostModel.h"
#include "term/TermParser.h"

#include <gtest/gtest.h>

#include <limits>
#include <set>

namespace pypm::testing {

/// A fixture with one signature/arena pair, term parsing, and a small
/// pattern-construction toolkit.
class CoreFixture : public ::testing::Test {
protected:
  CoreFixture() : Arena(Sig) {}

  term::TermRef t(std::string_view Text) {
    return term::parseTermOrDie(Text, Sig, Arena);
  }

  term::OpId op(std::string_view Name, unsigned Arity) {
    return Sig.getOrAddOp(Name, Arity);
  }

  const pattern::Pattern *v(std::string_view Name) { return PA.var(Name); }

  const pattern::Pattern *app(std::string_view Name,
                              std::vector<const pattern::Pattern *> Children) {
    term::OpId Op = op(Name, static_cast<unsigned>(Children.size()));
    return PA.app(Op, std::move(Children));
  }

  match::MatchResult matchP(const pattern::Pattern *P, term::TermRef T) {
    return match::matchPattern(P, T, Arena);
  }

  /// θ(x) as a term, or nullptr.
  term::TermRef bound(const match::Witness &W, std::string_view Var) {
    return W.Theta.lookup(Symbol::intern(Var)).value_or(nullptr);
  }

  term::Signature Sig;
  term::TermArena Arena;
  pattern::PatternArena PA;
};

//===----------------------------------------------------------------------===//
// Zoo-differential scaffolding (engine-level equivalence suites)
//===----------------------------------------------------------------------===//

/// One engine run's observables: the committed graph plus the stats.
struct RunResult {
  std::string GraphText;
  rewrite::RewriteStats Stats;
};

/// Builds \p Model fresh and rewrites it to fixpoint under \p Opts with
/// the standard pipeline (\p WithUnaryChain additionally loads the
/// μ-recursive unary-chain library, the stress rule for deep unfolds).
inline RunResult runModel(const models::ModelEntry &Model,
                          rewrite::RewriteOptions Opts,
                          bool WithUnaryChain = false) {
  term::Signature Sig;
  auto G = Model.Build(Sig);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
  if (WithUnaryChain) {
    Pipe.Libs.push_back(opt::compileUnaryChain(Sig));
    Pipe.Rules.addLibrary(*Pipe.Libs.back());
  }
  RunResult R;
  R.Stats = rewrite::rewriteToFixpoint(*G, Pipe.Rules,
                                       graph::ShapeInference(), Opts);
  R.GraphText = graph::writeGraphText(*G);
  return R;
}

/// What MUST agree across matcher kinds: the committed rewrite sequence
/// and everything derived from it. Attempt-shaped counters (Attempts,
/// RootSkips, MachineSteps, Backtracks, FuelExhausted) legitimately differ
/// — the tree prefilter skips attempts the root-op index would have
/// started (see DESIGN.md §"MatchPlan").
inline void expectSameRewrites(const RunResult &A, const RunResult &B,
                               const std::string &Label) {
  SCOPED_TRACE(Label);
  EXPECT_EQ(A.GraphText, B.GraphText);
  EXPECT_EQ(A.Stats.Passes, B.Stats.Passes);
  EXPECT_EQ(A.Stats.NodesVisited, B.Stats.NodesVisited);
  EXPECT_EQ(A.Stats.TotalMatches, B.Stats.TotalMatches);
  EXPECT_EQ(A.Stats.TotalFired, B.Stats.TotalFired);
  EXPECT_EQ(A.Stats.NodesSwept, B.Stats.NodesSwept);
  EXPECT_EQ(A.Stats.Status, B.Stats.Status);
  ASSERT_EQ(A.Stats.PerPattern.size(), B.Stats.PerPattern.size());
  for (const auto &[Name, SP] : A.Stats.PerPattern) {
    SCOPED_TRACE(Name);
    auto It = B.Stats.PerPattern.find(Name);
    ASSERT_NE(It, B.Stats.PerPattern.end());
    EXPECT_EQ(SP.Matches, It->second.Matches);
    EXPECT_EQ(SP.RulesFired, It->second.RulesFired);
    EXPECT_EQ(SP.GuardRejects, It->second.GuardRejects);
  }
}

/// What must agree between two runs of the *same* matcher kind (across
/// thread counts, profiled orderings, or the batch/incremental discovery
/// modes): every observable except wall-clock and the mode-descriptive
/// memo/batch counters.
inline void expectFullyEqual(const RunResult &A, const RunResult &B,
                             const std::string &Label) {
  SCOPED_TRACE(Label);
  EXPECT_EQ(A.GraphText, B.GraphText);
  EXPECT_EQ(A.Stats.Passes, B.Stats.Passes);
  EXPECT_EQ(A.Stats.NodesVisited, B.Stats.NodesVisited);
  EXPECT_EQ(A.Stats.TotalMatches, B.Stats.TotalMatches);
  EXPECT_EQ(A.Stats.TotalFired, B.Stats.TotalFired);
  EXPECT_EQ(A.Stats.NodesSwept, B.Stats.NodesSwept);
  EXPECT_EQ(A.Stats.Status, B.Stats.Status);
  ASSERT_EQ(A.Stats.PerPattern.size(), B.Stats.PerPattern.size());
  for (const auto &[Name, SP] : A.Stats.PerPattern) {
    SCOPED_TRACE(Name);
    auto It = B.Stats.PerPattern.find(Name);
    ASSERT_NE(It, B.Stats.PerPattern.end());
    rewrite::PatternStats X = SP, Y = It->second;
    X.Seconds = Y.Seconds = 0.0;
    EXPECT_EQ(X, Y);
  }
}

/// Plan-matcher options at \p Threads worker threads.
inline rewrite::RewriteOptions planOpts(unsigned Threads) {
  rewrite::RewriteOptions O;
  O.Matcher = rewrite::MatcherKind::Plan;
  O.NumThreads = Threads;
  return O;
}

//===----------------------------------------------------------------------===//
// Exhaustive small-graph search oracle
//===----------------------------------------------------------------------===//

/// The true optimum the beam search approximates: exhaustively explores
/// EVERY commit sequence reachable from \p G — using the search's own move
/// generator (search::enumerateCandidates) and transition function
/// (search::applyCandidate), so oracle and subject agree exactly on what a
/// "move" is — and returns the cheapest modeled cost over all reachable
/// fixpoints. States are deduplicated by their printed graph (different
/// commit orders reaching the same graph are explored once).
///
/// Exponential by design: only for seeded graphs of a few nodes. \p
/// MaxStates / \p MaxDepth are safety valves for accidental blowups or
/// non-terminating rule sets (a ping-pong pair never reaches a fixpoint);
/// a depth-capped branch prices its current state as if terminal, keeping
/// the result a valid upper bound on the optimum either way.
inline double exhaustiveOptimum(const graph::Graph &G,
                                const rewrite::RuleSet &Rules,
                                const graph::ShapeInference &SI,
                                const sim::CostModel &CM,
                                unsigned MaxWitnesses = 4,
                                size_t MaxStates = 20000,
                                unsigned MaxDepth = 32) {
  search::EnumOptions EO;
  EO.MaxWitnesses = MaxWitnesses;
  struct State {
    std::unique_ptr<graph::Graph> G;
    unsigned Depth = 0;
  };
  std::vector<State> Stack;
  Stack.push_back({std::make_unique<graph::Graph>(G), 0});
  std::set<std::string> Seen{graph::writeGraphText(G)};
  double Best = std::numeric_limits<double>::infinity();
  size_t Explored = 0;
  while (!Stack.empty() && Explored < MaxStates) {
    State S = std::move(Stack.back());
    Stack.pop_back();
    ++Explored;
    std::vector<search::Candidate> Cands =
        search::enumerateCandidates(*S.G, Rules, EO);
    bool Expanded = false;
    if (S.Depth < MaxDepth)
      for (const search::Candidate &C : Cands) {
        auto GC = std::make_unique<graph::Graph>(*S.G);
        search::ApplyResult R = search::applyCandidate(*GC, C, Rules, SI, CM);
        if (!R.Applied)
          continue;
        std::string Key = graph::writeGraphText(*GC);
        if (!Seen.insert(std::move(Key)).second)
          continue;
        Stack.push_back({std::move(GC), S.Depth + 1});
        Expanded = true;
      }
    if (!Expanded)
      Best = std::min(Best, CM.graphCost(*S.G).Seconds);
  }
  return Best;
}

} // namespace pypm::testing

#endif // PYPM_TESTS_TESTHELPERS_H
