//===- tests/test_shapeinfer.cpp - Shape/dtype inference -----------------------===//

#include "graph/ShapeInference.h"
#include "models/Transformers.h"

#include <gtest/gtest.h>

using namespace pypm;
using namespace pypm::graph;

namespace {

class ShapeTest : public ::testing::Test {
protected:
  ShapeTest() : G(Sig) { models::declareModelOps(Sig); }

  NodeId input(std::initializer_list<int64_t> Dims,
               term::DType D = term::DType::F32) {
    TensorType T;
    T.Dtype = D;
    T.Dims.assign(Dims.begin(), Dims.end());
    return G.addLeaf("Input", std::move(T));
  }

  NodeId node(std::string_view Op, std::initializer_list<NodeId> In,
              std::vector<term::Attr> Attrs = {}) {
    return G.addNode(Sig.lookup(Op), In, std::move(Attrs));
  }

  /// Infers everything and returns the type of \p N.
  TensorType typeOf(NodeId N) {
    SI.inferAll(G);
    return G.type(N);
  }

  term::Signature Sig;
  Graph G;
  ShapeInference SI;
};

} // namespace

TEST_F(ShapeTest, MatMulRank2) {
  NodeId M = node("MatMul", {input({64, 128}), input({128, 32})});
  EXPECT_EQ(typeOf(M).Dims, (std::vector<int64_t>{64, 32}));
}

TEST_F(ShapeTest, MatMulBatched3D) {
  NodeId M = node("MatMul", {input({8, 64, 128}), input({8, 128, 32})});
  EXPECT_EQ(typeOf(M).Dims, (std::vector<int64_t>{8, 64, 32}));
}

TEST_F(ShapeTest, MatMulBatchBroadcastWithRank2Rhs) {
  NodeId M = node("MatMul", {input({8, 64, 128}), input({128, 32})});
  EXPECT_EQ(typeOf(M).Dims, (std::vector<int64_t>{8, 64, 32}));
}

TEST_F(ShapeTest, MatMulContractionMismatchFails) {
  NodeId M = node("MatMul", {input({64, 100}), input({128, 32})});
  DiagnosticEngine Diags;
  ShapeInference::Stats S = SI.inferAll(G, &Diags);
  EXPECT_EQ(S.Errors, 1u);
  EXPECT_TRUE(Diags.hasErrors());
  (void)M;
}

TEST_F(ShapeTest, TransSwapsTrailingDims) {
  NodeId T = node("Trans", {input({8, 64, 128})});
  EXPECT_EQ(typeOf(T).Dims, (std::vector<int64_t>{8, 128, 64}));
}

TEST_F(ShapeTest, CublasXyTContractsAgainstTransposedRhs) {
  NodeId M = node("cublasMM_xyT_f32", {input({64, 128}), input({32, 128})});
  EXPECT_EQ(typeOf(M).Dims, (std::vector<int64_t>{64, 32}));
}

TEST_F(ShapeTest, ElementwiseSameShape) {
  NodeId A = node("Add", {input({8, 128}), input({8, 128})});
  EXPECT_EQ(typeOf(A).Dims, (std::vector<int64_t>{8, 128}));
}

TEST_F(ShapeTest, ElementwiseScalarBroadcast) {
  NodeId C = G.addConst(2.0);
  NodeId D = node("Div", {input({8, 128}), C});
  TensorType T = typeOf(D);
  EXPECT_EQ(T.Dims, (std::vector<int64_t>{8, 128}));
  EXPECT_EQ(T.Dtype, term::DType::F32);
}

TEST_F(ShapeTest, ElementwiseRightAlignedBroadcast) {
  NodeId A = node("Mul", {input({8, 128, 768}), input({768})});
  EXPECT_EQ(typeOf(A).Dims, (std::vector<int64_t>{8, 128, 768}));
}

TEST_F(ShapeTest, ElementwiseIncompatibleFails) {
  node("Add", {input({8, 128}), input({8, 64})});
  ShapeInference::Stats S = SI.inferAll(G);
  EXPECT_EQ(S.Errors, 1u);
}

TEST_F(ShapeTest, ScalarConstDoesNotDemoteDtype) {
  NodeId C = G.addConst(1.0, term::DType::F32);
  NodeId X = input({4, 4}, term::DType::F16);
  NodeId A = node("Add", {C, X});
  EXPECT_EQ(typeOf(A).Dtype, term::DType::F16);
}

TEST_F(ShapeTest, SoftmaxAndLayerNormPreserveShape) {
  NodeId S = node("Softmax", {input({8, 128, 128})});
  NodeId L = node("LayerNorm", {input({8, 128, 768})});
  EXPECT_EQ(typeOf(S).Dims, (std::vector<int64_t>{8, 128, 128}));
  EXPECT_EQ(G.type(L).Dims, (std::vector<int64_t>{8, 128, 768}));
}

TEST_F(ShapeTest, Conv2DWithStrideAndPad) {
  // x [2,3,32,32], w [16,3,3,3], stride 2, pad 1 → [2,16,16,16]
  NodeId C = node("Conv2D", {input({2, 3, 32, 32}), input({16, 3, 3, 3})},
                  {{Symbol::intern("stride"), 2}, {Symbol::intern("pad"), 1}});
  EXPECT_EQ(typeOf(C).Dims, (std::vector<int64_t>{2, 16, 16, 16}));
}

TEST_F(ShapeTest, ConvEpilogMatchesConvShape) {
  // The fused kernel must produce exactly the conv's output shape (a
  // defaulted "same as input" rule would silently corrupt channel counts
  // downstream).
  std::vector<term::Attr> Attrs{{Symbol::intern("stride"), 2},
                                {Symbol::intern("pad"), 1}};
  NodeId C = node("Conv2D", {input({2, 3, 32, 32}), input({16, 3, 3, 3})},
                  Attrs);
  NodeId E = node("ConvEpilog",
                  {input({2, 3, 32, 32}), input({16, 3, 3, 3}),
                   input({16, 1, 1})},
                  Attrs);
  SI.inferAll(G);
  EXPECT_EQ(G.type(E).Dims, G.type(C).Dims);
  EXPECT_EQ(G.type(E).Dims, (std::vector<int64_t>{2, 16, 16, 16}));
}

TEST_F(ShapeTest, Conv2DChannelMismatchFails) {
  node("Conv2D", {input({2, 3, 32, 32}), input({16, 4, 3, 3})});
  EXPECT_EQ(SI.inferAll(G).Errors, 1u);
}

TEST_F(ShapeTest, MaxPoolHalvesSpatial) {
  NodeId P = node("MaxPool", {input({2, 16, 32, 32})},
                  {{Symbol::intern("k"), 2}, {Symbol::intern("stride"), 2}});
  EXPECT_EQ(typeOf(P).Dims, (std::vector<int64_t>{2, 16, 16, 16}));
}

TEST_F(ShapeTest, GlobalAvgPoolDropsSpatial) {
  NodeId P = node("GlobalAvgPool", {input({2, 16, 7, 7})});
  EXPECT_EQ(typeOf(P).Dims, (std::vector<int64_t>{2, 16}));
}

TEST_F(ShapeTest, ReshapeUsesTargetAttrs) {
  NodeId R = node("Reshape", {input({2, 96, 4, 4})},
                  {{Symbol::intern("d0"), 2},
                   {Symbol::intern("d1"), 16},
                   {Symbol::intern("d2"), 96}});
  EXPECT_EQ(typeOf(R).Dims, (std::vector<int64_t>{2, 16, 96}));
}

TEST_F(ShapeTest, ReshapeRejectsElementCountMismatch) {
  node("Reshape", {input({2, 96, 4, 4})},
       {{Symbol::intern("d0"), 2}, {Symbol::intern("d1"), 17},
        {Symbol::intern("d2"), 96}});
  EXPECT_EQ(SI.inferAll(G).Errors, 1u);
}

TEST_F(ShapeTest, FlattenKeepsBatch) {
  NodeId F = node("Flatten", {input({2, 16, 7, 7})});
  EXPECT_EQ(typeOf(F).Dims, (std::vector<int64_t>{2, 16 * 49}));
}

TEST_F(ShapeTest, FmhaTakesQShapeWithVHeadDim) {
  NodeId F = node("FMHA", {input({8, 128, 64}), input({8, 128, 64}),
                           input({8, 128, 32})});
  EXPECT_EQ(typeOf(F).Dims, (std::vector<int64_t>{8, 128, 32}));
}

TEST_F(ShapeTest, GemmEpilogLikeMatMul) {
  NodeId E = node("GemmEpilog", {input({64, 128}), input({128, 32})});
  NodeId B = node("GemmBiasEpilog",
                  {input({64, 128}), input({128, 32}), input({32})});
  EXPECT_EQ(typeOf(E).Dims, (std::vector<int64_t>{64, 32}));
  EXPECT_EQ(G.type(B).Dims, (std::vector<int64_t>{64, 32}));
}

TEST_F(ShapeTest, UnknownOpDefaultsToFirstInputType) {
  Sig.addOp("Mystery", 1);
  NodeId M = node("Mystery", {input({5, 5})});
  ShapeInference::Stats S = SI.inferAll(G);
  EXPECT_EQ(S.DefaultedNodes, 1u);
  EXPECT_EQ(G.type(M).Dims, (std::vector<int64_t>{5, 5}));
}

TEST_F(ShapeTest, RegisteredRuleOverridesDefault) {
  Sig.addOp("Mystery", 1);
  SI.registerRule("Mystery", [](const Graph &, NodeId,
                                std::span<const TensorType> In)
                      -> std::optional<TensorType> {
    TensorType Out = In[0];
    Out.Dims.push_back(1);
    return Out;
  });
  NodeId M = node("Mystery", {input({5, 5})});
  EXPECT_EQ(typeOf(M).Dims, (std::vector<int64_t>{5, 5, 1}));
}

TEST_F(ShapeTest, InferNodeSingle) {
  NodeId M = node("MatMul", {input({4, 8}), input({8, 2})});
  EXPECT_TRUE(SI.inferNode(G, M));
  EXPECT_EQ(G.type(M).Dims, (std::vector<int64_t>{4, 2}));
}

TEST_F(ShapeTest, InferAllCountsInferredNodes) {
  NodeId A = input({4, 8});
  NodeId B = input({8, 2});
  NodeId M = node("MatMul", {A, B});
  node("Relu", {M});
  ShapeInference::Stats S = SI.inferAll(G);
  EXPECT_EQ(S.InferredNodes, 2u); // leaves keep preset types
  EXPECT_EQ(S.Errors, 0u);
}
