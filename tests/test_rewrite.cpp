//===- tests/test_rewrite.cpp - Greedy fixpoint rewrite engine -----------------===//

#include "dsl/Sema.h"
#include "graph/TermView.h"
#include "models/Transformers.h"
#include "rewrite/RewriteEngine.h"

#include <gtest/gtest.h>

using namespace pypm;
using namespace pypm::graph;
using namespace pypm::rewrite;

namespace {

class RewriteTest : public ::testing::Test {
protected:
  RewriteTest() : G(Sig) { models::declareModelOps(Sig); }

  NodeId input(std::initializer_list<int64_t> Dims,
               term::DType D = term::DType::F32) {
    TensorType T;
    T.Dtype = D;
    T.Dims.assign(Dims.begin(), Dims.end());
    return G.addLeaf("Input", std::move(T));
  }

  NodeId node(std::string_view Op, std::initializer_list<NodeId> In) {
    NodeId N = G.addNode(Sig.lookup(Op), In);
    SI.inferNode(G, N);
    return N;
  }

  std::unique_ptr<pattern::Library> lib(std::string_view Src) {
    return dsl::compileOrDie(Src, Sig);
  }

  term::Signature Sig;
  Graph G;
  ShapeInference SI;
};

constexpr const char *CublasSrc = R"(
  pattern MMxyT(x, y) {
    assert x.shape.rank == 2;
    assert y.shape.rank == 2;
    return MatMul(x, Trans(y));
  }
  rule cublasrule for MMxyT(x, y) {
    if x.eltType == f32 && y.eltType == f32 {
      return cublasMM_xyT_f32(x, y);
    } elif x.eltType == i8 && y.eltType == i8 {
      return cublasMM_xyT_i8(x, y);
    }
  }
)";

} // namespace

TEST_F(RewriteTest, FiresMatchingRuleAndRewrites) {
  auto Lib = lib(CublasSrc);
  NodeId A = input({64, 128});
  NodeId B = input({32, 128});
  NodeId M = node("MatMul", {A, node("Trans", {B})});
  G.addOutput(M);

  RuleSet RS;
  RS.addLibrary(*Lib);
  RewriteStats Stats = rewriteToFixpoint(G, RS, SI);
  EXPECT_EQ(Stats.TotalFired, 1u);
  EXPECT_EQ(G.countOps("cublasMM_xyT_f32"), 1u);
  EXPECT_EQ(G.countOps("MatMul"), 0u);
  EXPECT_EQ(G.countOps("Trans"), 0u); // dead transpose swept
  DiagnosticEngine Diags;
  EXPECT_TRUE(G.verify(Diags)) << Diags.renderAll();
  // Replacement is shape-inferred: x·yᵀ with x [64,128], y [32,128].
  EXPECT_EQ(G.type(G.outputs()[0]).Dims, (std::vector<int64_t>{64, 32}));
}

TEST_F(RewriteTest, RuleDispatchByGuardPicksI8Kernel) {
  auto Lib = lib(CublasSrc);
  NodeId A = input({64, 128}, term::DType::I8);
  NodeId B = input({32, 128}, term::DType::I8);
  NodeId M = node("MatMul", {A, node("Trans", {B})});
  G.addOutput(M);
  RuleSet RS;
  RS.addLibrary(*Lib);
  rewriteToFixpoint(G, RS, SI);
  EXPECT_EQ(G.countOps("cublasMM_xyT_i8"), 1u);
  EXPECT_EQ(G.countOps("cublasMM_xyT_f32"), 0u);
}

TEST_F(RewriteTest, MatchWithoutPassingGuardDoesNotFire) {
  auto Lib = lib(CublasSrc);
  // f16 inputs: pattern matches but neither rule guard passes.
  NodeId A = input({64, 128}, term::DType::F16);
  NodeId B = input({32, 128}, term::DType::F16);
  NodeId M = node("MatMul", {A, node("Trans", {B})});
  G.addOutput(M);
  RuleSet RS;
  RS.addLibrary(*Lib);
  RewriteStats Stats = rewriteToFixpoint(G, RS, SI);
  EXPECT_EQ(Stats.TotalMatches, 1u);
  EXPECT_EQ(Stats.TotalFired, 0u);
  EXPECT_EQ(Stats.PerPattern.at("MMxyT").GuardRejects, 1u);
  EXPECT_EQ(G.countOps("MatMul"), 1u); // untouched
}

TEST_F(RewriteTest, GreedyRunsToFixpointThroughCascades) {
  // Relu-chain collapse: IdemChain rewrites towers to one application;
  // repeated passes reach the single-Relu fixpoint.
  auto Lib = lib(R"(
    pattern UnaryChain(x, f) { return f(UnaryChain(x, f)); }
    pattern UnaryChain(x, f) { return f(x); }
    pattern IdemChain(x, f) {
      assert f.op_id == op("Relu");
      return f(UnaryChain(x, f));
    }
    rule collapse for IdemChain(x, f) { return f(x); }
  )");
  NodeId X = input({16});
  NodeId Cur = X;
  for (int I = 0; I != 6; ++I)
    Cur = node("Relu", {Cur});
  G.addOutput(Cur);
  RuleSet RS;
  RS.addLibrary(*Lib);
  RewriteStats Stats = rewriteToFixpoint(G, RS, SI);
  EXPECT_EQ(G.countOps("Relu"), 1u);
  EXPECT_GE(Stats.TotalFired, 1u);
  DiagnosticEngine Diags;
  EXPECT_TRUE(G.verify(Diags)) << Diags.renderAll();
}

TEST_F(RewriteTest, FirstRuleWins) {
  // Two rules for one pattern, both guards pass: definition order decides.
  auto Lib = lib(R"(
    pattern AnyRelu(x) { return Relu(x); }
    rule first for AnyRelu(x) { return Tanh(x); }
    rule second for AnyRelu(x) { return Sigmoid(x); }
  )");
  NodeId R = node("Relu", {input({4})});
  G.addOutput(R);
  RuleSet RS;
  RS.addLibrary(*Lib);
  rewriteToFixpoint(G, RS, SI);
  EXPECT_EQ(G.countOps("Tanh"), 1u);
  EXPECT_EQ(G.countOps("Sigmoid"), 0u);
}

TEST_F(RewriteTest, PatternsTriedInLibraryOrder) {
  // Both patterns match the same node; the first-listed wins at the node.
  auto Lib = lib(R"(
    pattern P1(x) { return Relu(x); }
    rule r1 for P1(x) { return Tanh(x); }
    pattern P2(x) { return Relu(x); }
    rule r2 for P2(x) { return Sigmoid(x); }
  )");
  NodeId R = node("Relu", {input({4})});
  G.addOutput(R);
  RuleSet RS;
  RS.addLibrary(*Lib);
  rewriteToFixpoint(G, RS, SI);
  EXPECT_EQ(G.countOps("Tanh"), 1u);
  EXPECT_EQ(G.countOps("Sigmoid"), 0u);
}

TEST_F(RewriteTest, SharedOperandsSurviveRewrite) {
  // The matched subgraph's operand is used elsewhere; it must survive.
  auto Lib = lib(R"(
    pattern AnyRelu(x) { return Relu(x); }
    rule r for AnyRelu(x) { return Tanh(x); }
  )");
  NodeId X = input({4});
  NodeId R = node("Relu", {X});
  NodeId Other = node("Sigmoid", {X});
  NodeId Sum = node("Add", {R, Other});
  G.addOutput(Sum);
  RuleSet RS;
  RS.addLibrary(*Lib);
  rewriteToFixpoint(G, RS, SI);
  EXPECT_EQ(G.countOps("Sigmoid"), 1u);
  EXPECT_EQ(G.countOps("Tanh"), 1u);
  EXPECT_FALSE(G.isDead(X));
  DiagnosticEngine Diags;
  EXPECT_TRUE(G.verify(Diags)) << Diags.renderAll();
}

TEST_F(RewriteTest, RootIndexAblationGivesSameResult) {
  // MMxyT has the concrete root operator MatMul, so the prefilter can
  // skip every non-MatMul node without starting the machine. (Patterns
  // rooted at a function variable, like IdemChain, have no usable root
  // filter — rootOps is "any" — which bench_ablation quantifies.)
  auto Lib = lib(CublasSrc);
  auto Build = [&](Graph &Gr) {
    NodeId A = Gr.addLeaf("Input", TensorType::make(term::DType::F32, {8, 8}));
    NodeId B = Gr.addLeaf("Input", TensorType::make(term::DType::F32, {8, 8}));
    NodeId T = Gr.addNode(Sig.lookup("Trans"), {B});
    NodeId M = Gr.addNode(Sig.lookup("MatMul"), {A, T});
    NodeId R = Gr.addNode(Sig.lookup("Relu"), {M});
    Gr.addOutput(R);
    ShapeInference().inferAll(Gr);
  };
  RuleSet RS;
  RS.addLibrary(*Lib);

  Graph G1(Sig), G2(Sig);
  Build(G1);
  Build(G2);
  RewriteOptions WithIndex, WithoutIndex;
  WithoutIndex.UseRootIndex = false;
  RewriteStats S1 = rewriteToFixpoint(G1, RS, SI, WithIndex);
  RewriteStats S2 = rewriteToFixpoint(G2, RS, SI, WithoutIndex);
  EXPECT_EQ(S1.TotalFired, S2.TotalFired);
  EXPECT_EQ(G1.countOps("cublasMM_xyT_f32"), 1u);
  EXPECT_EQ(G2.countOps("cublasMM_xyT_f32"), 1u);
  // The index skips non-MatMul-rooted nodes without starting the machine.
  EXPECT_LT(S1.PerPattern.at("MMxyT").Attempts,
            S2.PerPattern.at("MMxyT").Attempts);
  EXPECT_GT(S1.PerPattern.at("MMxyT").RootSkips, 0u);
}

TEST_F(RewriteTest, MemoAblationGivesSameResult) {
  auto Lib = lib(CublasSrc);
  auto Build = [&](Graph &Gr) {
    NodeId A = Gr.addLeaf("Input", TensorType::make(term::DType::F32, {8, 8}));
    NodeId B = Gr.addLeaf("Input", TensorType::make(term::DType::F32, {8, 8}));
    NodeId T = Gr.addNode(Sig.lookup("Trans"), {B});
    NodeId M = Gr.addNode(Sig.lookup("MatMul"), {A, T});
    Gr.addOutput(M);
    ShapeInference().inferAll(Gr);
  };
  RuleSet RS;
  RS.addLibrary(*Lib);
  Graph G1(Sig), G2(Sig);
  Build(G1);
  Build(G2);
  RewriteOptions NoMemo;
  NoMemo.MemoizeTermView = false;
  RewriteStats S1 = rewriteToFixpoint(G1, RS, SI);
  RewriteStats S2 = rewriteToFixpoint(G2, RS, SI, NoMemo);
  EXPECT_EQ(S1.TotalFired, S2.TotalFired);
  EXPECT_EQ(G1.countOps("cublasMM_xyT_f32"), 1u);
  EXPECT_EQ(G2.countOps("cublasMM_xyT_f32"), 1u);
}

TEST_F(RewriteTest, MatchAllCountsWithoutMutating) {
  auto Lib = lib(CublasSrc);
  NodeId A = input({64, 128});
  NodeId B = input({32, 128});
  NodeId M = node("MatMul", {A, node("Trans", {B})});
  G.addOutput(M);
  size_t NodesBefore = G.numLiveNodes();
  RuleSet RS;
  RS.addLibrary(*Lib, /*RulesOnly=*/false);
  RewriteStats Stats = matchAll(G, RS);
  EXPECT_EQ(Stats.TotalMatches, 1u);
  EXPECT_EQ(Stats.TotalFired, 0u);
  EXPECT_EQ(G.numLiveNodes(), NodesBefore);
  EXPECT_EQ(G.countOps("MatMul"), 1u);
}

TEST_F(RewriteTest, RewriteLimitStopsEngine) {
  // An A→B, B→A rule pair ping-pongs forever; MaxRewrites bounds it.
  auto Lib = lib(R"(
    pattern IsRelu(x) { return Relu(x); }
    rule toTanh for IsRelu(x) { return Tanh(x); }
    pattern IsTanh(x) { return Tanh(x); }
    rule toRelu for IsTanh(x) { return Relu(x); }
  )");
  NodeId R = node("Relu", {input({4})});
  G.addOutput(R);
  RuleSet RS;
  RS.addLibrary(*Lib);
  RewriteOptions Opts;
  Opts.MaxRewrites = 10;
  RewriteStats Stats = rewriteToFixpoint(G, RS, SI, Opts);
  EXPECT_TRUE(Stats.hitRewriteLimit());
  EXPECT_EQ(Stats.Status.Code, EngineStatusCode::BudgetExhausted);
  EXPECT_EQ(Stats.Status.Reason, BudgetReason::Rewrites);
  EXPECT_EQ(Stats.TotalFired, 10u);
  DiagnosticEngine Diags;
  EXPECT_TRUE(G.verify(Diags)) << Diags.renderAll();
}

TEST_F(RewriteTest, RhsFunVarApplicationBuildsMatchedOperator) {
  auto Lib = lib(R"(
    pattern Wrapped(x, f) {
      assert f.op_class == opclass("unary_pointwise");
      return f(f(x));
    }
    rule once for Wrapped(x, f) { return f(x); }
  )");
  NodeId T = node("Tanh", {node("Tanh", {input({4})})});
  G.addOutput(T);
  RuleSet RS;
  RS.addLibrary(*Lib);
  rewriteToFixpoint(G, RS, SI);
  EXPECT_EQ(G.countOps("Tanh"), 1u);
}

TEST_F(RewriteTest, RhsAttrTemplateRecordsFunVarOp) {
  auto Lib = lib(R"(
    pattern GemmAct2(a, b, f) {
      assert f.op_class == opclass("unary_pointwise");
      return f(MatMul(a, b));
    }
    rule fuse2 for GemmAct2(a, b, f) {
      return GemmEpilog[act = f.op_id](a, b);
    }
  )");
  NodeId M = node("MatMul", {input({8, 8}), input({8, 8})});
  NodeId R = node("Gelu", {M});
  G.addOutput(R);
  RuleSet RS;
  RS.addLibrary(*Lib);
  rewriteToFixpoint(G, RS, SI);
  ASSERT_EQ(G.countOps("GemmEpilog"), 1u);
  NodeId Fused = G.outputs()[0];
  EXPECT_EQ(G.attr(Fused, Symbol::intern("act")),
            static_cast<int64_t>(Sig.lookup("Gelu").index()));
}

TEST_F(RewriteTest, StatsSummaryMentionsPatterns) {
  auto Lib = lib(CublasSrc);
  NodeId M = node("MatMul", {input({8, 8}), node("Trans", {input({8, 8})})});
  G.addOutput(M);
  RuleSet RS;
  RS.addLibrary(*Lib);
  RewriteStats Stats = rewriteToFixpoint(G, RS, SI);
  std::string S = Stats.summary();
  EXPECT_NE(S.find("MMxyT"), std::string::npos);
  EXPECT_NE(S.find("fired=1"), std::string::npos);
}

TEST_F(RewriteTest, RootsFirstReachesTheSameFixpointOnChains) {
  auto Lib = lib(R"(
    pattern UnaryChain2(x, f) { return f(UnaryChain2(x, f)); }
    pattern UnaryChain2(x, f) { return f(x); }
    pattern IdemChain2(x, f) {
      assert f.op_id == op("Relu");
      return f(UnaryChain2(x, f));
    }
    rule collapse2 for IdemChain2(x, f) { return f(x); }
  )");
  RuleSet RS;
  RS.addLibrary(*Lib);
  for (auto Order : {Traversal::OperandsFirst, Traversal::RootsFirst}) {
    Graph G2(Sig);
    NodeId X = G2.addLeaf("Input",
                          TensorType::make(term::DType::F32, {16}));
    NodeId Cur = X;
    for (int I = 0; I != 5; ++I)
      Cur = G2.addNode(Sig.lookup("Relu"), {Cur});
    G2.addOutput(Cur);
    ShapeInference().inferAll(G2);
    RewriteOptions Opts;
    Opts.Order = Order;
    rewriteToFixpoint(G2, RS, SI, Opts);
    EXPECT_EQ(G2.countOps("Relu"), 1u);
    DiagnosticEngine Diags;
    EXPECT_TRUE(G2.verify(Diags)) << Diags.renderAll();
  }
}

TEST_F(RewriteTest, RootsFirstFiresFewerRulesOnNestedMatches) {
  // OperandsFirst visits the innermost 2-Relu tower first and collapses
  // incrementally; RootsFirst claims the whole tower at the top in one
  // firing.
  auto Lib = lib(R"(
    pattern UC3(x, f) { return f(UC3(x, f)); }
    pattern UC3(x, f) { return f(x); }
    pattern IC3(x, f) {
      assert f.op_id == op("Relu");
      return f(UC3(x, f));
    }
    rule c3 for IC3(x, f) { return f(x); }
  )");
  RuleSet RS;
  RS.addLibrary(*Lib);
  uint64_t Fired[2];
  int I = 0;
  for (auto Order : {Traversal::OperandsFirst, Traversal::RootsFirst}) {
    Graph G2(Sig);
    NodeId X = G2.addLeaf("Input",
                          TensorType::make(term::DType::F32, {16}));
    NodeId Cur = X;
    for (int K = 0; K != 6; ++K)
      Cur = G2.addNode(Sig.lookup("Relu"), {Cur});
    G2.addOutput(Cur);
    ShapeInference().inferAll(G2);
    RewriteOptions Opts;
    Opts.Order = Order;
    Fired[I++] = rewriteToFixpoint(G2, RS, SI, Opts).TotalFired;
  }
  EXPECT_EQ(Fired[1], 1u);       // RootsFirst: one shot at the top
  EXPECT_GT(Fired[0], Fired[1]); // OperandsFirst cascades bottom-up
}

TEST_F(RewriteTest, EmptyRuleSetIsANoop) {
  NodeId R = node("Relu", {input({4})});
  G.addOutput(R);
  RuleSet RS;
  RewriteStats Stats = rewriteToFixpoint(G, RS, SI);
  EXPECT_EQ(Stats.TotalFired, 0u);
  EXPECT_EQ(Stats.Passes, 1u);
  EXPECT_EQ(G.countOps("Relu"), 1u);
}

TEST_F(RewriteTest, SummaryReportsCountersAndTimes) {
  auto Lib = lib(CublasSrc);
  NodeId A = input({64, 128});
  NodeId B = input({32, 128});
  G.addOutput(node("MatMul", {A, node("Trans", {B})}));
  RuleSet RS;
  RS.addLibrary(*Lib);
  RewriteStats Stats = rewriteToFixpoint(G, RS, SI);
  std::string S = Stats.summary();
  // Header line carries the engine-level counters…
  EXPECT_NE(S.find("passes=" + std::to_string(Stats.Passes)),
            std::string::npos) << S;
  EXPECT_NE(S.find("matches=" + std::to_string(Stats.TotalMatches)),
            std::string::npos) << S;
  EXPECT_NE(S.find("fired=1"), std::string::npos) << S;
  EXPECT_NE(S.find("matchTime="), std::string::npos) << S;
  EXPECT_NE(S.find("discoveryTime="), std::string::npos) << S;
  EXPECT_NE(S.find("totalTime="), std::string::npos) << S;
  // …and every pattern gets its own row.
  EXPECT_NE(S.find("MMxyT"), std::string::npos) << S;
  EXPECT_NE(S.find("attempts="), std::string::npos) << S;
}

TEST_F(RewriteTest, MatchSecondsBoundedByTotalSeconds) {
  // Regression for the Seconds accounting: matching wall-clock is a set of
  // disjoint subintervals of the run in both engines, so the inequality
  // must hold by construction — even under the parallel engine, where the
  // per-worker CPU sums (PatternStats::Seconds) may legitimately exceed
  // wall-clock.
  auto Lib = lib(R"(
    pattern RR(x) { return Relu(Relu(x)); }
    rule rr for RR(x) { return Relu(x); }
  )");
  RuleSet RS;
  RS.addLibrary(*Lib);
  for (unsigned Threads : {0u, 1u, 4u}) {
    Graph G2(Sig);
    NodeId Cur = G2.addLeaf("Input",
                            TensorType::make(term::DType::F32, {16}));
    // A tall Relu tower forces several passes, so both the multi-pass
    // accumulation and the per-pass discovery accounting are exercised.
    for (int K = 0; K != 32; ++K)
      Cur = G2.addNode(Sig.lookup("Relu"), {Cur});
    G2.addOutput(Cur);
    ShapeInference().inferAll(G2);
    RewriteOptions Opts;
    Opts.NumThreads = Threads;
    RewriteStats Stats = rewriteToFixpoint(G2, RS, SI, Opts);
    EXPECT_GT(Stats.Passes, 1u) << Threads;
    EXPECT_GE(Stats.MatchSeconds, 0.0) << Threads;
    EXPECT_LE(Stats.MatchSeconds, Stats.TotalSeconds) << Threads;
    EXPECT_GE(Stats.DiscoverySeconds, 0.0) << Threads;
    EXPECT_LE(Stats.DiscoverySeconds, Stats.MatchSeconds) << Threads;
  }
}
