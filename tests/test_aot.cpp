//===- tests/test_aot.cpp - AOT plan backends ≡ plan::Interpreter -------------===//
///
/// The AOT subsystem (src/plan/aot/) executes a compiled plan::Program
/// through two tiers — the toolchain-free threaded-code backend and the
/// emitted-C++ .so backend — that must be *bit-identical* to the
/// interpreter: same statuses, witnesses, resume() streams, MachineStats,
/// budget charging in committed attempt order, and quarantine/fault
/// interaction. These tests pin it at every level:
///
///  - lowering: the shared aot::lower() pass preserves PCs and resolves
///    every operand to exactly the side-table value the interpreter would
///    re-resolve per step; abiFingerprint distinguishes plans the
///    op-id-independent CanonicalSig deliberately conflates;
///  - per-attempt: ThreadedExec (fresh and reused) against the
///    interpreter and FastMatcher on the feature forms and on thousands
///    of random (pattern, term) pairs;
///  - engine: Matcher=PlanThreaded commits bit-identical runs to
///    Matcher=Plan on the whole model zoo at every thread count, in
///    batched and incremental modes, and across the 50-seed stress zoo
///    under budgets, quarantine, and injected faults;
///  - emitted tier (auto-skipped when the host has no C++ compiler): the
///    built .so through PlanLibrary → SoExec agrees per attempt and at
///    engine level, and the embedded ABI declarations match the host's;
///  - fallback: Matcher=PlanAot without a (valid) library warns and runs
///    the interpreter — results identical to Matcher=Plan, graph safe.
///
//===----------------------------------------------------------------------===//

#include "StressHarness.h"
#include "TestHelpers.h"

#include "graph/GraphIO.h"
#include "match/FastMatcher.h"
#include "models/Transformers.h"
#include "models/Zoo.h"
#include "opt/StdPatterns.h"
#include "plan/Interpreter.h"
#include "plan/PlanBuilder.h"
#include "plan/aot/Emitter.h"
#include "plan/aot/Library.h"
#include "plan/aot/Lowering.h"
#include "plan/aot/Threaded.h"
#include "rewrite/RewriteEngine.h"
#include "support/FaultInjection.h"
#include "support/Random.h"

#include <cstdio>
#include <deque>
#include <fstream>
#include <functional>

using namespace pypm;
using namespace pypm::match;
using namespace pypm::pattern;
using namespace pypm::plan;
using pypm::testing::CoreFixture;
using pypm::testing::expectFullyEqual;
using pypm::testing::expectOutcomesEqual;
using pypm::testing::planOpts;
using pypm::testing::runModel;
using pypm::testing::RunResult;
using pypm::testing::runStressCase;
using pypm::testing::StressOutcome;
using pypm::testing::stressRepro;

namespace {

bool isUserVisibleSym(Symbol S) {
  return S.str().find('$') == std::string_view::npos;
}

/// μ-unfold binder freshening draws on a process-global counter, so two
/// separate executor runs can differ in invisible $-binder names; visible
/// bindings must still agree exactly (same policy as test_matchplan.cpp).
Witness restrictVisible(const Witness &W) {
  Witness Out;
  for (const auto &[K, V] : W.Theta)
    if (isUserVisibleSym(K))
      Out.Theta.bind(K, V);
  for (const auto &[K, V] : W.Phi)
    if (isUserVisibleSym(K))
      Out.Phi.bind(K, V);
  return Out;
}

void expectStatsEqual(const MachineStats &A, const MachineStats &B) {
  EXPECT_EQ(A.Steps, B.Steps);
  EXPECT_EQ(A.Backtracks, B.Backtracks);
  EXPECT_EQ(A.MuUnfolds, B.MuUnfolds);
  EXPECT_EQ(A.VarBinds, B.VarBinds);
  EXPECT_EQ(A.GuardEvals, B.GuardEvals);
  EXPECT_EQ(A.GuardStuck, B.GuardStuck);
}

/// PlanThreaded engine options at \p Threads workers.
rewrite::RewriteOptions thrOpts(unsigned Threads) {
  rewrite::RewriteOptions O;
  O.Matcher = rewrite::MatcherKind::PlanThreaded;
  O.NumThreads = Threads;
  return O;
}

/// The standard pipeline rule set compiled into one Program (the shape
/// most plans have in production: multiple libraries, guards, fun-vars).
struct CompiledPipeline {
  term::Signature Sig;
  opt::Pipeline Pipe;
  plan::Program Prog;

  CompiledPipeline() {
    models::declareModelOps(Sig);
    Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
    Prog = plan::PlanBuilder::compile(Pipe.Rules, Sig);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Lowering and fingerprints
//===----------------------------------------------------------------------===//

TEST(AotLowering, StreamPreservesPCsAndResolvesOperands) {
  CompiledPipeline CP;
  const plan::Program &P = CP.Prog;
  aot::LoweredProgram L = aot::lower(P);
  ASSERT_EQ(L.Code.size(), P.Code.size());
  ASSERT_EQ(L.Roots.size(), P.Entries.size());
  for (size_t I = 0; I != P.Entries.size(); ++I)
    EXPECT_EQ(L.Roots[I], P.Entries[I].RootPC);

  for (uint32_t PC = 0; PC != P.Code.size(); ++PC) {
    SCOPED_TRACE("pc=" + std::to_string(PC));
    const plan::Instr &I = P.Code[PC];
    const aot::LInstr &LI = L.Code[PC];
    ASSERT_EQ(LI.Op, I.Op);
    switch (I.Op) {
    case OpCode::MatchVar:
      EXPECT_EQ(LI.Sym, P.Syms[I.A]);
      break;
    case OpCode::MatchApp:
      EXPECT_EQ(LI.OpId, term::OpId(I.A));
      EXPECT_EQ(LI.NumChildren, I.NumChildren);
      if (I.NumChildren)
        EXPECT_EQ(LI.Children, &P.ChildPCs[I.FirstChild]);
      break;
    case OpCode::MatchFunVarApp:
      EXPECT_EQ(LI.Sym, P.Syms[I.A]);
      EXPECT_EQ(LI.NumChildren, I.NumChildren);
      if (I.NumChildren)
        EXPECT_EQ(LI.Children, &P.ChildPCs[I.FirstChild]);
      break;
    case OpCode::MatchAlt:
      EXPECT_EQ(LI.A, I.A);
      EXPECT_EQ(LI.B, I.B);
      break;
    case OpCode::MatchGuarded:
      EXPECT_EQ(LI.A, I.A);
      EXPECT_EQ(LI.Guard, P.Guards[I.B]);
      break;
    case OpCode::MatchExists:
    case OpCode::MatchExistsFun:
      EXPECT_EQ(LI.A, I.A);
      EXPECT_EQ(LI.Sym, P.Syms[I.B]);
      break;
    case OpCode::MatchConstraint:
      EXPECT_EQ(LI.A, I.A);
      EXPECT_EQ(LI.B, I.B);
      EXPECT_EQ(LI.Sym, P.Syms[I.C]);
      break;
    case OpCode::MatchMu:
      EXPECT_EQ(LI.Mu, P.Mus[I.A]);
      break;
    case OpCode::Fail:
      break;
    }
  }
}

TEST(AotLowering, FingerprintIsStableAndOpIdSensitive) {
  // Same rule set, same signature layout → same fingerprint.
  CompiledPipeline A, B;
  EXPECT_EQ(aot::abiFingerprint(A.Prog), aot::abiFingerprint(B.Prog));
  EXPECT_EQ(A.Prog.CanonicalSig, B.Prog.CanonicalSig);

  // Same rule set compiled against a *renumbered* signature: the
  // op-id-independent CanonicalSig is unchanged by design (profiles
  // survive renumbering), but the emitted-artifact fingerprint — which
  // bakes concrete operator ids — must differ.
  term::Signature SigC;
  SigC.getOrAddOp("zz_renumbering_pad", 3);
  models::declareModelOps(SigC);
  opt::Pipeline PipeC = opt::makePipeline(SigC, opt::OptConfig::Both);
  plan::Program ProgC = plan::PlanBuilder::compile(PipeC.Rules, SigC);
  EXPECT_EQ(ProgC.CanonicalSig, A.Prog.CanonicalSig);
  EXPECT_NE(aot::abiFingerprint(ProgC), aot::abiFingerprint(A.Prog));

  // A different rule set differs in both.
  term::Signature SigD;
  models::declareModelOps(SigD);
  auto Cublas = opt::compileCublas(SigD);
  rewrite::RuleSet RSD;
  RSD.addLibrary(*Cublas);
  plan::Program ProgD = plan::PlanBuilder::compile(RSD, SigD);
  EXPECT_NE(aot::abiFingerprint(ProgD), aot::abiFingerprint(A.Prog));
}

TEST(AotLowering, MarkerNamesBothFingerprints) {
  CompiledPipeline CP;
  std::string M = aot::AotEmitter::markerFor(CP.Prog);
  EXPECT_EQ(M.find(aot::kAotMarkerPrefix), 0u) << M;
  // prefix + 16 hex + ':' + 16 hex + ';'
  EXPECT_EQ(M.size(), std::string(aot::kAotMarkerPrefix).size() + 34) << M;
  EXPECT_EQ(M.back(), ';');
}

//===----------------------------------------------------------------------===//
// Threaded tier: per-attempt differential
//===----------------------------------------------------------------------===//

class AotThreadedTest : public CoreFixture {
protected:
  const plan::Program &compileSingle(const Pattern *P) {
    Defs.push_back(NamedPattern{Symbol::intern("P"), {}, {}, P});
    rewrite::RuleSet RS;
    RS.addPattern(Defs.back());
    Progs.push_back(plan::PlanBuilder::compile(RS, Sig));
    return Progs.back();
  }

  /// Interpreter vs fresh ThreadedExec vs FastMatcher, single attempt.
  void expectAgree(const Pattern *P, term::TermRef T,
                   Machine::Options Opts = {}) {
    MatchResult Fast = FastMatcher::run(P, T, Arena, Opts);
    const plan::Program &Prog = compileSingle(P);
    MatchResult Interp = plan::Interpreter::run(Prog, 0, T, Arena, Opts);
    aot::ThreadedProgram TP = aot::ThreadedProgram::decode(Prog);
    MatchResult Thr = aot::ThreadedExec::run(TP, 0, T, Arena, Opts);
    ASSERT_EQ(Thr.Status, Interp.Status)
        << P->toString(Sig) << " vs " << Arena.toString(T);
    ASSERT_EQ(Thr.Status, Fast.Status)
        << P->toString(Sig) << " vs " << Arena.toString(T);
    if (Interp.Status == MachineStatus::Success)
      EXPECT_EQ(Thr.W, Interp.W)
          << P->toString(Sig) << " vs " << Arena.toString(T) << "\n  interp "
          << toString(Interp.W, Sig) << "\n  threaded " << toString(Thr.W, Sig);
    expectStatsEqual(Thr.Stats, Interp.Stats);
    expectStatsEqual(Thr.Stats, Fast.Stats);
  }

  std::deque<NamedPattern> Defs;
  std::deque<plan::Program> Progs;
};

TEST_F(AotThreadedTest, AgreesOnBasicForms) {
  expectAgree(v("x"), t("F(C, D)"));
  expectAgree(app("Pair", {v("x"), v("x")}), t("Pair(C, C)"));
  expectAgree(app("Pair", {v("x"), v("x")}), t("Pair(C, D)"));
  expectAgree(app("Trans", {v("x")}), t("Softmax1(A)"));
}

TEST_F(AotThreadedTest, AgreesOnAlternatesAndGuards) {
  const GuardExpr *RankIs2 = PA.binary(
      GuardKind::Eq, PA.attr(Symbol::intern("x"), Symbol::intern("rank")),
      PA.intLit(2));
  const Pattern *P =
      PA.alt(PA.guarded(v("x"), RankIs2), app("Trans", {v("y")}));
  expectAgree(P, t("A[rank=2]"));
  expectAgree(P, t("Trans(B[rank=7])"));
  expectAgree(P, t("C"));
}

TEST_F(AotThreadedTest, AgreesOnExistsAndConstraints) {
  Symbol X = Symbol::intern("x"), Y = Symbol::intern("y");
  const Pattern *P = PA.exists(
      Y, PA.matchConstraint(PA.var(X), app("Trans", {PA.var(Y)}), X));
  expectAgree(P, t("Trans(B)"));
  expectAgree(P, t("Softmax1(B)"));
}

TEST_F(AotThreadedTest, AgreesOnRecursionIncludingFuelExhaustion) {
  Symbol U = Symbol::intern("U"), X = Symbol::intern("x"),
         F = Symbol::intern("f");
  const Pattern *Body = PA.alt(PA.funVarApp(F, {PA.recCall(U, {X, F})}),
                               PA.funVarApp(F, {PA.var(X)}));
  const Pattern *Chain = PA.mu(U, {X, F}, {X, F}, Body);
  expectAgree(Chain, t("Relu(Relu(Relu(C)))"));
  expectAgree(Chain, t("Relu(Tanh(C))"));
  expectAgree(Chain, t("C"));

  Symbol P = Symbol::intern("P");
  const Pattern *Diverge = PA.mu(P, {X}, {X}, PA.recCall(P, {X}));
  Machine::Options Tight;
  Tight.MaxMuUnfolds = 32;
  const plan::Program &Prog = compileSingle(Diverge);
  aot::ThreadedProgram TP = aot::ThreadedProgram::decode(Prog);
  MatchResult Interp = plan::Interpreter::run(Prog, 0, t("C"), Arena, Tight);
  MatchResult Thr = aot::ThreadedExec::run(TP, 0, t("C"), Arena, Tight);
  EXPECT_EQ(Interp.Status, MachineStatus::OutOfFuel);
  EXPECT_EQ(Thr.Status, MachineStatus::OutOfFuel);
  expectStatsEqual(Thr.Stats, Interp.Stats);
}

TEST_F(AotThreadedTest, ResumeStreamsAgree) {
  const Pattern *P = PA.alt(app("Pair", {v("x"), v("y")}),
                            app("Pair", {v("y"), v("x")}));
  term::TermRef T = t("Pair(C1, C2)");
  const plan::Program &Prog = compileSingle(P);
  aot::ThreadedProgram TP = aot::ThreadedProgram::decode(Prog);

  plan::Interpreter IP(Prog, Arena);
  aot::ThreadedExec TE(TP, Arena);
  MachineStatus SI = IP.matchEntry(0, T);
  MachineStatus ST = TE.matchEntry(0, T);
  size_t Solutions = 0;
  while (SI == MachineStatus::Success || ST == MachineStatus::Success) {
    ASSERT_EQ(ST, SI) << "solution " << Solutions;
    EXPECT_EQ(TE.witness(), IP.witness()) << "solution " << Solutions;
    ++Solutions;
    SI = IP.resume();
    ST = TE.resume();
  }
  EXPECT_EQ(ST, SI);
  EXPECT_EQ(Solutions, 2u);
}

TEST_F(AotThreadedTest, ReusedExecutorMatchesFreshPerAttempt) {
  // One ThreadedExec serving many attempts (the engine's reuse mode) must
  // be per-attempt identical to a fresh executor — and to the interpreter.
  const Pattern *P = PA.alt(app("Pair", {v("x"), v("x")}),
                            app("Trans", {v("y")}));
  const plan::Program &Prog = compileSingle(P);
  aot::ThreadedProgram TP = aot::ThreadedProgram::decode(Prog);
  aot::ThreadedExec Reused(TP, Arena);
  for (const char *Text :
       {"Pair(C, C)", "Pair(C, D)", "Trans(A)", "C", "Pair(C, C)"}) {
    SCOPED_TRACE(Text);
    term::TermRef T = t(Text);
    MatchResult R = Reused.matchOne(0, T);
    MatchResult F = aot::ThreadedExec::run(TP, 0, T, Arena);
    MatchResult I = plan::Interpreter::run(Prog, 0, T, Arena);
    ASSERT_EQ(R.Status, I.Status);
    ASSERT_EQ(F.Status, I.Status);
    if (I.Status == MachineStatus::Success) {
      EXPECT_EQ(R.W, I.W);
      EXPECT_EQ(F.W, I.W);
    }
    expectStatsEqual(R.Stats, I.Stats);
    expectStatsEqual(F.Stats, I.Stats);
  }
}

TEST_F(AotThreadedTest, PipelineProgramAgreesOnEveryEntryAndNode) {
  // The full pipeline plan over a real model: every (entry, node) attempt
  // must agree — the multi-entry, shared-side-table case.
  CompiledPipeline CP;
  aot::ThreadedProgram TP = aot::ThreadedProgram::decode(CP.Prog);
  models::TransformerConfig TC;
  TC.Name = "t";
  TC.Layers = 1;
  TC.Hidden = 64;
  auto G = models::buildTransformer(CP.Sig, TC);
  term::TermArena A2(CP.Sig);
  graph::TermView View(*G, A2);
  aot::ThreadedExec Reused(TP, A2);
  plan::Interpreter Interp(CP.Prog, A2);
  for (graph::NodeId N : G->topoOrder()) {
    term::TermRef T = View.termFor(N);
    for (size_t E = 0; E != CP.Prog.Entries.size(); ++E) {
      MatchResult RI = Interp.matchOne(E, T);
      MatchResult RT = Reused.matchOne(E, T);
      ASSERT_EQ(RT.Status, RI.Status) << "node " << N << " entry " << E;
      if (RI.Status == MachineStatus::Success)
        EXPECT_EQ(RT.W, RI.W) << "node " << N << " entry " << E;
      expectStatsEqual(RT.Stats, RI.Stats);
    }
  }
}

//===----------------------------------------------------------------------===//
// Threaded tier: randomized per-attempt differential
//===----------------------------------------------------------------------===//

class AotThreadedRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AotThreadedRandomTest, RandomPatternsAgree) {
  term::Signature Sig;
  term::TermArena Arena(Sig);
  PatternArena PA;
  Rng R(GetParam() * 7411 + 3);

  term::OpId C0 = Sig.addOp("c0", 0), C1 = Sig.addOp("c1", 0);
  term::OpId U0 = Sig.addOp("u0", 1), B0 = Sig.addOp("b0", 2);

  std::vector<Symbol> Vars{Symbol::intern("x"), Symbol::intern("y")};
  uint64_t Fresh = 0;
  std::function<term::TermRef(unsigned)> GenTerm =
      [&](unsigned Depth) -> term::TermRef {
    if (Depth == 0 || R.chance(1, 3))
      return Arena.leaf(R.chance(1, 2) ? C0 : C1);
    if (R.chance(1, 2))
      return Arena.make(U0, {GenTerm(Depth - 1)});
    return Arena.make(B0, {GenTerm(Depth - 1), GenTerm(Depth - 1)});
  };
  std::function<const Pattern *(unsigned)> GenPat =
      [&](unsigned Depth) -> const Pattern * {
    if (Depth == 0)
      return PA.var(Vars[R.below(2)]);
    switch (R.below(8)) {
    case 0:
      return PA.var(Vars[R.below(2)]);
    case 1:
      return PA.app(U0, {GenPat(Depth - 1)});
    case 2:
      return PA.app(B0, {GenPat(Depth - 1), GenPat(Depth - 1)});
    case 3:
      return PA.alt(GenPat(Depth - 1), GenPat(Depth - 1));
    case 4: {
      Symbol V = Symbol::intern("e" + std::to_string(Fresh++));
      return PA.exists(V, PA.app(U0, {PA.var(V)}));
    }
    case 5: {
      Symbol V = Vars[R.below(2)];
      return PA.matchConstraint(PA.var(V), GenPat(Depth - 1), V);
    }
    case 6: {
      Symbol F = Symbol::intern("F" + std::to_string(Fresh++));
      return PA.existsFun(F, PA.funVarApp(F, {GenPat(Depth - 1)}));
    }
    case 7: {
      Symbol Self = Symbol::intern("P" + std::to_string(Fresh++));
      Symbol Param = Symbol::intern("r" + std::to_string(Fresh++));
      const Pattern *Step = PA.app(U0, {PA.recCall(Self, {Param})});
      return PA.mu(Self, {Param}, {Vars[R.below(2)]},
                   PA.alt(Step, GenPat(Depth - 1)));
    }
    }
    return PA.var(Vars[0]);
  };

  std::deque<NamedPattern> Defs;
  for (int Iter = 0; Iter != 150; ++Iter) {
    term::TermRef T = GenTerm(4);
    const Pattern *P = GenPat(3);
    Defs.push_back(NamedPattern{Symbol::intern("P"), {}, {}, P});
    rewrite::RuleSet RS;
    RS.addPattern(Defs.back());
    plan::Program Prog = plan::PlanBuilder::compile(RS, Sig);
    aot::ThreadedProgram TP = aot::ThreadedProgram::decode(Prog);

    MatchResult Interp = plan::Interpreter::run(Prog, 0, T, Arena);
    MatchResult Thr = aot::ThreadedExec::run(TP, 0, T, Arena);
    ASSERT_EQ(Thr.Status, Interp.Status)
        << P->toString(Sig) << " against " << Arena.toString(T);
    if (Interp.matched())
      ASSERT_EQ(restrictVisible(Thr.W), restrictVisible(Interp.W))
          << P->toString(Sig) << " against " << Arena.toString(T);
    expectStatsEqual(Thr.Stats, Interp.Stats);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AotThreadedRandomTest,
                         ::testing::Range<uint64_t>(0, 50));

//===----------------------------------------------------------------------===//
// Threaded tier: engine-level equivalence
//===----------------------------------------------------------------------===//

TEST(AotEngine, ThreadedZooMatchesPlanAtEveryThreadCount) {
  for (const auto &Suite : {models::hfSuite(), models::tvSuite()}) {
    for (const models::ModelEntry &Model : Suite) {
      RunResult Plan0 = runModel(Model, planOpts(0));
      RunResult Thr0 = runModel(Model, thrOpts(0));
      // Same plan family, same prefilter: every counter must match, not
      // just the committed rewrites.
      expectFullyEqual(Plan0, Thr0, Model.Name + " plan@0 vs threaded@0");
      for (unsigned Threads : {1u, 2u, 4u, 8u}) {
        RunResult ThrN = runModel(Model, thrOpts(Threads));
        expectFullyEqual(Thr0, ThrN,
                         Model.Name + " threaded@0 vs threaded@" +
                             std::to_string(Threads));
      }
    }
  }
}

TEST(AotEngine, MuChainPipelineMatchesPlan) {
  auto Suite = models::hfSuite();
  ASSERT_GE(Suite.size(), 3u);
  for (size_t I = 0; I != 3; ++I) {
    RunResult Plan0 = runModel(Suite[I], planOpts(0), /*WithUnaryChain=*/true);
    RunResult Thr0 = runModel(Suite[I], thrOpts(0), true);
    RunResult Thr4 = runModel(Suite[I], thrOpts(4), true);
    expectFullyEqual(Plan0, Thr0, Suite[I].Name + " +mu plan@0 vs thr@0");
    expectFullyEqual(Thr0, Thr4, Suite[I].Name + " +mu thr@0 vs thr@4");
  }
}

TEST(AotEngine, BatchedAndIncrementalModesAgree) {
  auto Suite = models::hfSuite();
  ASSERT_GE(Suite.size(), 3u);
  for (size_t I = 0; I != 3; ++I) {
    RunResult Base = runModel(Suite[I], thrOpts(0));
    for (unsigned Threads : {0u, 4u}) {
      rewrite::RewriteOptions Batched = thrOpts(Threads);
      Batched.Batch = true;
      expectFullyEqual(Base, runModel(Suite[I], Batched),
                       Suite[I].Name + " threaded batch@" +
                           std::to_string(Threads));
      rewrite::RewriteOptions Incr = thrOpts(Threads);
      Incr.Incremental = true;
      expectFullyEqual(Base, runModel(Suite[I], Incr),
                       Suite[I].Name + " threaded incremental@" +
                           std::to_string(Threads));
    }
  }
}

TEST(AotEngine, PrecompiledPlanDrivesThreadedRuns) {
  auto Suite = models::hfSuite();
  ASSERT_FALSE(Suite.empty());
  const models::ModelEntry &Model = Suite.front();

  term::Signature Sig;
  auto GA = Model.Build(Sig);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
  plan::Program Prog = plan::PlanBuilder::compile(Pipe.Rules, Sig);

  rewrite::RewriteOptions Pre = thrOpts(0);
  Pre.PrecompiledPlan = &Prog;
  RunResult A;
  A.Stats =
      rewrite::rewriteToFixpoint(*GA, Pipe.Rules, graph::ShapeInference(), Pre);
  A.GraphText = graph::writeGraphText(*GA);
  EXPECT_EQ(A.Stats.PlanCompileSeconds, 0.0);

  RunResult B = runModel(Model, thrOpts(0));
  EXPECT_GT(B.Stats.PlanCompileSeconds, 0.0);
  expectFullyEqual(A, B, Model.Name + " threaded precompiled vs in-run");
}

//===----------------------------------------------------------------------===//
// Threaded tier: governance determinism (stress tier)
//===----------------------------------------------------------------------===//

namespace {

class AotGovernanceStressTest : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(AotGovernanceStressTest, StressRewritesMatchInterpreterAcrossSeeds) {
  unsigned Threads = GetParam();
  for (uint64_t Seed = 0; Seed != 50; ++Seed) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    rewrite::RewriteOptions P0 = planOpts(0);
    P0.MaxRewrites = 300;
    rewrite::RewriteOptions T0 = thrOpts(0);
    T0.MaxRewrites = 300;
    rewrite::RewriteOptions TN = thrOpts(Threads);
    TN.MaxRewrites = 300;
    StressOutcome Plan0 = runStressCase(Seed, P0);
    StressOutcome Thr0 = runStressCase(Seed, T0);
    StressOutcome ThrN = runStressCase(Seed, TN);
    expectOutcomesEqual(Plan0, Thr0, stressRepro(Seed, "plan@0 vs thr@0"));
    expectOutcomesEqual(Thr0, ThrN, stressRepro(Seed, 0, Threads, "thr"));
  }
}

TEST_P(AotGovernanceStressTest, BudgetExhaustionMatchesInterpreter) {
  unsigned Threads = GetParam();
  bool SawExhaustion = false;
  for (uint64_t Seed = 0; Seed != 10; ++Seed) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    BudgetLimits L;
    L.MaxTotalSteps = 2;
    Budget BP(L), B0(L), BN(L);
    rewrite::RewriteOptions OP = planOpts(0);
    OP.EngineBudget = &BP;
    rewrite::RewriteOptions O0 = thrOpts(0);
    O0.EngineBudget = &B0;
    rewrite::RewriteOptions ON = thrOpts(Threads);
    ON.EngineBudget = &BN;
    StressOutcome SP = runStressCase(Seed, OP);
    StressOutcome S0 = runStressCase(Seed, O0);
    StressOutcome SN = runStressCase(Seed, ON);
    expectOutcomesEqual(SP, S0, stressRepro(Seed, "budget plan vs thr"));
    expectOutcomesEqual(S0, SN, stressRepro(Seed, 0, Threads, "budget thr"));
    SawExhaustion |=
        S0.Stats.Status.Code == EngineStatusCode::BudgetExhausted;
  }
  EXPECT_TRUE(SawExhaustion);
}

TEST_P(AotGovernanceStressTest, QuarantineMatchesInterpreter) {
  unsigned Threads = GetParam();
  bool SawQuarantine = false;
  for (uint64_t Seed = 0; Seed != 10; ++Seed) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    rewrite::RewriteOptions OP = planOpts(0);
    OP.MachineOpts.MaxSteps = 3;
    OP.QuarantineThreshold = 2;
    rewrite::RewriteOptions O0 = thrOpts(0);
    O0.MachineOpts.MaxSteps = 3;
    O0.QuarantineThreshold = 2;
    rewrite::RewriteOptions ON = O0;
    ON.NumThreads = Threads;
    StressOutcome SP = runStressCase(Seed, OP);
    StressOutcome S0 = runStressCase(Seed, O0);
    StressOutcome SN = runStressCase(Seed, ON);
    expectOutcomesEqual(SP, S0, stressRepro(Seed, "quarantine plan vs thr"));
    expectOutcomesEqual(S0, SN,
                        stressRepro(Seed, 0, Threads, "quarantine thr"));
    SawQuarantine |= S0.Stats.Status.quarantined();
  }
  EXPECT_TRUE(SawQuarantine);
}

TEST_P(AotGovernanceStressTest, InjectedFaultsLandIdentically) {
  unsigned Threads = GetParam();
  bool SawFault = false;
  for (uint64_t Seed = 0; Seed != 10; ++Seed) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    FaultInjector::Config C;
    C.SiteSeed = Seed * 1000 + 7;
    // Dense schedule: the plan prefilter skips most attempts and sites are
    // consulted per *attempted* entry (see test_incremental's fault sweep).
    C.SitePeriod = 5;
    FaultInjector FP(C), F0(C), FN(C);
    rewrite::RewriteOptions OP = planOpts(0);
    OP.MaxRewrites = 300;
    OP.Faults = &FP;
    rewrite::RewriteOptions O0 = thrOpts(0);
    O0.MaxRewrites = 300;
    O0.Faults = &F0;
    rewrite::RewriteOptions ON = thrOpts(Threads);
    ON.MaxRewrites = 300;
    ON.Faults = &FN;
    StressOutcome SP = runStressCase(Seed, OP);
    StressOutcome S0 = runStressCase(Seed, O0);
    StressOutcome SN = runStressCase(Seed, ON);
    expectOutcomesEqual(SP, S0, stressRepro(Seed, "faults plan vs thr"));
    expectOutcomesEqual(S0, SN, stressRepro(Seed, 0, Threads, "faults thr"));
    SawFault |= S0.Stats.Status.FaultsAbsorbed != 0;
  }
  EXPECT_TRUE(SawFault);
}

INSTANTIATE_TEST_SUITE_P(Threads, AotGovernanceStressTest,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto &Info) {
                           return "T" + std::to_string(Info.param);
                         });

//===----------------------------------------------------------------------===//
// Emitted tier (compiler-gated)
//===----------------------------------------------------------------------===//

namespace {

/// Skips the calling test when the host has no C++ compiler; otherwise
/// builds \p P into a .so under the test temp dir and loads it.
#define BUILD_OR_SKIP(Lib, P, Name)                                            \
  if (aot::AotEmitter::findCompiler().empty())                                 \
    GTEST_SKIP() << "no C++ compiler on this host; emitted tier untestable";   \
  std::string SoPath = ::testing::TempDir() + (Name);                          \
  {                                                                            \
    std::string Err;                                                           \
    ASSERT_TRUE(aot::AotEmitter::buildSharedObject((P), SoPath, Err)) << Err;  \
  }                                                                            \
  aot::AotLoadStatus LoadSt = aot::AotLoadStatus::Ok;                          \
  auto Lib = aot::PlanLibrary::load(SoPath, (P), nullptr, LoadSt);             \
  ASSERT_NE(Lib, nullptr) << aot::aotLoadStatusMessage(LoadSt);                \
  ASSERT_EQ(LoadSt, aot::AotLoadStatus::Ok)

} // namespace

TEST(AotEmitted, EmbeddedAbiDeclsPinTheHostHeader) {
  // The emitted TU embeds a copy of AotAbi.h's declarations so artifacts
  // build standalone; this pins the copy to the host header's constants.
  CompiledPipeline CP;
  std::string Src = aot::AotEmitter::emitCpp(CP.Prog);
  EXPECT_NE(Src.find("0x31544f414d505950ull"), std::string::npos);
  static_assert(PYPM_AOT_MAGIC == 0x31544f414d505950ull);
  static_assert(PYPM_AOT_ABI_VERSION == 1u);
  static_assert(PYPM_AOT_RUNNING == 0 && PYPM_AOT_SUCCESS == 1 &&
                PYPM_AOT_FAILURE == 2 && PYPM_AOT_OUT_OF_FUEL == 3);
  static_assert(PYPM_AOT_ACT_GUARD == 1u && PYPM_AOT_ACT_CHECK_NAME == 2u &&
                PYPM_AOT_ACT_CHECK_FUNNAME == 3u &&
                PYPM_AOT_ACT_MATCH_CONSTR == 4u);
  // The ABI statuses are the MachineStatus values (the step function's
  // return travels through a static_cast both ways).
  static_assert(PYPM_AOT_RUNNING ==
                static_cast<int>(MachineStatus::Running));
  static_assert(PYPM_AOT_SUCCESS ==
                static_cast<int>(MachineStatus::Success));
  static_assert(PYPM_AOT_FAILURE ==
                static_cast<int>(MachineStatus::Failure));
  static_assert(PYPM_AOT_OUT_OF_FUEL ==
                static_cast<int>(MachineStatus::OutOfFuel));
  // ... and the ActionKinds match the host enum the callbacks decode into.
  static_assert(PYPM_AOT_ACT_GUARD ==
                static_cast<uint32_t>(ActionKind::Guard));
  static_assert(PYPM_AOT_ACT_CHECK_NAME ==
                static_cast<uint32_t>(ActionKind::CheckName));
  static_assert(PYPM_AOT_ACT_CHECK_FUNNAME ==
                static_cast<uint32_t>(ActionKind::CheckFunName));
  static_assert(PYPM_AOT_ACT_MATCH_CONSTR ==
                static_cast<uint32_t>(ActionKind::MatchConstr));
  EXPECT_NE(Src.find(aot::AotEmitter::markerFor(CP.Prog)),
            std::string::npos);
  EXPECT_NE(Src.find("pypm_aot_plan_v1"), std::string::npos);
}

TEST(AotEmitted, PerAttemptMatchesInterpreterOnAModel) {
  CompiledPipeline CP;
  BUILD_OR_SKIP(Lib, CP.Prog, "pypm_aot_perattempt.so");

  models::TransformerConfig TC;
  TC.Name = "t";
  TC.Layers = 1;
  TC.Hidden = 64;
  auto G = models::buildTransformer(CP.Sig, TC);
  term::TermArena A2(CP.Sig);
  graph::TermView View(*G, A2);
  aot::SoExec Reused(CP.Prog, *Lib, A2);
  plan::Interpreter Interp(CP.Prog, A2);
  for (graph::NodeId N : G->topoOrder()) {
    term::TermRef T = View.termFor(N);
    for (size_t E = 0; E != CP.Prog.Entries.size(); ++E) {
      MatchResult RI = Interp.matchOne(E, T);
      MatchResult RS = Reused.matchOne(E, T);
      ASSERT_EQ(RS.Status, RI.Status) << "node " << N << " entry " << E;
      if (RI.Status == MachineStatus::Success)
        EXPECT_EQ(RS.W, RI.W) << "node " << N << " entry " << E;
      expectStatsEqual(RS.Stats, RI.Stats);
    }
  }
}

TEST(AotEmitted, ResumeStreamAgreesWithInterpreter) {
  term::Signature Sig;
  term::TermArena Arena(Sig);
  PatternArena PA;
  term::OpId Pair = Sig.addOp("Pair", 2);
  std::deque<NamedPattern> Defs;
  const Pattern *P =
      PA.alt(PA.app(Pair, {PA.var("x"), PA.var("y")}),
             PA.app(Pair, {PA.var("y"), PA.var("x")}));
  Defs.push_back(NamedPattern{Symbol::intern("P"), {}, {}, P});
  rewrite::RuleSet RS;
  RS.addPattern(Defs.back());
  plan::Program Prog = plan::PlanBuilder::compile(RS, Sig);
  BUILD_OR_SKIP(Lib, Prog, "pypm_aot_resume.so");

  term::OpId C1 = Sig.addOp("C1", 0), C2 = Sig.addOp("C2", 0);
  term::TermRef T =
      Arena.make(Pair, {Arena.leaf(C1), Arena.leaf(C2)});
  plan::Interpreter IP(Prog, Arena);
  aot::SoExec SE(Prog, *Lib, Arena);
  MachineStatus SI = IP.matchEntry(0, T);
  MachineStatus SS = SE.matchEntry(0, T);
  size_t Solutions = 0;
  while (SI == MachineStatus::Success || SS == MachineStatus::Success) {
    ASSERT_EQ(SS, SI) << "solution " << Solutions;
    EXPECT_EQ(SE.witness(), IP.witness()) << "solution " << Solutions;
    ++Solutions;
    SI = IP.resume();
    SS = SE.resume();
  }
  EXPECT_EQ(SS, SI);
  EXPECT_EQ(Solutions, 2u);
}

TEST(AotEmitted, EngineRunMatchesPlanMatcher) {
  auto Suite = models::hfSuite();
  ASSERT_FALSE(Suite.empty());
  const models::ModelEntry &Model = Suite.front();

  term::Signature Sig;
  auto GA = Model.Build(Sig);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
  plan::Program Prog = plan::PlanBuilder::compile(Pipe.Rules, Sig);
  BUILD_OR_SKIP(Lib, Prog, "pypm_aot_engine.so");

  for (unsigned Threads : {0u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(Threads));
    // Same signature layout as the .so's plan: rebuild against Sig.
    auto GRun = Model.Build(Sig);
    rewrite::RewriteOptions AotO;
    AotO.Matcher = rewrite::MatcherKind::PlanAot;
    AotO.NumThreads = Threads;
    AotO.PrecompiledPlan = &Prog;
    AotO.AotLib = Lib.get();
    RunResult A;
    A.Stats = rewrite::rewriteToFixpoint(*GRun, Pipe.Rules,
                                         graph::ShapeInference(), AotO);
    A.GraphText = graph::writeGraphText(*GRun);

    auto GPlan = Model.Build(Sig);
    rewrite::RewriteOptions PlanO = planOpts(Threads);
    PlanO.PrecompiledPlan = &Prog;
    RunResult B;
    B.Stats = rewrite::rewriteToFixpoint(*GPlan, Pipe.Rules,
                                         graph::ShapeInference(), PlanO);
    B.GraphText = graph::writeGraphText(*GPlan);
    expectFullyEqual(A, B, Model.Name + " aot vs plan");
  }
}

TEST(AotEmitted, LoaderRejectsArtifactFromForeignPlan) {
  CompiledPipeline CP;
  BUILD_OR_SKIP(Lib, CP.Prog, "pypm_aot_foreign.so");

  // The same artifact validated against a *different* plan must be
  // refused at the pre-dlopen marker rung with a machine-readable code.
  term::Signature SigD;
  models::declareModelOps(SigD);
  auto Cublas = opt::compileCublas(SigD);
  rewrite::RuleSet RSD;
  RSD.addLibrary(*Cublas);
  plan::Program Other = plan::PlanBuilder::compile(RSD, SigD);
  DiagnosticEngine Diags;
  aot::AotLoadStatus St = aot::AotLoadStatus::Ok;
  auto Rejected = aot::PlanLibrary::load(SoPath, Other, &Diags, St);
  EXPECT_EQ(Rejected, nullptr);
  EXPECT_EQ(St, aot::AotLoadStatus::MarkerMismatch);
  ASSERT_EQ(Diags.diagnostics().size(), 1u);
  EXPECT_EQ(Diags.diagnostics()[0].Code, "aot.stale");
}

TEST(AotEmitted, MismatchedLibraryFallsBackToInterpreter) {
  // Engine-level: a library valid for plan A handed to a run over rules B
  // must demote to the interpreter with a warning, results ≡ Plan.
  CompiledPipeline CP;
  BUILD_OR_SKIP(Lib, CP.Prog, "pypm_aot_mismatch.so");

  auto Suite = models::hfSuite();
  ASSERT_FALSE(Suite.empty());
  const models::ModelEntry &Model = Suite.front();
  term::Signature Sig;
  auto G = Model.Build(Sig);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
  auto Cublas = opt::compileCublas(Sig);
  rewrite::RuleSet Other;
  Other.addLibrary(*Cublas);

  DiagnosticEngine Diags;
  rewrite::RewriteOptions O;
  O.Matcher = rewrite::MatcherKind::PlanAot;
  O.AotLib = Lib.get(); // built from the pipeline plan, not Other
  O.Diags = &Diags;
  RunResult A;
  A.Stats = rewrite::rewriteToFixpoint(*G, Other, graph::ShapeInference(), O);
  A.GraphText = graph::writeGraphText(*G);

  bool SawFallback = false;
  for (const Diagnostic &D : Diags.diagnostics())
    SawFallback |= D.Code == "aot.fallback";
  EXPECT_TRUE(SawFallback);

  auto GB = Model.Build(Sig);
  RunResult B;
  B.Stats = rewrite::rewriteToFixpoint(*GB, Other, graph::ShapeInference(),
                                       planOpts(0));
  B.GraphText = graph::writeGraphText(*GB);
  expectFullyEqual(A, B, "mismatched-lib fallback vs plan");
}

//===----------------------------------------------------------------------===//
// Fallback and loader rejection (no compiler required)
//===----------------------------------------------------------------------===//

TEST(AotEngine, MissingLibraryFallsBackToInterpreterWithWarning) {
  auto Suite = models::hfSuite();
  ASSERT_FALSE(Suite.empty());
  const models::ModelEntry &Model = Suite.front();

  term::Signature Sig;
  auto G = Model.Build(Sig);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
  DiagnosticEngine Diags;
  rewrite::RewriteOptions O;
  O.Matcher = rewrite::MatcherKind::PlanAot; // no AotLib supplied
  O.Diags = &Diags;
  RunResult A;
  A.Stats = rewrite::rewriteToFixpoint(*G, Pipe.Rules,
                                       graph::ShapeInference(), O);
  A.GraphText = graph::writeGraphText(*G);

  bool SawFallback = false;
  for (const Diagnostic &D : Diags.diagnostics())
    SawFallback |= D.Code == "aot.fallback";
  EXPECT_TRUE(SawFallback);

  RunResult B = runModel(Model, planOpts(0));
  expectFullyEqual(A, B, Model.Name + " missing-lib fallback vs plan");
}

TEST(AotLoader, RejectsMissingAndGarbageFiles) {
  CompiledPipeline CP;
  DiagnosticEngine Diags;
  aot::AotLoadStatus St = aot::AotLoadStatus::Ok;
  auto Missing = aot::PlanLibrary::load(
      ::testing::TempDir() + "pypm_aot_nonexistent.so", CP.Prog, &Diags, St);
  EXPECT_EQ(Missing, nullptr);
  EXPECT_EQ(St, aot::AotLoadStatus::Unreadable);
  ASSERT_FALSE(Diags.diagnostics().empty());
  EXPECT_EQ(Diags.diagnostics()[0].Code, "aot.unreadable");

  std::string Garbage = ::testing::TempDir() + "pypm_aot_garbage.so";
  {
    std::ofstream OS(Garbage, std::ios::binary | std::ios::trunc);
    OS << "this is not an emitted plan artifact at all\n";
  }
  auto NotArtifact = aot::PlanLibrary::load(Garbage, CP.Prog, nullptr, St);
  EXPECT_EQ(NotArtifact, nullptr);
  EXPECT_EQ(St, aot::AotLoadStatus::NoMarker);
  std::remove(Garbage.c_str());
}
