//===- tests/test_malformed_inputs.cpp - Hostile-input hardening ----------===//
///
/// \file
/// Every user-facing reader — the graph text parser, the pattern binary
/// deserializer, the DSL parser, and the ground-term parser — must turn
/// malformed input into located diagnostics, never a crash, an assert, or
/// unbounded recursion. The corpora here include truncations at every
/// byte, single-byte corruptions, and hand-crafted depth bombs.
///
//===----------------------------------------------------------------------===//

#include "analysis/CriticalPairs.h"
#include "dsl/Sema.h"
#include "graph/GraphIO.h"
#include "graph/ShapeInference.h"
#include "pattern/Serializer.h"
#include "plan/PlanBuilder.h"
#include "plan/PlanSerializer.h"
#include "plan/Profile.h"
#include "plan/aot/Emitter.h"
#include "plan/aot/Library.h"
#include "rewrite/RewriteEngine.h"
#include "support/Diagnostics.h"
#include "term/TermParser.h"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace pypm;

namespace {

//===----------------------------------------------------------------------===//
// Graph text parser
//===----------------------------------------------------------------------===//

struct GraphParse {
  std::unique_ptr<graph::Graph> G;
  DiagnosticEngine Diags;
  term::Signature Sig;

  explicit GraphParse(std::string_view Text) {
    G = graph::parseGraphText(Text, Sig, Diags);
  }
};

/// The first error diagnostic, or an empty message if none was emitted.
const Diagnostic &firstError(const DiagnosticEngine &Diags) {
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Sev == Severity::Error)
      return D;
  static Diagnostic None;
  return None;
}

TEST(MalformedGraphText, ValidGraphRoundTrips) {
  const char *Text = "n0 = Input() : f32[8x8]\n"
                     "n1 = Relu(n0) : f32[8x8]\n"
                     "output n1\n";
  GraphParse P(Text);
  ASSERT_NE(P.G, nullptr);
  EXPECT_FALSE(P.Diags.hasErrors());
  EXPECT_EQ(graph::writeGraphText(*P.G), Text);
}

TEST(MalformedGraphText, DuplicateNodeIdIsLocatedError) {
  GraphParse P("n0 = Input() : f32[4]\n"
               "n0 = Input() : f32[4]\n");
  EXPECT_EQ(P.G, nullptr);
  const Diagnostic &D = firstError(P.Diags);
  EXPECT_NE(D.Message.find("redefined"), std::string::npos) << D.Message;
  EXPECT_EQ(D.Loc.Line, 2u);
}

TEST(MalformedGraphText, UnknownInputNode) {
  GraphParse P("n1 = Relu(n0) : f32[4]\n");
  EXPECT_EQ(P.G, nullptr);
  const Diagnostic &D = firstError(P.Diags);
  EXPECT_NE(D.Message.find("unknown input node 'n0'"), std::string::npos)
      << D.Message;
  EXPECT_EQ(D.Loc.Line, 1u);
}

TEST(MalformedGraphText, UnknownOutputNode) {
  GraphParse P("n0 = Input() : f32[4]\noutput n9\n");
  EXPECT_EQ(P.G, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find("unknown node"),
            std::string::npos);
}

TEST(MalformedGraphText, UnknownDtype) {
  GraphParse P("n0 = Input() : q7[4]\n");
  EXPECT_EQ(P.G, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find("unknown dtype 'q7'"),
            std::string::npos);
}

TEST(MalformedGraphText, NegativeDimensionRejected) {
  GraphParse P("n0 = Input() : f32[-4]\n");
  EXPECT_EQ(P.G, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find("negative dimension"),
            std::string::npos);

  GraphParse P2("n0 = Input() : f32[4x-2]\n");
  EXPECT_EQ(P2.G, nullptr);
  EXPECT_NE(firstError(P2.Diags).Message.find("negative dimension"),
            std::string::npos);
}

TEST(MalformedGraphText, ArityMismatchAgainstDeclaredOp) {
  term::Signature Sig;
  Sig.addOp("Relu", 1);
  DiagnosticEngine Diags;
  auto G = graph::parseGraphText("n0 = Input() : f32[4]\n"
                                 "n1 = Relu(n0, n0) : f32[4]\n",
                                 Sig, Diags);
  EXPECT_EQ(G, nullptr);
  EXPECT_NE(firstError(Diags).Message.find("expects 1 inputs, got 2"),
            std::string::npos);
}

TEST(MalformedGraphText, MalformedAttributeBlock) {
  GraphParse P("n0 = Input[=1]() : f32[4]\n");
  EXPECT_EQ(P.G, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find("malformed attribute"),
            std::string::npos);
}

TEST(MalformedGraphText, TrailingCharacters) {
  GraphParse P("n0 = Input() : f32[4] junk\n");
  EXPECT_EQ(P.G, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find("trailing characters"),
            std::string::npos);
}

TEST(MalformedGraphText, CommentsAndBlankLinesAreFine) {
  GraphParse P("# header comment\n"
               "\n"
               "n0 = Input() : f32[4]\n"
               "output n0\n");
  ASSERT_NE(P.G, nullptr);
  EXPECT_FALSE(P.Diags.hasErrors());
}

TEST(MalformedGraphText, GarbageCorpusNeverCrashes) {
  const char *Corpus[] = {
      "n0",
      "n0 = ",
      "n0 = Input(",
      "n0 = Input() :",
      "n0 = Input() : f32[",
      "n0 = Input() : f32[4",
      "n0 = Input() : f32[4x",
      "= = =",
      "output",
      "((((((((",
      "\x01\x02\xff\xfe garbage \x00",
      "n0 = Input() : f32[99999999999999999999]",
  };
  for (const char *Text : Corpus) {
    SCOPED_TRACE(Text);
    GraphParse P(Text);
    EXPECT_EQ(P.G, nullptr);
    EXPECT_TRUE(P.Diags.hasErrors());
    EXPECT_TRUE(firstError(P.Diags).Loc.isValid());
  }
}

TEST(MalformedGraphText, EveryPrefixTruncationFailsCleanly) {
  const std::string Valid = "n0 = Input() : f32[8x8]\n"
                            "n1 = Relu(n0) : f32[8x8]\n"
                            "output n1\n";
  for (size_t Len = 0; Len != Valid.size(); ++Len) {
    SCOPED_TRACE(Len);
    // No assertion on the result beyond "returns": a prefix ending on a
    // line boundary is simply a smaller valid graph.
    GraphParse P(std::string_view(Valid).substr(0, Len));
    if (!P.G) {
      EXPECT_TRUE(P.Diags.hasErrors());
    }
  }
}

//===----------------------------------------------------------------------===//
// Pattern binary deserializer
//===----------------------------------------------------------------------===//

void appendU32(std::string &Out, uint32_t V) {
  char Buf[4];
  std::memcpy(Buf, &V, 4);
  Out.append(Buf, 4);
}

/// A small valid pattern binary, produced by the real writer.
std::string validBinary() {
  term::Signature Sig;
  auto Lib = dsl::compileOrDie("op Relu(1);\n"
                               "pattern RR(x) { return Relu(Relu(x)); }\n"
                               "rule rr for RR(x) { return Relu(x); }\n",
                               Sig);
  return pattern::serializeLibrary(*Lib, Sig);
}

struct BinaryParse {
  std::unique_ptr<pattern::Library> Lib;
  DiagnosticEngine Diags;
  term::Signature Sig;

  explicit BinaryParse(std::string_view Bytes) {
    Lib = pattern::deserializeLibrary(Bytes, Sig, Diags);
  }
};

TEST(MalformedPatternBinary, ValidBinaryRoundTrips) {
  BinaryParse P(validBinary());
  ASSERT_NE(P.Lib, nullptr);
  EXPECT_FALSE(P.Diags.hasErrors());
  EXPECT_EQ(P.Lib->PatternDefs.size(), 1u);
  EXPECT_EQ(P.Lib->Rules.size(), 1u);
}

TEST(MalformedPatternBinary, BadMagicRejected) {
  std::string B = validBinary();
  B[0] = 'X';
  BinaryParse P(B);
  EXPECT_EQ(P.Lib, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find("bad magic"),
            std::string::npos);
}

TEST(MalformedPatternBinary, BadVersionRejected) {
  std::string B = validBinary();
  B[4] = 99; // version u32 lives at offset 4
  BinaryParse P(B);
  EXPECT_EQ(P.Lib, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find("unsupported pattern binary"),
            std::string::npos);
}

TEST(MalformedPatternBinary, TrailingBytesRejected) {
  std::string B = validBinary() + "x";
  BinaryParse P(B);
  EXPECT_EQ(P.Lib, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find("trailing bytes"),
            std::string::npos);
}

TEST(MalformedPatternBinary, EveryPrefixTruncationFailsCleanly) {
  const std::string Valid = validBinary();
  for (size_t Len = 0; Len != Valid.size(); ++Len) {
    SCOPED_TRACE(Len);
    BinaryParse P(std::string_view(Valid).substr(0, Len));
    EXPECT_EQ(P.Lib, nullptr);
    EXPECT_TRUE(P.Diags.hasErrors());
  }
}

TEST(MalformedPatternBinary, SingleByteCorruptionNeverCrashes) {
  const std::string Valid = validBinary();
  for (size_t I = 0; I != Valid.size(); ++I) {
    SCOPED_TRACE(I);
    std::string B = Valid;
    B[I] = static_cast<char>(~B[I]);
    // Any outcome is acceptable except a crash or an unbounded
    // allocation; a nullptr result must come with a diagnostic.
    BinaryParse P(B);
    if (!P.Lib) {
      EXPECT_TRUE(P.Diags.hasErrors());
    }
  }
}

TEST(MalformedPatternBinary, DepthBombFailsWithDiagnostic) {
  // Hand-crafted: header, one-entry string table, empty signature, one
  // pattern whose tree is thousands of nested Alt tags. Each Alt byte
  // recurses once, so without a ceiling this overflows the stack.
  std::string B = "PYPM";
  appendU32(B, 1); // version
  appendU32(B, 1); // one string
  appendU32(B, 1);
  B += "P";
  appendU32(B, 0); // no ops
  appendU32(B, 1); // one pattern
  appendU32(B, 0); // name = string 0
  appendU32(B, 0); // no params
  appendU32(B, 0); // no fun params
  B.append(100000, '\x04'); // PTag::Alt, nested 100k deep
  BinaryParse P(B);
  EXPECT_EQ(P.Lib, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find("nesting deeper"),
            std::string::npos);
}

TEST(MalformedPatternBinary, BareRecCallRejectedAsIllFormed) {
  // Byte-wise plausible but structurally invalid: a recursive call with
  // no enclosing mu binder. Must be rejected by the reader's
  // well-formedness pass, not asserted on later by the match machine.
  term::Signature Sig;
  pattern::Library Lib;
  pattern::NamedPattern NP;
  NP.Name = Symbol::intern("P");
  NP.Params = {Symbol::intern("x")};
  NP.Pat = Lib.Arena.recCall(Symbol::intern("P"), {Symbol::intern("x")});
  Lib.PatternDefs.push_back(std::move(NP));
  std::string B = pattern::serializeLibrary(Lib, Sig);

  BinaryParse P(B);
  EXPECT_EQ(P.Lib, nullptr);
  EXPECT_TRUE(P.Diags.hasErrors());
}

TEST(MalformedPatternBinary, ImplausibleStringTableRejected) {
  std::string B = "PYPM";
  appendU32(B, 1);
  appendU32(B, 0xFFFFFFFFu); // string count far beyond the buffer
  BinaryParse P(B);
  EXPECT_EQ(P.Lib, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find("implausible string table"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Match plan binary (.pypmplan)
//===----------------------------------------------------------------------===//

/// A small valid match plan, produced by the real writer over the same
/// library as validBinary().
std::string validPlan() {
  term::Signature Sig;
  auto Lib = dsl::compileOrDie("op Relu(1);\n"
                               "pattern RR(x) { return Relu(Relu(x)); }\n"
                               "rule rr for RR(x) { return Relu(x); }\n",
                               Sig);
  DiagnosticEngine Diags;
  std::string Bytes = plan::serializePlan(*Lib, Sig, /*RulesOnly=*/true, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.renderAll();
  return Bytes;
}

struct PlanParse {
  std::unique_ptr<plan::LoadedPlan> Plan;
  DiagnosticEngine Diags;
  term::Signature Sig;

  explicit PlanParse(std::string_view Bytes) {
    Plan = plan::deserializePlan(Bytes, Sig, Diags);
  }
};

TEST(MalformedPlanBinary, ValidPlanRoundTrips) {
  PlanParse P(validPlan());
  ASSERT_NE(P.Plan, nullptr);
  EXPECT_FALSE(P.Diags.hasErrors());
  EXPECT_EQ(P.Plan->Prog.Entries.size(), 1u);
  EXPECT_EQ(P.Plan->Rules.entries().size(), 1u);
  EXPECT_NE(P.Plan->Lib, nullptr);
}

TEST(MalformedPlanBinary, BadMagicRejected) {
  std::string B = validPlan();
  B[0] = 'X';
  PlanParse P(B);
  EXPECT_EQ(P.Plan, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find("bad magic"), std::string::npos);
}

TEST(MalformedPlanBinary, BadVersionRejected) {
  std::string B = validPlan();
  B[4] = 99; // version u32 lives at offset 4
  PlanParse P(B);
  EXPECT_EQ(P.Plan, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find("unsupported match plan"),
            std::string::npos);
}

TEST(MalformedPlanBinary, TrailingBytesRejected) {
  std::string B = validPlan() + "x";
  PlanParse P(B);
  EXPECT_EQ(P.Plan, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find("trailing bytes"),
            std::string::npos);
}

TEST(MalformedPlanBinary, EveryPrefixTruncationFailsCleanly) {
  const std::string Valid = validPlan();
  for (size_t Len = 0; Len != Valid.size(); ++Len) {
    SCOPED_TRACE(Len);
    PlanParse P(std::string_view(Valid).substr(0, Len));
    EXPECT_EQ(P.Plan, nullptr);
    EXPECT_TRUE(P.Diags.hasErrors());
  }
}

TEST(MalformedPlanBinary, SingleByteCorruptionNeverCrashes) {
  const std::string Valid = validPlan();
  for (size_t I = 0; I != Valid.size(); ++I) {
    SCOPED_TRACE(I);
    std::string B = Valid;
    B[I] = static_cast<char>(~B[I]);
    // Any outcome is acceptable except a crash: either the reader rejects
    // the artifact with a diagnostic, or the recompile-and-compare gate
    // replaces the tampered streams with a trusted fresh compile.
    PlanParse P(B);
    if (!P.Plan) {
      EXPECT_TRUE(P.Diags.hasErrors());
    }
  }
}

TEST(MalformedPlanBinary, ImplausibleEntryCountRejected) {
  // Header and embedded library are honest; the entry count then claims
  // far more entries than the buffer could hold.
  std::string Lib = validBinary();
  std::string B = "PYPL";
  appendU32(B, 3); // plan version
  appendU32(B, static_cast<uint32_t>(Lib.size()));
  B += Lib;
  appendU32(B, 0xFFFFFFFFu);
  PlanParse P(B);
  EXPECT_EQ(P.Plan, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find("implausible entry count"),
            std::string::npos);
}

TEST(MalformedPlanBinary, TruncatedEmbeddedLibraryRejected) {
  std::string Lib = validBinary();
  std::string B = "PYPL";
  appendU32(B, 3);
  appendU32(B, static_cast<uint32_t>(Lib.size() + 64)); // longer than payload
  B += Lib;
  PlanParse P(B);
  EXPECT_EQ(P.Plan, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find("truncated embedded"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Confluence certificates (standalone codec + the .pypmplan v3 section)
//===----------------------------------------------------------------------===//

/// A certificate with every section populated: a conflicting pair (so
/// Findings and UnresolvedPairs are non-empty) next to a certified rule.
analysis::critical::ConfluenceReport sampleReport() {
  term::Signature Sig;
  auto Lib = dsl::compileOrDie(
      "op MatMul(2);\n"
      "op Trans(1);\n"
      "pattern TT(x) { return Trans(Trans(x)); }\n"
      "rule tt for TT(x) { return x; }\n"
      "pattern MMTT(x, y) { return MatMul(Trans(x), Trans(y)); }\n"
      "rule hoist for MMTT(x, y) { return Trans(MatMul(y, x)); }\n",
      Sig);
  return analysis::critical::analyzeConfluence(*Lib, Sig);
}

std::string validCert() {
  return analysis::critical::serializeConfluence(sampleReport());
}

TEST(MalformedConfluence, ValidCertificateRoundTrips) {
  analysis::critical::ConfluenceReport R = sampleReport();
  std::string Err;
  auto R2 = analysis::critical::deserializeConfluence(
      analysis::critical::serializeConfluence(R), &Err);
  ASSERT_NE(R2, nullptr) << Err;
  EXPECT_EQ(R2->Overall, R.Overall);
  EXPECT_EQ(R2->Findings.size(), R.Findings.size());
  EXPECT_EQ(R2->CertifiedRules, R.CertifiedRules);
}

TEST(MalformedConfluence, BadMagicRejected) {
  std::string B = validCert();
  B[0] = 'X';
  std::string Err;
  EXPECT_EQ(analysis::critical::deserializeConfluence(B, &Err), nullptr);
  EXPECT_NE(Err.find("magic"), std::string::npos);
}

TEST(MalformedConfluence, TrailingBytesRejected) {
  std::string B = validCert() + "x";
  std::string Err;
  EXPECT_EQ(analysis::critical::deserializeConfluence(B, &Err), nullptr);
  EXPECT_NE(Err.find("trailing"), std::string::npos);
}

TEST(MalformedConfluence, EveryPrefixTruncationFailsCleanly) {
  const std::string Valid = validCert();
  for (size_t Len = 0; Len != Valid.size(); ++Len) {
    SCOPED_TRACE(Len);
    std::string Err;
    EXPECT_EQ(analysis::critical::deserializeConfluence(
                  std::string_view(Valid).substr(0, Len), &Err),
              nullptr);
    EXPECT_FALSE(Err.empty());
  }
}

TEST(MalformedConfluence, SingleByteCorruptionNeverCrashes) {
  const std::string Valid = validCert();
  for (size_t I = 0; I != Valid.size(); ++I) {
    SCOPED_TRACE(I);
    std::string B = Valid;
    B[I] = static_cast<char>(~B[I]);
    std::string Err;
    auto R = analysis::critical::deserializeConfluence(B, &Err);
    // Either a clean rejection or a still-plausible certificate whose
    // enum fields survived the range gates; never a crash.
    if (!R) {
      EXPECT_FALSE(Err.empty());
    } else {
      EXPECT_LE(static_cast<unsigned>(R->Overall), 2u);
      for (const analysis::Finding &F : R->Findings)
        EXPECT_LE(static_cast<unsigned>(F.Sev), 2u);
    }
  }
}

TEST(MalformedConfluence, ImplausibleCountsRejected) {
  // Honest header (magic + version + verdict), then a rule count far
  // beyond what the buffer could hold.
  std::string B = "PMCF";
  appendU32(B, 1); // codec version
  B.push_back(0);  // verdict: certified
  appendU32(B, 1); // pairs examined
  appendU32(B, 1); // joinable
  appendU32(B, 0); // conflicting
  appendU32(B, 0); // unknown
  for (int I = 0; I != 8; ++I)
    B.push_back(0); // u64 micros
  appendU32(B, 0xFFFFFFFFu); // certified-rule count
  std::string Err;
  EXPECT_EQ(analysis::critical::deserializeConfluence(B, &Err), nullptr);
  EXPECT_NE(Err.find("implausible"), std::string::npos) << Err;
}

/// A .pypmplan with an embedded confluence certificate, produced by the
/// real writer — the v3 section under attack below.
std::string validPlanWithConfluence() {
  term::Signature Sig;
  auto Lib = dsl::compileOrDie("op Relu(1);\n"
                               "pattern RR(x) { return Relu(Relu(x)); }\n"
                               "rule rr for RR(x) { return Relu(x); }\n",
                               Sig);
  analysis::critical::ConfluenceReport CR =
      analysis::critical::analyzeConfluence(*Lib, Sig);
  DiagnosticEngine Diags;
  std::string Bytes = plan::serializePlan(*Lib, Sig, /*RulesOnly=*/true,
                                          Diags, nullptr, &CR);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.renderAll();
  return Bytes;
}

TEST(MalformedPlanConfluence, EmbeddedCertificateSurvivesTheRoundTrip) {
  PlanParse P(validPlanWithConfluence());
  ASSERT_NE(P.Plan, nullptr) << P.Diags.renderAll();
  ASSERT_NE(P.Plan->Confluence, nullptr);
  EXPECT_EQ(P.Plan->Confluence->Overall,
            analysis::critical::Verdict::Certified);
  EXPECT_TRUE(P.Plan->Confluence->CertifiedRules.count("rr"));
}

TEST(MalformedPlanConfluence, AbsentSectionLoadsAsNull) {
  PlanParse P(validPlan());
  ASSERT_NE(P.Plan, nullptr);
  EXPECT_EQ(P.Plan->Confluence, nullptr);
}

TEST(MalformedPlanConfluence, BadPresenceFlagRejected) {
  // The confluence section is the artifact's last; a cert-free plan ends
  // with its presence flag, which must be exactly 0 or 1.
  std::string B = validPlan();
  ASSERT_EQ(B.back(), '\0');
  B.back() = 2;
  PlanParse P(B);
  EXPECT_EQ(P.Plan, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find("confluence"),
            std::string::npos);
}

TEST(MalformedPlanConfluence, PresenceWithoutPayloadRejected) {
  std::string B = validPlan();
  ASSERT_EQ(B.back(), '\0');
  B.back() = 1; // claims a certificate follows, but the buffer ends here
  PlanParse P(B);
  EXPECT_EQ(P.Plan, nullptr);
  EXPECT_TRUE(P.Diags.hasErrors());
}

TEST(MalformedPlanConfluence, EveryPrefixTruncationFailsCleanly) {
  const std::string Valid = validPlanWithConfluence();
  for (size_t Len = 0; Len != Valid.size(); ++Len) {
    SCOPED_TRACE(Len);
    PlanParse P(std::string_view(Valid).substr(0, Len));
    EXPECT_EQ(P.Plan, nullptr);
    EXPECT_TRUE(P.Diags.hasErrors());
  }
}

TEST(MalformedPlanConfluence, SingleByteCorruptionNeverCrashes) {
  const std::string Valid = validPlanWithConfluence();
  for (size_t I = 0; I != Valid.size(); ++I) {
    SCOPED_TRACE(I);
    std::string B = Valid;
    B[I] = static_cast<char>(~B[I]);
    PlanParse P(B);
    if (!P.Plan) {
      EXPECT_TRUE(P.Diags.hasErrors());
    }
  }
}

//===----------------------------------------------------------------------===//
// Match profile binary (.pypmprof)
//===----------------------------------------------------------------------===//

/// A profile bound to the plan compiled from \p Source, with
/// deterministic non-trivial counters. Returned alongside its plan so
/// tests can cross-check signatures.
plan::Profile profileFor(const char *Source, term::Signature &Sig) {
  auto Lib = dsl::compileOrDie(Source, Sig);
  rewrite::RuleSet Rules;
  Rules.addLibrary(*Lib);
  plan::Program P = plan::PlanBuilder::compile(Rules, Sig);
  plan::Profile Prof;
  EXPECT_TRUE(Prof.bindTo(P));
  for (size_t I = 0; I != Prof.GroupVisits.size(); ++I)
    Prof.GroupVisits[I] = 10 + I;
  for (size_t I = 0; I != Prof.EdgeHits.size(); ++I)
    Prof.EdgeHits[I] = 3 + I;
  for (size_t I = 0; I != Prof.EntryAttempts.size(); ++I) {
    Prof.EntryAttempts[I] = 7 + I;
    Prof.EntryMatches[I] = 2 + I;
  }
  Prof.Traversals = 42;
  return Prof;
}

constexpr const char *kProfileSource =
    "op Relu(1);\n"
    "pattern RR(x) { return Relu(Relu(x)); }\n"
    "rule rr for RR(x) { return Relu(x); }\n";

std::string validProfile() {
  term::Signature Sig;
  return plan::serializeProfile(profileFor(kProfileSource, Sig));
}

struct ProfileParse {
  std::unique_ptr<plan::Profile> Prof;
  DiagnosticEngine Diags;

  explicit ProfileParse(std::string_view Bytes) {
    Prof = plan::deserializeProfile(Bytes, Diags);
  }
};

TEST(MalformedProfileBinary, ValidProfileRoundTrips) {
  term::Signature Sig;
  plan::Profile Orig = profileFor(kProfileSource, Sig);
  ProfileParse P(plan::serializeProfile(Orig));
  ASSERT_NE(P.Prof, nullptr);
  EXPECT_FALSE(P.Diags.hasErrors());
  EXPECT_EQ(*P.Prof, Orig);
}

TEST(MalformedProfileBinary, BadMagicRejected) {
  std::string B = validProfile();
  B[0] = 'X';
  ProfileParse P(B);
  EXPECT_EQ(P.Prof, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find("bad magic"), std::string::npos);
}

TEST(MalformedProfileBinary, BadVersionRejected) {
  std::string B = validProfile();
  B[4] = 99; // version u32 lives at offset 4
  ProfileParse P(B);
  EXPECT_EQ(P.Prof, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find("unsupported match profile"),
            std::string::npos);
}

TEST(MalformedProfileBinary, TrailingBytesRejected) {
  std::string B = validProfile() + "x";
  ProfileParse P(B);
  EXPECT_EQ(P.Prof, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find("trailing bytes"),
            std::string::npos);
}

TEST(MalformedProfileBinary, ImplausibleCounterCountRejected) {
  std::string B = "PYPF";
  appendU32(B, 1); // profile version
  B.append(16, '\0'); // planSignature + traversals
  appendU32(B, 0xFFFFFFFFu); // entry count far beyond the buffer
  ProfileParse P(B);
  EXPECT_EQ(P.Prof, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find("implausible counter count"),
            std::string::npos);
}

TEST(MalformedProfileBinary, EveryPrefixTruncationFailsCleanly) {
  const std::string Valid = validProfile();
  for (size_t Len = 0; Len != Valid.size(); ++Len) {
    SCOPED_TRACE(Len);
    ProfileParse P(std::string_view(Valid).substr(0, Len));
    EXPECT_EQ(P.Prof, nullptr);
    EXPECT_TRUE(P.Diags.hasErrors());
  }
}

TEST(MalformedProfileBinary, SingleByteCorruptionAlwaysRejected) {
  // Stronger than the .pypmplan corruption test: a profile cannot be
  // re-derived from an embedded library, so the checksum must catch
  // *every* corruption outright. FNV-1a's per-byte multiply is invertible
  // (odd prime mod 2^64), so any single-byte flip changes the checksum —
  // and a flip inside the checksum field no longer matches the payload.
  const std::string Valid = validProfile();
  for (size_t I = 0; I != Valid.size(); ++I) {
    SCOPED_TRACE(I);
    std::string B = Valid;
    B[I] = static_cast<char>(~B[I]);
    ProfileParse P(B);
    EXPECT_EQ(P.Prof, nullptr);
    EXPECT_TRUE(P.Diags.hasErrors());
  }
}

TEST(MalformedProfileBinary, SerializePlanRejectsForeignProfile) {
  // A profile recorded against a different rule set must be rejected when
  // embedding — reject-don't-misbind.
  term::Signature ProfSig;
  plan::Profile Foreign =
      profileFor("op Add(2);\n"
                 "op Mul(2);\n"
                 "pattern AM(x, y, z) { return Add(Mul(x, y), z); }\n"
                 "rule am for AM(x, y, z) { return Add(z, Mul(x, y)); }\n",
                 ProfSig);

  term::Signature Sig;
  auto Lib = dsl::compileOrDie(kProfileSource, Sig);
  DiagnosticEngine Diags;
  std::string Bytes =
      plan::serializePlan(*Lib, Sig, /*RulesOnly=*/true, Diags, &Foreign);
  EXPECT_TRUE(Bytes.empty());
  EXPECT_NE(firstError(Diags).Message.find("profile does not match"),
            std::string::npos);
}

TEST(MalformedProfileBinary, EmbeddedForeignProfileRejectedByLoader) {
  // Hand-splice an internally valid (checksummed) but foreign profile into
  // a valid v2 plan artifact: the loader's bind check must reject it — the
  // checksum alone cannot vouch that a profile belongs to *this* plan.
  term::Signature ProfSig;
  plan::Profile Foreign =
      profileFor("op Add(2);\n"
                 "op Mul(2);\n"
                 "pattern AM(x, y, z) { return Add(Mul(x, y), z); }\n"
                 "rule am for AM(x, y, z) { return Add(z, Mul(x, y)); }\n",
                 ProfSig);
  std::string ProfBytes = plan::serializeProfile(Foreign);

  std::string B = validPlan();
  ASSERT_EQ(B.back(), '\0'); // trailing hasConfluence flag of a plain plan
  B.pop_back();              // peel it; the profile section precedes it
  ASSERT_EQ(B.back(), '\0'); // hasProfile flag
  B.back() = '\x01';
  appendU32(B, static_cast<uint32_t>(ProfBytes.size()));
  B += ProfBytes;
  B.push_back('\0'); // restore the confluence-absent flag
  PlanParse P(B);
  EXPECT_EQ(P.Plan, nullptr);
  EXPECT_NE(firstError(P.Diags).Message.find(
                "embedded profile does not match the plan"),
            std::string::npos);
}

TEST(MalformedProfileBinary, PlanWithProfileRoundTrips) {
  // The positive control for the two rejection tests above: a profile
  // recorded against the same library embeds and round-trips, and the
  // loaded program is profile-ordered.
  term::Signature ProfSig;
  plan::Profile Prof = profileFor(kProfileSource, ProfSig);

  term::Signature Sig;
  auto Lib = dsl::compileOrDie(kProfileSource, Sig);
  DiagnosticEngine Diags;
  std::string Bytes =
      plan::serializePlan(*Lib, Sig, /*RulesOnly=*/true, Diags, &Prof);
  ASSERT_FALSE(Bytes.empty()) << Diags.renderAll();

  PlanParse P(Bytes);
  ASSERT_NE(P.Plan, nullptr) << P.Diags.renderAll();
  ASSERT_NE(P.Plan->Prof, nullptr);
  EXPECT_EQ(*P.Plan->Prof, Prof);
  EXPECT_TRUE(P.Plan->Prog.ProfileApplied);

  // Truncating or corrupting any byte of the embedded profile region must
  // reject the whole artifact (the plan part is still re-derivable, but a
  // wrong profile must never ride along silently).
  for (size_t I = validPlan().size(); I < Bytes.size(); ++I) {
    SCOPED_TRACE(I);
    std::string C = Bytes;
    C[I] = static_cast<char>(~C[I]);
    PlanParse Q(C);
    if (!Q.Plan) {
      EXPECT_TRUE(Q.Diags.hasErrors());
    } else {
      // A flip that survives must have produced a *valid* profile that
      // still binds; paranoia: the program remains a faithful recompile.
      EXPECT_TRUE(Q.Plan->Prog.ProfileApplied);
    }
  }
}

//===----------------------------------------------------------------------===//
// DSL parser
//===----------------------------------------------------------------------===//

struct DslParse {
  std::unique_ptr<pattern::Library> Lib;
  DiagnosticEngine Diags;
  term::Signature Sig;

  explicit DslParse(std::string_view Source) {
    Lib = dsl::compile(Source, Sig, Diags);
  }
};

std::string repeat(const char *S, size_t N) {
  std::string Out;
  Out.reserve(N * std::strlen(S));
  for (size_t I = 0; I != N; ++I)
    Out += S;
  return Out;
}

TEST(MalformedDsl, DeepNestedCallsFailWithDiagnostic) {
  std::string Src = "op Relu(1);\npattern P(x) { return " +
                    repeat("Relu(", 5000) + "x" + repeat(")", 5000) +
                    "; }\n";
  DslParse P(Src);
  EXPECT_EQ(P.Lib, nullptr);
  EXPECT_NE(P.Diags.renderAll().find("nesting deeper"), std::string::npos);
}

TEST(MalformedDsl, DeepNestedGuardParensFailWithDiagnostic) {
  std::string Src = "pattern P(x) { assert " + repeat("(", 5000) +
                    "1 == 1" + repeat(")", 5000) + "; return x; }\n";
  DslParse P(Src);
  EXPECT_EQ(P.Lib, nullptr);
  EXPECT_NE(P.Diags.renderAll().find("nesting deeper"), std::string::npos);
}

TEST(MalformedDsl, DeepBangChainFailsWithDiagnostic) {
  std::string Src = "pattern P(x) { assert " + repeat("!", 5000) +
                    "(1 == 1); return x; }\n";
  DslParse P(Src);
  EXPECT_EQ(P.Lib, nullptr);
  EXPECT_NE(P.Diags.renderAll().find("nesting deeper"), std::string::npos);
}

TEST(MalformedDsl, DeepNestedIfsFailWithDiagnostic) {
  std::string Src = "op Relu(1);\npattern P(x) { return Relu(x); }\n"
                    "rule r for P(x) { " +
                    repeat("if 1 == 1 { ", 2000) + "return x; " +
                    repeat("}", 2000) + "}\n";
  DslParse P(Src);
  EXPECT_EQ(P.Lib, nullptr);
  EXPECT_NE(P.Diags.renderAll().find("nesting deeper"), std::string::npos);
}

TEST(MalformedDsl, ReasonableNestingStillCompiles) {
  std::string Src = "op Relu(1);\npattern P(x) { return " +
                    repeat("Relu(", 100) + "x" + repeat(")", 100) + "; }\n";
  DslParse P(Src);
  ASSERT_NE(P.Lib, nullptr);
  EXPECT_FALSE(P.Diags.hasErrors());
}

TEST(MalformedDsl, GarbageCorpusNeverCrashes) {
  const char *Corpus[] = {
      "pattern",
      "pattern P",
      "pattern P(",
      "pattern P(x) {",
      "rule r for",
      "op Relu",
      "op Relu(x);",
      "include",
      "include \"nonexistent.pypm\";",
      "}{)(",
      "\xff\xfe\x00 pattern P(x) { return x; }",
      "pattern P(x) { return x }", // missing semicolon
      "pattern P(x) { assert ; return x; }",
  };
  for (const char *Src : Corpus) {
    SCOPED_TRACE(Src);
    DslParse P(Src);
    EXPECT_EQ(P.Lib, nullptr);
    EXPECT_TRUE(P.Diags.hasErrors());
  }
}

//===----------------------------------------------------------------------===//
// Ground-term parser
//===----------------------------------------------------------------------===//

TEST(MalformedTermText, DeepNestingFailsWithError) {
  std::string Src = repeat("A(", 100000) + "B" + repeat(")", 100000);
  term::Signature Sig;
  term::TermArena Arena(Sig);
  term::TermParseResult R = term::parseTerm(Src, Sig, Arena);
  auto *E = std::get_if<term::TermParseError>(&R);
  ASSERT_NE(E, nullptr);
  EXPECT_NE(E->Message.find("nesting deeper"), std::string::npos);
}

TEST(MalformedTermText, ReasonableNestingStillParses) {
  std::string Src = repeat("A(", 200) + "B" + repeat(")", 200);
  term::Signature Sig;
  term::TermArena Arena(Sig);
  term::TermParseResult R = term::parseTerm(Src, Sig, Arena);
  EXPECT_TRUE(std::holds_alternative<term::TermRef>(R));
}

TEST(MalformedTermText, GarbageCorpusReturnsErrors) {
  const char *Corpus[] = {
      "", "(", ")", "A(", "A(B", "A(B,", "A[", "A[k", "A[k=", "A[k=v]",
      "A(B))", ",", "A B",
  };
  for (const char *Src : Corpus) {
    SCOPED_TRACE(Src);
    term::Signature Sig;
    term::TermArena Arena(Sig);
    term::TermParseResult R = term::parseTerm(Src, Sig, Arena);
    EXPECT_TRUE(std::holds_alternative<term::TermParseError>(R));
  }
}

//===----------------------------------------------------------------------===//
// Emitted-plan libraries (.so)
//===----------------------------------------------------------------------===//
//
// An emitted plan is the one artifact whose payload is native code, so its
// loader gets the most hostile treatment of all: truncations, bit flips in
// the validation marker, and a whole artifact spliced in from a different
// plan. Every rejection must happen with a machine-readable status —
// truncations and flips before any dlopen (the marker scan runs on raw
// bytes) — and must leave the caller on the interpreter, never in UB.

const char *const kAotRules =
    "op Add(2);\n"
    "op Zero(0);\n"
    "pattern AddZero(x) { return Add(x, Zero()); }\n"
    "rule elim_add_zero for AddZero(x) { return x; }\n";

// Different operators entirely: same-shaped artifact, foreign fingerprints.
const char *const kAotRulesForeign =
    "op Mul(2);\n"
    "op One(0);\n"
    "pattern MulOne(x) { return Mul(x, One()); }\n"
    "rule elim_mul_one for MulOne(x) { return x; }\n";

/// One compiled rule set with its built emitted library and raw bytes.
struct BuiltAot {
  term::Signature Sig;
  std::unique_ptr<pattern::Library> Lib;
  rewrite::RuleSet Rules;
  plan::Program Prog;
  std::string Path;
  std::string Bytes;

  explicit BuiltAot(const char *Src, const char *Name) {
    Lib = dsl::compileOrDie(Src, Sig);
    Rules.addLibrary(*Lib);
    Prog = plan::PlanBuilder::compile(Rules, Sig);
    Path = ::testing::TempDir() + Name;
    std::string Err;
    if (!plan::aot::AotEmitter::buildSharedObject(Prog, Path, Err)) {
      ADD_FAILURE() << Err;
      return;
    }
    std::ifstream In(Path, std::ios::binary);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Bytes = Buf.str();
  }
};

class MalformedAotLibrary : public ::testing::Test {
protected:
  void SetUp() override {
    if (plan::aot::AotEmitter::findCompiler().empty())
      GTEST_SKIP() << "no C++ compiler available; emitted tier not buildable";
  }

  /// Writes \p Bytes as a candidate artifact and runs the full loader
  /// ladder against \p P. Asserts the null-library/status invariant.
  static plan::aot::AotLoadStatus loadBytes(std::string_view Bytes,
                                            const plan::Program &P) {
    std::string Path = ::testing::TempDir() + "hostile_candidate.so";
    {
      std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
      Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    }
    plan::aot::AotLoadStatus St;
    auto L = plan::aot::PlanLibrary::load(Path, P, nullptr, St);
    EXPECT_EQ(L != nullptr, St == plan::aot::AotLoadStatus::Ok);
    return St;
  }
};

TEST_F(MalformedAotLibrary, TruncationsRejectedBeforeAnyDlopen) {
  BuiltAot A(kAotRules, "trunc_a.so");
  ASSERT_FALSE(A.Bytes.empty());
  size_t MarkerOff = A.Bytes.find("PYPM-AOT-MARK-v1:");
  ASSERT_NE(MarkerOff, std::string::npos);
  // Truncations strictly below the marker cannot carry a valid marker, so
  // they must land in the earliest rung (NoMarker) — proof the rejection
  // happened on raw bytes, before dlopen could map a half file.
  const size_t Sizes[] = {0, 1, 64, 512, MarkerOff / 2, MarkerOff};
  for (size_t N : Sizes) {
    SCOPED_TRACE("truncated to " + std::to_string(N) + " bytes");
    if (N > A.Bytes.size())
      continue;
    EXPECT_EQ(loadBytes(std::string_view(A.Bytes).substr(0, N), A.Prog),
              plan::aot::AotLoadStatus::NoMarker);
  }
  // A missing file is its own, distinct status.
  plan::aot::AotLoadStatus St;
  auto L = plan::aot::PlanLibrary::load(
      ::testing::TempDir() + "does_not_exist.so", A.Prog, nullptr, St);
  EXPECT_EQ(L, nullptr);
  EXPECT_EQ(St, plan::aot::AotLoadStatus::Unreadable);
}

TEST_F(MalformedAotLibrary, MarkerBitFlipsAreRejected) {
  BuiltAot A(kAotRules, "flip_a.so");
  ASSERT_FALSE(A.Bytes.empty());
  size_t Off = A.Bytes.find("PYPM-AOT-MARK-v1:");
  ASSERT_NE(Off, std::string::npos);
  size_t End = A.Bytes.find(';', Off);
  ASSERT_NE(End, std::string::npos);
  // Flip every byte of the marker (prefix, both fingerprints, separators)
  // one at a time. A flipped prefix/separator fails the scan (NoMarker); a
  // flipped fingerprint digit parses but cannot equal the plan's
  // fingerprint (MarkerMismatch). Either way: rejected, pre-dlopen.
  for (size_t I = Off; I <= End; ++I) {
    SCOPED_TRACE("marker byte " + std::to_string(I - Off) + " flipped");
    std::string Bad = A.Bytes;
    Bad[I] = static_cast<char>(Bad[I] ^ 0x01);
    plan::aot::AotLoadStatus St = loadBytes(Bad, A.Prog);
    EXPECT_NE(St, plan::aot::AotLoadStatus::Ok);
    EXPECT_TRUE(St == plan::aot::AotLoadStatus::NoMarker ||
                St == plan::aot::AotLoadStatus::MarkerMismatch)
        << aotLoadStatusMessage(St);
  }
  // Control: the unmodified bytes still load.
  EXPECT_EQ(loadBytes(A.Bytes, A.Prog), plan::aot::AotLoadStatus::Ok);
}

TEST_F(MalformedAotLibrary, ForeignPlanSpliceIsStaleNotUB) {
  BuiltAot A(kAotRules, "splice_a.so");
  BuiltAot B(kAotRulesForeign, "splice_b.so");
  ASSERT_FALSE(A.Bytes.empty());
  ASSERT_FALSE(B.Bytes.empty());
  // A structurally perfect artifact for the WRONG plan — the supply-chain
  // shape of the attack (or just a cache key collision after redeploy).
  // The fingerprint comparison rejects it as stale, with the
  // machine-readable aot.stale diagnostic; nothing of B's code ever runs.
  DiagnosticEngine Diags;
  plan::aot::AotLoadStatus St;
  auto L = plan::aot::PlanLibrary::load(B.Path, A.Prog, &Diags, St);
  EXPECT_EQ(L, nullptr);
  EXPECT_EQ(St, plan::aot::AotLoadStatus::MarkerMismatch);
  bool SawStale = false;
  for (const Diagnostic &D : Diags.diagnostics())
    SawStale |= D.Code == "aot.stale";
  EXPECT_TRUE(SawStale) << Diags.renderAll();
  // Control: each artifact is valid for its own plan.
  EXPECT_EQ(loadBytes(A.Bytes, A.Prog), plan::aot::AotLoadStatus::Ok);
  EXPECT_EQ(loadBytes(B.Bytes, B.Prog), plan::aot::AotLoadStatus::Ok);
}

TEST_F(MalformedAotLibrary, RejectionFallsBackToInterpreterGraphIntact) {
  BuiltAot A(kAotRules, "fallback_a.so");
  ASSERT_FALSE(A.Bytes.empty());
  // Corrupt the artifact, then run the engine the way a caller that
  // validated-and-failed would: PlanAot requested, no usable library. The
  // run must complete on the interpreter (aot.fallback warning) with a
  // result byte-identical to the plan matcher's.
  std::string Bad = A.Bytes;
  Bad[A.Bytes.find("PYPM-AOT-MARK-v1:")] ^= 0x01;
  plan::aot::AotLoadStatus St = loadBytes(Bad, A.Prog);
  EXPECT_NE(St, plan::aot::AotLoadStatus::Ok);

  const char *GraphText = "z = Zero() : f32[]\n"
                          "a = Add(z, z) : f32[]\n"
                          "b = Add(a, z) : f32[]\n"
                          "output b\n";
  auto RunWith = [&](rewrite::MatcherKind MK, DiagnosticEngine &D) {
    term::Signature Sig = A.Sig; // private copy, like a server request
    DiagnosticEngine PD;
    auto G = graph::parseGraphText(GraphText, Sig, PD);
    EXPECT_TRUE(G) << PD.renderAll();
    rewrite::RewriteOptions Opts;
    Opts.Matcher = MK;
    Opts.Diags = &D;
    rewrite::rewriteToFixpoint(*G, A.Rules, graph::ShapeInference(), Opts);
    return graph::writeGraphText(*G);
  };
  DiagnosticEngine DPlan, DAot;
  std::string WithPlan = RunWith(rewrite::MatcherKind::Plan, DPlan);
  std::string WithAot = RunWith(rewrite::MatcherKind::PlanAot, DAot);
  EXPECT_EQ(WithPlan, WithAot);
  bool SawFallback = false;
  for (const Diagnostic &D : DAot.diagnostics())
    SawFallback |= D.Code == "aot.fallback";
  EXPECT_TRUE(SawFallback) << DAot.renderAll();
}

} // namespace
