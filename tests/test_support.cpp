//===- tests/test_support.cpp - Symbols, diagnostics, RNG ---------------------===//

#include "support/Diagnostics.h"
#include "support/Random.h"
#include "support/Symbol.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

using namespace pypm;

TEST(Symbol, InterningIsIdempotent) {
  Symbol A = Symbol::intern("MatMul");
  Symbol B = Symbol::intern("MatMul");
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.rawId(), B.rawId());
}

TEST(Symbol, DistinctSpellingsDistinctSymbols) {
  EXPECT_NE(Symbol::intern("x"), Symbol::intern("y"));
  EXPECT_NE(Symbol::intern("x"), Symbol::intern("X"));
}

TEST(Symbol, StrRoundTrips) {
  EXPECT_EQ(Symbol::intern("shape.rank").str(), "shape.rank");
  EXPECT_EQ(Symbol::intern("").str(), "");
}

TEST(Symbol, DefaultIsInvalid) {
  Symbol S;
  EXPECT_FALSE(S.isValid());
  EXPECT_EQ(S.str(), "<invalid>");
  EXPECT_NE(S, Symbol::intern("anything"));
}

TEST(Symbol, EmptyStringIsValidSymbol) {
  // The empty spelling interns to a valid (non-sentinel) symbol.
  EXPECT_TRUE(Symbol::intern("").isValid());
}

TEST(Symbol, FreshNeverCollides) {
  Symbol Base = Symbol::intern("y");
  std::set<uint32_t> Seen{Base.rawId()};
  for (int I = 0; I != 100; ++I) {
    Symbol F = Symbol::fresh("y");
    EXPECT_TRUE(Seen.insert(F.rawId()).second)
        << "fresh symbol collided: " << F.str();
  }
}

TEST(Symbol, FreshAvoidsPreInternedSpellings) {
  // Intern a spelling fresh() might generate; fresh must skip it.
  Symbol F1 = Symbol::fresh("z");
  std::string Taken(F1.str());
  Symbol F2 = Symbol::fresh("z");
  EXPECT_NE(F1, F2);
}

TEST(Symbol, FromRawReconstructs) {
  Symbol A = Symbol::intern("roundtrip");
  EXPECT_EQ(Symbol::fromRaw(A.rawId()), A);
}

TEST(Symbol, OrderingIsStable) {
  Symbol A = Symbol::intern("a1");
  Symbol B = Symbol::intern("b1");
  EXPECT_TRUE(A < B || B < A);
  EXPECT_FALSE(A < A);
}

TEST(Diagnostics, CountsErrorsOnly) {
  DiagnosticEngine D;
  D.note(SourceLoc(), "n");
  D.warning(SourceLoc(), "w");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc{3, 7}, "boom");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.diagnostics().size(), 3u);
}

TEST(Diagnostics, RenderIncludesLocation) {
  DiagnosticEngine D;
  D.error(SourceLoc{12, 5}, "unexpected token");
  EXPECT_EQ(D.diagnostics()[0].render(), "12:5: error: unexpected token");
}

TEST(Diagnostics, RenderWithoutLocation) {
  Diagnostic Diag{Severity::Warning, SourceLoc(), /*Code=*/{}, "heads up"};
  EXPECT_EQ(Diag.render(), "warning: heads up");
}

TEST(Diagnostics, RenderWithCode) {
  Diagnostic Diag{Severity::Warning, SourceLoc{4, 2}, "analysis.vacuous-guard",
                  "guard is always true"};
  EXPECT_EQ(Diag.render(),
            "4:2: warning[analysis.vacuous-guard]: guard is always true");
}

TEST(Diagnostics, RenderAllOnePerLine) {
  DiagnosticEngine D;
  D.error(SourceLoc{1, 1}, "a");
  D.error(SourceLoc{2, 2}, "b");
  std::string All = D.renderAll();
  EXPECT_NE(All.find("1:1: error: a\n"), std::string::npos);
  EXPECT_NE(All.find("2:2: error: b\n"), std::string::npos);
}

TEST(Rng, DeterministicForSeed) {
  Rng A(42), B(42);
  for (int I = 0; I != 1000; ++I)
    ASSERT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  bool Differs = false;
  for (int I = 0; I != 16 && !Differs; ++I)
    Differs = A.next() != B.next();
  EXPECT_TRUE(Differs);
}

TEST(Rng, BelowRespectsBound) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I)
    ASSERT_LT(R.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.range(-3, 3);
    ASSERT_GE(V, -3);
    ASSERT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng R(11);
  for (int I = 0; I != 1000; ++I) {
    double U = R.unit();
    ASSERT_GE(U, 0.0);
    ASSERT_LT(U, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng R(13);
  for (int I = 0; I != 100; ++I) {
    EXPECT_FALSE(R.chance(0, 10));
    EXPECT_TRUE(R.chance(10, 10));
  }
}
