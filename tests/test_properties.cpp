//===- tests/test_properties.cpp - Cross-module property tests -----------------===//
///
/// Randomized invariants that cut across modules:
///  - pattern binaries round-trip arbitrary core patterns without changing
///    matching behavior;
///  - one μ-unfold step preserves the match relation (the executable
///    content of P-Mu / ST-Match-Mu);
///  - the graph↔term adapter is a faithful bijection on random DAGs.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "graph/GraphIO.h"
#include "graph/ShapeInference.h"
#include "graph/TermView.h"
#include "models/Transformers.h"
#include "dsl/Sema.h"
#include "pattern/Serializer.h"
#include "rewrite/RewriteEngine.h"
#include "support/Random.h"

#include <functional>

using namespace pypm;
using namespace pypm::match;
using namespace pypm::pattern;

namespace {

/// Compact generator over the full pattern grammar (no μ for the
/// serializer test's name-sensitive comparisons; μ covered separately).
struct MiniGen {
  Rng R;
  term::Signature &Sig;
  term::TermArena &Arena;
  PatternArena &PA;
  term::OpId C0, C1, U0, B0;
  uint64_t Fresh = 0;

  MiniGen(uint64_t Seed, term::Signature &Sig, term::TermArena &Arena,
          PatternArena &PA)
      : R(Seed), Sig(Sig), Arena(Arena), PA(PA) {
    C0 = Sig.getOrAddOp("c0", 0);
    C1 = Sig.getOrAddOp("c1", 0);
    U0 = Sig.getOrAddOp("u0", 1, 1, "unary_pointwise");
    B0 = Sig.getOrAddOp("b0", 2);
  }

  term::TermRef term(unsigned Depth) {
    if (Depth == 0 || R.chance(1, 3))
      return Arena.leaf(R.chance(1, 2) ? C0 : C1);
    if (R.chance(1, 2))
      return Arena.make(U0, {term(Depth - 1)});
    return Arena.make(B0, {term(Depth - 1), term(Depth - 1)});
  }

  Symbol var() {
    static const char *Pool[3] = {"x", "y", "z"};
    return Symbol::intern(Pool[R.below(3)]);
  }

  const GuardExpr *guard() {
    static const Symbol Attrs[2] = {Symbol::intern("size"),
                                    Symbol::intern("depth")};
    return PA.binary(R.chance(1, 2) ? GuardKind::Le : GuardKind::Eq,
                     PA.attr(var(), Attrs[R.below(2)]),
                     PA.intLit(R.range(0, 4)));
  }

  const Pattern *pattern(unsigned Depth) {
    if (Depth == 0)
      return PA.var(var());
    switch (R.below(8)) {
    case 0:
      return PA.var(var());
    case 1:
      return PA.app(U0, {pattern(Depth - 1)});
    case 2:
      return PA.app(B0, {pattern(Depth - 1), pattern(Depth - 1)});
    case 3:
      return PA.alt(pattern(Depth - 1), pattern(Depth - 1));
    case 4:
      return PA.guarded(pattern(Depth - 1), guard());
    case 5: {
      Symbol V = Symbol::intern("e" + std::to_string(Fresh++));
      return PA.exists(V, PA.app(U0, {PA.var(V)}));
    }
    case 6: {
      Symbol V = var();
      return PA.matchConstraint(PA.var(V), pattern(Depth - 1), V);
    }
    case 7: {
      Symbol F = Symbol::intern("F" + std::to_string(Fresh++));
      return PA.existsFun(F, PA.funVarApp(F, {pattern(Depth - 1)}));
    }
    }
    return PA.var(var());
  }
};

class PropertyTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(PropertyTest, SerializerRoundTripsRandomPatterns) {
  term::Signature Sig;
  term::TermArena Arena(Sig);
  auto Lib = std::make_unique<Library>();
  MiniGen Gen(GetParam() * 2654435761u + 17, Sig, Arena, Lib->Arena);

  // One library with many random patterns.
  for (int I = 0; I != 20; ++I) {
    NamedPattern NP;
    NP.Name = Symbol::intern("R" + std::to_string(I));
    NP.Params = {Symbol::intern("x"), Symbol::intern("y"),
                 Symbol::intern("z")};
    NP.Pat = Gen.pattern(3);
    Lib->PatternDefs.push_back(std::move(NP));
  }

  std::string Bytes = serializeLibrary(*Lib, Sig);
  term::Signature Sig2;
  DiagnosticEngine Diags;
  auto Loaded = deserializeLibrary(Bytes, Sig2, Diags);
  ASSERT_TRUE(Loaded != nullptr) << Diags.renderAll();

  // Printed forms identical…
  for (size_t I = 0; I != Lib->PatternDefs.size(); ++I)
    ASSERT_EQ(Lib->PatternDefs[I].Pat->toString(Sig),
              Loaded->PatternDefs[I].Pat->toString(Sig2));

  // …and matching behavior identical on random terms.
  term::TermArena Arena2(Sig2);
  MiniGen Gen2(GetParam() * 2654435761u + 17, Sig2, Arena2,
               Loaded->Arena); // same op ids in Sig2 by construction order
  for (int I = 0; I != 60; ++I) {
    term::TermRef T1 = Gen.term(4);
    term::TermRef T2 =
        term::parseTermOrDie(Arena.toString(T1), Sig2, Arena2);
    const NamedPattern &P1 = Lib->PatternDefs[I % Lib->PatternDefs.size()];
    const NamedPattern &P2 =
        Loaded->PatternDefs[I % Loaded->PatternDefs.size()];
    MatchResult R1 = matchPattern(P1.Pat, T1, Arena);
    MatchResult R2 = matchPattern(P2.Pat, T2, Arena2);
    ASSERT_EQ(R1.Status, R2.Status) << P1.Pat->toString(Sig) << " vs "
                                    << Arena.toString(T1);
    if (R1.matched()) {
      ASSERT_EQ(toString(R1.W, Sig), toString(R2.W, Sig2));
    }
  }
}

TEST_P(PropertyTest, MuUnfoldStepPreservesMatching) {
  // P-Mu / ST-Match-Mu: match(μP.p, t) ≡ match(p[μP/P][ȳ/x̄], t), for
  // randomly generated structurally-decreasing recursions.
  term::Signature Sig;
  term::TermArena Arena(Sig);
  PatternArena PA;
  MiniGen Gen(GetParam() * 40503 + 1, Sig, Arena, PA);

  for (int Iter = 0; Iter != 120; ++Iter) {
    Symbol Self = Symbol::intern("P" + std::to_string(Iter));
    Symbol Param = Symbol::intern("r" + std::to_string(Iter));
    const Pattern *Step = PA.app(Gen.U0, {PA.recCall(Self, {Param})});
    const Pattern *Base = Gen.pattern(2);
    const auto *Mu = cast<MuPattern>(
        PA.mu(Self, {Param}, {Gen.var()}, PA.alt(Step, Base)));
    const Pattern *Unfolded = PA.unfoldMu(Mu);

    term::TermRef T = Gen.term(4);
    MatchResult RMu = matchPattern(Mu, T, Arena);
    MatchResult RUn = matchPattern(Unfolded, T, Arena);
    ASSERT_EQ(RMu.Status, RUn.Status)
        << Mu->toString(Sig) << " against " << Arena.toString(T);
    if (RMu.matched()) {
      // User-visible bindings agree (fresh binder names may differ).
      auto Visible = [](const Witness &W) {
        Witness Out;
        for (const auto &[K, V] : W.Theta)
          if (K.str().find('$') == std::string_view::npos)
            Out.Theta.bind(K, V);
        return Out;
      };
      ASSERT_EQ(Visible(RMu.W), Visible(RUn.W));
    }
  }
}

TEST_P(PropertyTest, TermViewIsFaithfulOnRandomGraphs) {
  term::Signature Sig;
  models::declareModelOps(Sig);
  graph::Graph G(Sig);
  Rng R(GetParam() * 7 + 5);

  term::OpId Relu = Sig.lookup("Relu");
  term::OpId Add = Sig.lookup("Add");
  std::vector<graph::NodeId> Nodes;
  for (int I = 0; I != 4; ++I)
    Nodes.push_back(G.addLeaf(
        "Input", graph::TensorType::make(term::DType::F32, {4, 4})));
  for (int I = 0; I != 40; ++I) {
    if (R.chance(1, 2))
      Nodes.push_back(
          G.addNode(Relu, {Nodes[R.below(Nodes.size())]}));
    else
      Nodes.push_back(G.addNode(Add, {Nodes[R.below(Nodes.size())],
                                      Nodes[R.below(Nodes.size())]}));
  }
  G.addOutput(Nodes.back());
  graph::ShapeInference SI;
  SI.inferAll(G);

  term::TermArena Arena(Sig);
  graph::TermView View(G, Arena);
  for (graph::NodeId N : G.topoOrder()) {
    term::TermRef T = View.termFor(N);
    // The representative node's unrolling is the same term…
    graph::NodeId Rep = View.nodeFor(T);
    ASSERT_NE(Rep, graph::InvalidNode);
    ASSERT_EQ(View.termFor(Rep), T);
    // …and term tree size is consistent with the unrolled subgraph.
    ASSERT_GE(T->size(), 1u);
    // Children align with graph inputs.
    ASSERT_EQ(T->arity(), G.inputs(N).size());
    for (unsigned I = 0; I != T->arity(); ++I)
      ASSERT_EQ(T->child(I), View.termFor(G.inputs(N)[I]));
  }
}

TEST_P(PropertyTest, DslFrontendNeverCrashesOnGarbage) {
  // Robustness fuzz: random character soup and random token soup must
  // produce diagnostics, never crashes, hangs, or asserts.
  Rng R(GetParam() * 31337 + 11);
  const char *Fragments[] = {
      "pattern", "rule",   "op",    "for",  "assert", "return", "var",
      "opvar",   "include", "if",   "elif", "else",   "P",      "x",
      "f",       "MatMul", "(",     ")",    "{",      "}",      "[",
      "]",       ",",      ";",     "=",    "<=",     "==",     "&&",
      "||",      "!",      ".",     "+",    "-",      "*",      "/",
      "%",       "0.5",    "42",    "\"s\"", "opclass", "f32", "shape",
  };
  for (int Iter = 0; Iter != 120; ++Iter) {
    std::string Source;
    int Len = static_cast<int>(R.range(1, 60));
    for (int I = 0; I != Len; ++I) {
      Source += Fragments[R.below(sizeof(Fragments) / sizeof(char *))];
      Source += ' ';
    }
    term::Signature Sig;
    DiagnosticEngine Diags;
    auto Lib = dsl::compile(Source, Sig, Diags);
    // Either it compiled, or it produced at least one diagnostic.
    EXPECT_TRUE(Lib != nullptr || Diags.hasErrors()) << Source;
  }
  // Raw byte soup too.
  for (int Iter = 0; Iter != 120; ++Iter) {
    std::string Source;
    int Len = static_cast<int>(R.range(0, 200));
    for (int I = 0; I != Len; ++I)
      Source += static_cast<char>(R.range(1, 126));
    term::Signature Sig;
    DiagnosticEngine Diags;
    (void)dsl::compile(Source, Sig, Diags);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Range<uint64_t>(0, 8));

//===----------------------------------------------------------------------===//
// Parallel rewrite stress: random graphs × random rule sets must rewrite
// identically under the serial engine and the parallel engine.
//===----------------------------------------------------------------------===//

namespace {

/// Rule templates over the model-op vocabulary, chosen to exercise every
/// commit path: plain collapses, a rule returning a bound variable, a
/// shape-guarded rule, a ping-pong pair that only terminates via the
/// rewrite limit, and a match-only pattern (no rule).
const char *const StressTemplates[] = {
    "pattern RR(x) { return Relu(Relu(x)); }\n"
    "rule rr for RR(x) { return Relu(x); }\n",
    "pattern TT(x) { return Tanh(Tanh(x)); }\n"
    "rule tt for TT(x) { return Tanh(x); }\n",
    "pattern SR(x) { return Sigmoid(Relu(x)); }\n"
    "rule sr for SR(x) { return Gelu(x); }\n",
    "pattern NN(x) { return Neg(Neg(x)); }\n"
    "rule nn for NN(x) { return x; }\n",
    "pattern RS(x) { return Relu(Sigmoid(x)); }\n"
    "rule rs for RS(x) { return Sigmoid(Relu(x)); }\n",
    "pattern SRflip(x) { return Sigmoid(Relu(x)); }\n"
    "rule srflip for SRflip(x) { return Relu(Sigmoid(x)); }\n",
    "pattern AG(x, y) {\n"
    "  assert x.shape.rank == 2;\n"
    "  return Add(Relu(x), Relu(y));\n"
    "}\n"
    "rule ag for AG(x, y) { return Relu(Add(x, y)); }\n",
    "pattern MO(x, y) { return Mul(Tanh(x), y); }\n",
};
constexpr size_t NumStressTemplates =
    sizeof(StressTemplates) / sizeof(StressTemplates[0]);

/// Deterministically derives a DSL source from the seed: each template
/// joins with probability 1/2 (at least one always does).
std::string stressRuleSource(uint64_t Seed) {
  Rng R(Seed * 0x9e3779b9u + 3);
  std::string Src;
  for (size_t I = 0; I != NumStressTemplates; ++I)
    if (R.chance(1, 2))
      Src += StressTemplates[I];
  if (Src.empty())
    Src = StressTemplates[Seed % NumStressTemplates];
  return Src;
}

/// Deterministically builds a random DAG over the ops the templates
/// mention. Uniform {8, 8} f32 shapes keep every guard satisfiable.
void buildStressGraph(uint64_t Seed, graph::Graph &G,
                      const term::Signature &Sig) {
  Rng R(Seed * 0x51ed2701u + 9);
  const char *Unary[] = {"Relu", "Tanh", "Sigmoid", "Neg"};
  const char *Binary[] = {"Add", "Mul"};
  std::vector<graph::NodeId> Nodes;
  int NumInputs = static_cast<int>(R.range(2, 4));
  for (int I = 0; I != NumInputs; ++I)
    Nodes.push_back(G.addLeaf(
        "Input", graph::TensorType::make(term::DType::F32, {8, 8})));
  int NumOps = static_cast<int>(R.range(20, 60));
  for (int I = 0; I != NumOps; ++I) {
    if (R.chance(2, 3)) {
      term::OpId Op = Sig.lookup(Unary[R.below(4)]);
      Nodes.push_back(G.addNode(Op, {Nodes[R.below(Nodes.size())]}));
    } else {
      term::OpId Op = Sig.lookup(Binary[R.below(2)]);
      Nodes.push_back(G.addNode(Op, {Nodes[R.below(Nodes.size())],
                                     Nodes[R.below(Nodes.size())]}));
    }
  }
  // A couple of outputs so sweeping keeps a non-trivial live set.
  G.addOutput(Nodes.back());
  G.addOutput(Nodes[Nodes.size() / 2]);
}

struct StressRun {
  std::string GraphText;
  rewrite::RewriteStats Stats;
};

StressRun runStress(uint64_t Seed, unsigned Threads) {
  term::Signature Sig;
  models::declareModelOps(Sig);
  auto Lib = dsl::compileOrDie(stressRuleSource(Seed), Sig);
  graph::Graph G(Sig);
  buildStressGraph(Seed, G, Sig);
  graph::ShapeInference SI;
  SI.inferAll(G);

  rewrite::RuleSet RS;
  RS.addLibrary(*Lib);
  rewrite::RewriteOptions Opts;
  Opts.NumThreads = Threads;
  // Bound the ping-pong pair; hitting the limit is itself a path both
  // engines must agree on.
  Opts.MaxRewrites = 100;
  StressRun Out;
  Out.Stats = rewrite::rewriteToFixpoint(G, RS, SI, Opts);
  Out.GraphText = graph::writeGraphText(G);
  return Out;
}

class ParallelStressTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(ParallelStressTest, RandomGraphsRewriteIdentically) {
  StressRun Serial = runStress(GetParam(), 0);
  StressRun Parallel = runStress(GetParam(), 4);
  EXPECT_EQ(Serial.GraphText, Parallel.GraphText);
  const rewrite::RewriteStats &S = Serial.Stats;
  const rewrite::RewriteStats &P = Parallel.Stats;
  EXPECT_EQ(S.Passes, P.Passes);
  EXPECT_EQ(S.NodesVisited, P.NodesVisited);
  EXPECT_EQ(S.TotalMatches, P.TotalMatches);
  EXPECT_EQ(S.TotalFired, P.TotalFired);
  EXPECT_EQ(S.NodesSwept, P.NodesSwept);
  EXPECT_EQ(S.Status, P.Status);
  // Every commutative per-pattern counter agrees; only the wall-clock
  // field may differ, so compare with Seconds zeroed out.
  ASSERT_EQ(S.PerPattern.size(), P.PerPattern.size());
  for (const auto &[Name, SP] : S.PerPattern) {
    SCOPED_TRACE(Name);
    auto It = P.PerPattern.find(Name);
    ASSERT_NE(It, P.PerPattern.end());
    rewrite::PatternStats A = SP, B = It->second;
    A.Seconds = B.Seconds = 0.0;
    EXPECT_EQ(A, B);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelStressTest,
                         ::testing::Range<uint64_t>(0, 50));
