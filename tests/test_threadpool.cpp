//===- tests/test_threadpool.cpp - ThreadPool + stats-merge tests ---------===//
///
/// Unit tests for the work-stealing pool backing the parallel rewrite
/// engine, and algebraic tests (associativity, commutativity, identity)
/// for the stats merge operations the engine relies on to make worker
/// counters order-independent.
///
//===----------------------------------------------------------------------===//

#include "match/Machine.h"
#include "rewrite/RewriteEngine.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

using namespace pypm;

namespace {

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.size(), 1u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Count](unsigned) { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  constexpr size_t N = 1000;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&Hits](size_t I, unsigned) { ++Hits[I]; });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, WorkerIndexInRange) {
  ThreadPool Pool(3);
  std::atomic<bool> Bad{false};
  Pool.parallelFor(500, [&](size_t, unsigned Worker) {
    if (Worker >= Pool.size())
      Bad = true;
  });
  EXPECT_FALSE(Bad.load());
}

TEST(ThreadPool, PerWorkerScratchAccumulatesTotal) {
  // The engine's usage pattern: one scratch slot per worker, summed after
  // the join. Worker indices must be stable enough for this to be safe.
  ThreadPool Pool(4);
  constexpr size_t N = 2000;
  std::vector<uint64_t> PerWorker(Pool.size(), 0);
  Pool.parallelFor(N, [&PerWorker](size_t I, unsigned Worker) {
    PerWorker[Worker] += I;
  });
  uint64_t Total = std::accumulate(PerWorker.begin(), PerWorker.end(),
                                   uint64_t{0});
  EXPECT_EQ(Total, uint64_t{N} * (N - 1) / 2);
}

TEST(ThreadPool, PropagatesFirstExceptionAndStaysUsable) {
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  for (int I = 0; I != 20; ++I)
    Pool.submit([&Ran, I](unsigned) {
      ++Ran;
      if (I == 5)
        throw std::runtime_error("task 5 failed");
    });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  // Every task still ran; the failure didn't wedge or drain the pool.
  EXPECT_EQ(Ran.load(), 20);
  // A later round must not re-throw the stale exception.
  std::atomic<int> Count{0};
  Pool.parallelFor(50, [&Count](size_t, unsigned) { ++Count; });
  EXPECT_EQ(Count.load(), 50);
}

TEST(ThreadPool, ParallelForRethrows) {
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(100,
                                [](size_t I, unsigned) {
                                  if (I == 42)
                                    throw std::logic_error("boom");
                                }),
               std::logic_error);
}

TEST(ThreadPool, ParallelForIsolatesFaultsPerIndex) {
  // A throwing Body(I) loses only index I: every other index still runs,
  // even indices later in the same chunk as the throwing one.
  ThreadPool Pool(4);
  constexpr size_t N = 1000;
  std::vector<std::atomic<int>> Hits(N);
  EXPECT_THROW(Pool.parallelFor(N,
                                [&Hits](size_t I, unsigned) {
                                  if (I == 7 || I == 500 || I == 999)
                                    throw std::runtime_error("index fault");
                                  ++Hits[I];
                                }),
               std::runtime_error);
  for (size_t I = 0; I != N; ++I) {
    bool Faulted = I == 7 || I == 500 || I == 999;
    EXPECT_EQ(Hits[I].load(), Faulted ? 0 : 1) << "index " << I;
  }
  // The pool is immediately reusable and does not replay the exception.
  std::atomic<int> Count{0};
  Pool.parallelFor(100, [&Count](size_t, unsigned) { ++Count; });
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPool, ReusableAcrossManyRounds) {
  // The engine reuses one pool across every pass of every rewrite; a
  // round-counter leak or missed wakeup shows up as a hang or a miscount.
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  for (int Round = 0; Round != 50; ++Round)
    Pool.parallelFor(20, [&Count](size_t, unsigned) { ++Count; });
  EXPECT_EQ(Count.load(), 50 * 20);
}

TEST(ThreadPool, EmptyParallelForReturnsImmediately) {
  ThreadPool Pool(2);
  bool Ran = false;
  Pool.parallelFor(0, [&Ran](size_t, unsigned) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST(ThreadPool, HardwareThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

//===----------------------------------------------------------------------===//
// Stats merge algebra
//===----------------------------------------------------------------------===//

rewrite::PatternStats patternStats(uint64_t Seed) {
  rewrite::PatternStats S;
  S.Attempts = Seed * 3 + 1;
  S.RootSkips = Seed * 5 + 2;
  S.Matches = Seed * 7 + 3;
  S.RulesFired = Seed * 11 + 4;
  S.GuardRejects = Seed * 13 + 5;
  S.MachineSteps = Seed * 17 + 6;
  S.Backtracks = Seed * 19 + 7;
  S.FuelExhausted = Seed * 23 + 8;
  S.Seconds = static_cast<double>(Seed) * 0.25;
  return S;
}

match::MachineStats machineStats(uint64_t Seed) {
  match::MachineStats S;
  S.Steps = Seed * 3 + 1;
  S.Backtracks = Seed * 5 + 2;
  S.MuUnfolds = Seed * 7 + 3;
  S.VarBinds = Seed * 11 + 4;
  S.GuardEvals = Seed * 13 + 5;
  S.GuardStuck = Seed * 17 + 6;
  S.MaxStackDepth = (Seed * 19) % 40;
  S.MaxContDepth = (Seed * 23) % 40;
  return S;
}

template <typename Stats>
Stats merged(const Stats &A, const Stats &B) {
  Stats R = A;
  R.merge(B);
  return R;
}

TEST(PatternStatsMerge, IdentityElement) {
  rewrite::PatternStats A = patternStats(9);
  EXPECT_EQ(merged(A, rewrite::PatternStats{}), A);
  EXPECT_EQ(merged(rewrite::PatternStats{}, A), A);
}

TEST(PatternStatsMerge, Commutative) {
  for (uint64_t I = 0; I != 8; ++I)
    for (uint64_t J = 0; J != 8; ++J) {
      rewrite::PatternStats A = patternStats(I), B = patternStats(J);
      EXPECT_EQ(merged(A, B), merged(B, A)) << I << "," << J;
    }
}

TEST(PatternStatsMerge, Associative) {
  for (uint64_t I = 0; I != 5; ++I)
    for (uint64_t J = 0; J != 5; ++J)
      for (uint64_t K = 0; K != 5; ++K) {
        rewrite::PatternStats A = patternStats(I), B = patternStats(J),
                              C = patternStats(K);
        EXPECT_EQ(merged(merged(A, B), C), merged(A, merged(B, C)))
            << I << "," << J << "," << K;
      }
}

TEST(MachineStatsMerge, IdentityElement) {
  match::MachineStats A = machineStats(9);
  EXPECT_EQ(merged(A, match::MachineStats{}), A);
  EXPECT_EQ(merged(match::MachineStats{}, A), A);
}

TEST(MachineStatsMerge, Commutative) {
  for (uint64_t I = 0; I != 8; ++I)
    for (uint64_t J = 0; J != 8; ++J) {
      match::MachineStats A = machineStats(I), B = machineStats(J);
      EXPECT_EQ(merged(A, B), merged(B, A)) << I << "," << J;
    }
}

TEST(MachineStatsMerge, Associative) {
  for (uint64_t I = 0; I != 5; ++I)
    for (uint64_t J = 0; J != 5; ++J)
      for (uint64_t K = 0; K != 5; ++K) {
        match::MachineStats A = machineStats(I), B = machineStats(J),
                            C = machineStats(K);
        EXPECT_EQ(merged(merged(A, B), C), merged(A, merged(B, C)))
            << I << "," << J << "," << K;
      }
}

TEST(MachineStatsMerge, DepthTakesMaxNotSum) {
  match::MachineStats A, B;
  A.MaxStackDepth = 10;
  B.MaxStackDepth = 4;
  A.MaxContDepth = 2;
  B.MaxContDepth = 7;
  A.merge(B);
  EXPECT_EQ(A.MaxStackDepth, 10u);
  EXPECT_EQ(A.MaxContDepth, 7u);
}

} // namespace
