//===- tests/test_derivation.cpp - Match derivation (proof) trees ---------------===//

#include "TestHelpers.h"

#include "match/Derivation.h"

using namespace pypm;
using namespace pypm::match;
using namespace pypm::pattern;
using pypm::testing::CoreFixture;

namespace {

class DerivationTest : public CoreFixture {
protected:
  std::unique_ptr<Derivation> deriveFromMachine(const Pattern *P,
                                                term::TermRef T) {
    MatchResult R = matchP(P, T);
    EXPECT_TRUE(R.matched());
    if (!R.matched())
      return nullptr;
    return deriveMatch(P, T, R.W.Theta, R.W.Phi, Arena);
  }
};

} // namespace

TEST_F(DerivationTest, PVarLeaf) {
  Subst Theta;
  Theta.bind(Symbol::intern("x"), t("C"));
  auto D = deriveMatch(v("x"), t("C"), Theta, FunSubst(), Arena);
  ASSERT_TRUE(D != nullptr);
  EXPECT_EQ(D->Rule, "P-Var");
  EXPECT_EQ(D->size(), 1u);
  EXPECT_TRUE(D->Premises.empty());
}

TEST_F(DerivationTest, NoDerivationForWrongWitness) {
  Subst Theta;
  Theta.bind(Symbol::intern("x"), t("D"));
  EXPECT_EQ(deriveMatch(v("x"), t("C"), Theta, FunSubst(), Arena), nullptr);
  EXPECT_EQ(deriveMatch(v("x"), t("C"), Subst(), FunSubst(), Arena),
            nullptr); // unbound, not ∃-opened
}

TEST_F(DerivationTest, PFunWithPremisesPerChild) {
  const Pattern *P = app("Pair", {v("x"), v("y")});
  auto D = deriveFromMachine(P, t("Pair(C, D)"));
  ASSERT_TRUE(D != nullptr);
  EXPECT_EQ(D->Rule, "P-Fun");
  ASSERT_EQ(D->Premises.size(), 2u);
  EXPECT_EQ(D->Premises[0]->Rule, "P-Var");
  EXPECT_EQ(D->Premises[1]->Rule, "P-Var");
  EXPECT_EQ(D->size(), 3u);
}

TEST_F(DerivationTest, AltRulesNameTheTakenBranch) {
  const Pattern *P = PA.alt(app("Trans", {v("x")}), v("y"));
  auto DLeft = deriveFromMachine(P, t("Trans(B)"));
  ASSERT_TRUE(DLeft != nullptr);
  EXPECT_EQ(DLeft->Rule, "P-Alt-1");
  auto DRight = deriveFromMachine(P, t("C"));
  ASSERT_TRUE(DRight != nullptr);
  EXPECT_EQ(DRight->Rule, "P-Alt-2");
}

TEST_F(DerivationTest, GuardNoteShowsTheCheckedGuard) {
  const GuardExpr *G = PA.binary(
      GuardKind::Eq, PA.attr(Symbol::intern("x"), Symbol::intern("rank")),
      PA.intLit(2));
  auto D = deriveFromMachine(PA.guarded(v("x"), G), t("A[rank=2]"));
  ASSERT_TRUE(D != nullptr);
  EXPECT_EQ(D->Rule, "P-Guard");
  EXPECT_NE(D->Note.find("x.rank == 2"), std::string::npos);
}

TEST_F(DerivationTest, ExistsNotesTheInventedWitness) {
  Symbol Y = Symbol::intern("y");
  const Pattern *P = PA.exists(Y, app("Pair", {PA.var(Y), PA.var(Y)}));
  auto D = deriveFromMachine(P, t("Pair(G1(C), G1(C))"));
  ASSERT_TRUE(D != nullptr);
  EXPECT_EQ(D->Rule, "P-Exists");
  EXPECT_NE(D->Note.find("t′ = G1(C)"), std::string::npos);
}

TEST_F(DerivationTest, ExistsOpensUnboundVariables) {
  // Even with an empty witness the ∃ rule may invent its t′.
  Symbol Y = Symbol::intern("y");
  const Pattern *P = PA.exists(Y, app("Pair", {PA.var(Y), PA.var(Y)}));
  auto D = deriveMatch(P, t("Pair(C, C)"), Subst(), FunSubst(), Arena);
  ASSERT_TRUE(D != nullptr);
  EXPECT_EQ(deriveMatch(P, t("Pair(C, D)"), Subst(), FunSubst(), Arena),
            nullptr);
}

TEST_F(DerivationTest, MatchConstraintHasTwoPremises) {
  Symbol X = Symbol::intern("x");
  const Pattern *P =
      PA.matchConstraint(v("x"), app("Trans", {v("y")}), X);
  auto D = deriveFromMachine(P, t("Trans(B)"));
  ASSERT_TRUE(D != nullptr);
  EXPECT_EQ(D->Rule, "P-MatchConstr");
  ASSERT_EQ(D->Premises.size(), 2u);
  EXPECT_EQ(D->Premises[1]->Rule, "P-Fun"); // constraint side
}

TEST_F(DerivationTest, MuDerivationCountsUnfolds) {
  Symbol U = Symbol::intern("U"), X = Symbol::intern("x"),
         F = Symbol::intern("f");
  const Pattern *Body = PA.alt(PA.funVarApp(F, {PA.recCall(U, {X, F})}),
                               PA.funVarApp(F, {PA.var(X)}));
  const Pattern *Mu = PA.mu(U, {X, F}, {X, F}, Body);
  auto D = deriveFromMachine(Mu, t("Relu(Relu(Relu(C)))"));
  ASSERT_TRUE(D != nullptr);
  EXPECT_EQ(D->Rule, "P-Mu");
  // One P-Mu per chain level.
  size_t Mus = 0;
  std::function<void(const Derivation &)> Count =
      [&](const Derivation &Node) {
        Mus += Node.Rule == "P-Mu";
        for (const auto &Premise : Node.Premises)
          Count(*Premise);
      };
  Count(*D);
  EXPECT_EQ(Mus, 3u);
}

TEST_F(DerivationTest, ExistsFunRule) {
  Symbol F = Symbol::intern("F");
  const Pattern *P = PA.existsFun(F, PA.funVarApp(F, {v("x")}));
  auto D = deriveFromMachine(P, t("Relu(C)"));
  ASSERT_TRUE(D != nullptr);
  EXPECT_EQ(D->Rule, "P-Exists-Fun");
  EXPECT_NE(D->Note.find("f′ = Relu"), std::string::npos);
}

TEST_F(DerivationTest, RenderShowsTreeStructure) {
  const Pattern *P = app("MatMul", {v("x"), app("Trans", {v("y")})});
  auto D = deriveFromMachine(P, t("MatMul(A, Trans(B))"));
  ASSERT_TRUE(D != nullptr);
  std::string R = D->render(Sig);
  EXPECT_NE(R.find("P-Fun: MatMul(x, Trans(y)) ≈ MatMul(A, Trans(B))"),
            std::string::npos);
  EXPECT_NE(R.find("├─ P-Var: x ≈ A"), std::string::npos);
  EXPECT_NE(R.find("└─ P-Fun: Trans(y) ≈ Trans(B)"), std::string::npos);
}

TEST_F(DerivationTest, EveryMachineSuccessHasADerivation) {
  // Mirror of the differential SuccessSound property, through the
  // proof-tree builder (a derivation is a constructive certificate).
  const Pattern *Cases[] = {
      PA.alt(app("Pair", {v("x"), v("y")}), app("Pair", {v("y"), v("x")})),
      PA.guarded(v("x"), PA.binary(GuardKind::Le,
                                   PA.attr(Symbol::intern("x"),
                                           Symbol::intern("size")),
                                   PA.intLit(10))),
      PA.exists(Symbol::intern("w"),
                PA.matchConstraint(v("x"), app("Pair", {PA.var(
                                               Symbol::intern("w")),
                                                        v("y")}),
                                   Symbol::intern("x"))),
  };
  const char *Terms[] = {"Pair(C, D)", "Pair(G1(C), G1(C))", "C",
                         "Trans(Pair(C, D))"};
  for (const Pattern *P : Cases)
    for (const char *Term : Terms) {
      term::TermRef T = t(Term);
      MatchResult R = matchP(P, T);
      if (!R.matched())
        continue;
      auto D = deriveMatch(P, T, R.W.Theta, R.W.Phi, Arena);
      ASSERT_TRUE(D != nullptr)
          << P->toString(Sig) << " against " << Term;
      EXPECT_GE(D->size(), 1u);
    }
}
