//===- tests/test_graph.cpp - Computation graph IR -----------------------------===//

#include "graph/Dot.h"
#include "graph/Graph.h"

#include <gtest/gtest.h>

using namespace pypm;
using namespace pypm::graph;

namespace {

class GraphTest : public ::testing::Test {
protected:
  GraphTest() : G(Sig) {
    MatMul = Sig.addOp("MatMul", 2);
    Relu = Sig.addOp("Relu", 1);
  }

  NodeId leaf(std::initializer_list<int64_t> Dims) {
    TensorType T;
    T.Dims.assign(Dims.begin(), Dims.end());
    return G.addLeaf("Input", std::move(T));
  }

  term::Signature Sig;
  Graph G;
  term::OpId MatMul, Relu;
};

} // namespace

TEST_F(GraphTest, TensorTypeBasics) {
  TensorType T = TensorType::make(term::DType::F32, {8, 128, 768});
  EXPECT_EQ(T.rank(), 3u);
  EXPECT_EQ(T.numElements(), 8 * 128 * 768);
  EXPECT_EQ(T.bytes(), 8 * 128 * 768 * 4);
  EXPECT_EQ(T.str(), "f32[8x128x768]");
  EXPECT_EQ(T, TensorType::make(term::DType::F32, {8, 128, 768}));
  EXPECT_FALSE(T == TensorType::make(term::DType::F16, {8, 128, 768}));
}

TEST_F(GraphTest, AddNodeTracksUsers) {
  NodeId A = leaf({4, 4});
  NodeId B = leaf({4, 4});
  NodeId M = G.addNode(MatMul, {A, B});
  NodeId R = G.addNode(Relu, {M});
  EXPECT_EQ(G.users(A).size(), 1u);
  EXPECT_EQ(G.users(M).size(), 1u);
  EXPECT_EQ(G.users(M)[0], R);
  EXPECT_EQ(G.inputs(M)[0], A);
  EXPECT_EQ(G.numLiveNodes(), 4u);
}

TEST_F(GraphTest, UsersHaveMultiplicity) {
  NodeId A = leaf({4, 4});
  NodeId M = G.addNode(MatMul, {A, A});
  EXPECT_EQ(G.users(A).size(), 2u);
  EXPECT_EQ(G.users(A)[0], M);
}

TEST_F(GraphTest, ReplaceAllUsesRedirects) {
  NodeId A = leaf({4, 4});
  NodeId B = leaf({4, 4});
  NodeId M = G.addNode(MatMul, {A, B});
  NodeId R = G.addNode(Relu, {M});
  G.addOutput(R);
  NodeId M2 = G.addNode(MatMul, {B, A});
  G.replaceAllUses(M, M2);
  EXPECT_EQ(G.inputs(R)[0], M2);
  EXPECT_TRUE(G.users(M).empty());
  EXPECT_EQ(G.users(M2).size(), 1u);
}

TEST_F(GraphTest, ReplaceAllUsesUpdatesOutputs) {
  NodeId A = leaf({4});
  NodeId R = G.addNode(Relu, {A});
  G.addOutput(R);
  NodeId R2 = G.addNode(Relu, {A});
  G.replaceAllUses(R, R2);
  EXPECT_EQ(G.outputs()[0], R2);
}

TEST_F(GraphTest, ReplaceAllUsesSkipsReplacementNodes) {
  // A replacement that references the replaced value must keep that
  // reference (no self-loop).
  NodeId A = leaf({4});
  NodeId R = G.addNode(Relu, {A});
  G.addOutput(R);
  NodeId FirstNew = static_cast<NodeId>(G.numNodes());
  NodeId Wrap = G.addNode(Relu, {R}); // the "replacement" uses R
  G.replaceAllUses(R, Wrap, FirstNew);
  EXPECT_EQ(G.inputs(Wrap)[0], R); // untouched
  EXPECT_EQ(G.outputs()[0], Wrap);
  DiagnosticEngine Diags;
  EXPECT_TRUE(G.verify(Diags)) << Diags.renderAll();
}

TEST_F(GraphTest, RemoveUnreachableSweeps) {
  NodeId A = leaf({4});
  NodeId Dead1 = G.addNode(Relu, {A});
  NodeId Dead2 = G.addNode(Relu, {Dead1});
  NodeId Live = G.addNode(Relu, {A});
  G.addOutput(Live);
  size_t Swept = G.removeUnreachable();
  EXPECT_EQ(Swept, 2u);
  EXPECT_TRUE(G.isDead(Dead1));
  EXPECT_TRUE(G.isDead(Dead2));
  EXPECT_FALSE(G.isDead(A));
  EXPECT_FALSE(G.isDead(Live));
  // A's use list no longer mentions the dead user.
  EXPECT_EQ(G.users(A).size(), 1u);
}

TEST_F(GraphTest, TopoOrderAfterRewiring) {
  // replaceAllUses can point low-id nodes at high-id nodes; topoOrder must
  // still put inputs first.
  NodeId A = leaf({4});
  NodeId R1 = G.addNode(Relu, {A});
  NodeId R2 = G.addNode(Relu, {R1});
  G.addOutput(R2);
  NodeId R3 = G.addNode(Relu, {A}); // replacement for R1
  G.replaceAllUses(R1, R3);
  G.removeUnreachable();
  std::vector<NodeId> Order = G.topoOrder();
  std::vector<size_t> Pos(G.numNodes(), ~size_t(0));
  for (size_t I = 0; I != Order.size(); ++I)
    Pos[Order[I]] = I;
  EXPECT_LT(Pos[R3], Pos[R2]);
  EXPECT_LT(Pos[A], Pos[R3]);
}

TEST_F(GraphTest, VerifyAcceptsWellFormedGraph) {
  NodeId A = leaf({4, 4});
  NodeId M = G.addNode(MatMul, {A, A});
  G.addOutput(M);
  DiagnosticEngine Diags;
  EXPECT_TRUE(G.verify(Diags)) << Diags.renderAll();
}

TEST_F(GraphTest, VerifyFlagsDeadOutput) {
  NodeId A = leaf({4});
  NodeId R = G.addNode(Relu, {A});
  G.addOutput(R);
  NodeId R2 = G.addNode(Relu, {A});
  G.replaceAllUses(R, R2);
  G.removeUnreachable();
  // Force a dead output.
  G.outputs()[0] = R;
  DiagnosticEngine Diags;
  EXPECT_FALSE(G.verify(Diags));
  EXPECT_NE(Diags.renderAll().find("is dead"), std::string::npos);
}

TEST_F(GraphTest, AttrsAreSortedAndQueryable) {
  term::OpId Conv = Sig.addOp("Conv2D", 1);
  NodeId A = leaf({1, 3, 8, 8});
  NodeId C = G.addNode(Conv, {A},
                       {{Symbol::intern("stride"), 2},
                        {Symbol::intern("pad"), 1}});
  EXPECT_EQ(G.attr(C, Symbol::intern("stride")), 2);
  EXPECT_EQ(G.attr(C, Symbol::intern("pad")), 1);
  EXPECT_FALSE(G.attr(C, Symbol::intern("nope")));
}

TEST_F(GraphTest, AddConstStoresMicroValue) {
  NodeId C = G.addConst(0.5);
  EXPECT_EQ(G.attr(C, Symbol::intern("value_u6")), 500000);
  EXPECT_EQ(Sig.name(G.op(C)).str(), "Const");
  NodeId C2 = G.addConst(-1.25);
  EXPECT_EQ(G.attr(C2, Symbol::intern("value_u6")), -1250000);
}

TEST_F(GraphTest, LeavesGetUniqueIds) {
  NodeId A = leaf({4, 4});
  NodeId B = leaf({4, 4});
  EXPECT_NE(G.attr(A, Symbol::intern("uid")),
            G.attr(B, Symbol::intern("uid")));
}

TEST_F(GraphTest, CountOps) {
  NodeId A = leaf({4});
  NodeId R1 = G.addNode(Relu, {A});
  G.addNode(Relu, {R1});
  EXPECT_EQ(G.countOps("Relu"), 2u);
  EXPECT_EQ(G.countOps("MatMul"), 0u);
  EXPECT_EQ(G.countOps("NoSuchOp"), 0u);
}

TEST_F(GraphTest, DotExportContainsNodesAndEdges) {
  NodeId A = leaf({4, 4});
  NodeId M = G.addNode(MatMul, {A, A});
  G.addOutput(M);
  std::string Dot = toDot(G, "test");
  EXPECT_NE(Dot.find("digraph \"test\""), std::string::npos);
  EXPECT_NE(Dot.find("MatMul"), std::string::npos);
  EXPECT_NE(Dot.find("->"), std::string::npos);
}
