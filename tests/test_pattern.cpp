//===- tests/test_pattern.cpp - Pattern AST, unfolding, well-formedness -------===//

#include "TestHelpers.h"

#include "pattern/WellFormed.h"

using namespace pypm;
using namespace pypm::pattern;
using pypm::testing::CoreFixture;

class PatternTest : public CoreFixture {};

TEST_F(PatternTest, KindsAndCasts) {
  const Pattern *X = v("x");
  EXPECT_EQ(X->kind(), PatternKind::Var);
  EXPECT_TRUE(isa<VarPattern>(X));
  EXPECT_FALSE(isa<AppPattern>(X));
  EXPECT_EQ(cast<VarPattern>(X)->name().str(), "x");
  EXPECT_EQ(dyn_cast<AppPattern>(X), nullptr);
}

TEST_F(PatternTest, AltListRightAssociates) {
  const Pattern *A = v("a"), *B = v("b"), *C = v("c");
  const Pattern *P = PA.altList(std::vector<const Pattern *>{A, B, C});
  const auto *Top = cast<AltPattern>(P);
  EXPECT_EQ(Top->left(), A);
  const auto *Right = cast<AltPattern>(Top->right());
  EXPECT_EQ(Right->left(), B);
  EXPECT_EQ(Right->right(), C);
}

TEST_F(PatternTest, AltListSingleton) {
  const Pattern *A = v("a");
  EXPECT_EQ(PA.altList(std::vector<const Pattern *>{A}), A);
}

TEST_F(PatternTest, PrinterRendersCoreForms) {
  op("F", 1);
  const Pattern *P = PA.exists(
      Symbol::intern("y"),
      PA.guarded(PA.alt(app("F", {v("y")}), v("x")),
                 PA.binary(GuardKind::Eq,
                           PA.attr(Symbol::intern("y"), Symbol::intern("rank")),
                           PA.intLit(2))));
  EXPECT_EQ(P->toString(Sig),
            "(exists y. ((F(y) || x) ; guard((y.rank == 2))))");
}

TEST_F(PatternTest, PrinterRendersMuAndRecCall) {
  Symbol P = Symbol::intern("P"), X = Symbol::intern("x");
  op("F", 1);
  const Pattern *Body =
      PA.alt(app("F", {PA.recCall(P, {X})}), v("x"));
  const Pattern *Mu = PA.mu(P, {X}, {X}, Body);
  EXPECT_EQ(Mu->toString(Sig), "(mu P(x)[x]. (F(P(x)) || x))");
}

TEST_F(PatternTest, UnfoldSubstitutesArgsForParams) {
  // μP(x)[a]. F(x)  unfolds to  F(a).
  Symbol P = Symbol::intern("P");
  op("F", 1);
  const Pattern *Body = app("F", {v("x")});
  const auto *Mu = cast<MuPattern>(
      PA.mu(P, {Symbol::intern("x")}, {Symbol::intern("a")}, Body));
  const Pattern *Unfolded = PA.unfoldMu(Mu);
  EXPECT_EQ(Unfolded->toString(Sig), "F(a)");
}

TEST_F(PatternTest, UnfoldRewrapsRecursiveCalls) {
  // μP(x)[x]. F(P(x)) unfolds to F(μP(x)[x]. F(P(x))).
  Symbol P = Symbol::intern("P"), X = Symbol::intern("x");
  op("F", 1);
  const Pattern *Body = app("F", {PA.recCall(P, {X})});
  const auto *Mu = cast<MuPattern>(PA.mu(P, {X}, {X}, Body));
  const Pattern *U = PA.unfoldMu(Mu);
  const auto *App = cast<AppPattern>(U);
  const auto *Inner = cast<MuPattern>(App->children()[0]);
  EXPECT_EQ(Inner->self(), P);
  EXPECT_EQ(Inner->body(), Body); // body shared, not copied
}

TEST_F(PatternTest, UnfoldFreshensExistsBinders) {
  // μP(x)[x]. ∃y. F(y): two unfoldings must bind *different* fresh names
  // (the Fig. 4 local-variable requirement).
  Symbol P = Symbol::intern("P"), X = Symbol::intern("x"),
         Y = Symbol::intern("y");
  op("F", 1);
  const Pattern *Body = PA.exists(Y, app("F", {PA.var(Y)}));
  const auto *Mu = cast<MuPattern>(PA.mu(P, {X}, {X}, Body));
  const auto *U1 = cast<ExistsPattern>(PA.unfoldMu(Mu));
  const auto *U2 = cast<ExistsPattern>(PA.unfoldMu(Mu));
  EXPECT_NE(U1->var(), Y);
  EXPECT_NE(U2->var(), Y);
  EXPECT_NE(U1->var(), U2->var());
  // And occurrences inside are renamed consistently.
  const auto *App1 = cast<AppPattern>(U1->sub());
  EXPECT_EQ(cast<VarPattern>(App1->children()[0])->name(), U1->var());
}

TEST_F(PatternTest, UnfoldFreshensExistsFunBinders) {
  Symbol P = Symbol::intern("P"), X = Symbol::intern("x"),
         F = Symbol::intern("F");
  const Pattern *Body =
      PA.existsFun(F, PA.funVarApp(F, {PA.var(X)}));
  const auto *Mu = cast<MuPattern>(PA.mu(P, {X}, {X}, Body));
  const auto *U1 = cast<ExistsFunPattern>(PA.unfoldMu(Mu));
  const auto *U2 = cast<ExistsFunPattern>(PA.unfoldMu(Mu));
  EXPECT_NE(U1->funVar(), U2->funVar());
  EXPECT_EQ(cast<FunVarAppPattern>(U1->sub())->funVar(), U1->funVar());
}

TEST_F(PatternTest, UnfoldAvoidsCapture) {
  // μP(x)[y]. ∃y. G(x, y): substituting x↦y must NOT be captured by the
  // ∃y binder — the binder freshens first.
  Symbol P = Symbol::intern("P"), X = Symbol::intern("x"),
         Y = Symbol::intern("y");
  op("G", 2);
  const Pattern *Body = PA.exists(Y, app("G", {PA.var(X), PA.var(Y)}));
  const auto *Mu = cast<MuPattern>(PA.mu(P, {X}, {Y}, Body));
  const auto *U = cast<ExistsPattern>(PA.unfoldMu(Mu));
  const auto *G = cast<AppPattern>(U->sub());
  EXPECT_EQ(cast<VarPattern>(G->children()[0])->name(), Y); // x ↦ y (free)
  EXPECT_EQ(cast<VarPattern>(G->children()[1])->name(), U->var()); // fresh
  EXPECT_NE(U->var(), Y);
}

TEST_F(PatternTest, InstantiateRenamesAndFreshens) {
  op("F", 1);
  Symbol X = Symbol::intern("x"), W = Symbol::intern("w"),
         Y = Symbol::intern("y");
  const Pattern *P = PA.exists(Y, app("F", {v("x")}));
  const Pattern *Inst = PA.instantiate(P, {{X, W}});
  const auto *E = cast<ExistsPattern>(Inst);
  EXPECT_NE(E->var(), Y); // binder freshened
  const auto *App = cast<AppPattern>(E->sub());
  EXPECT_EQ(cast<VarPattern>(App->children()[0])->name(), W);
}

TEST_F(PatternTest, ImportGuardRewritesFunVarAccesses) {
  Symbol F = Symbol::intern("f");
  const GuardExpr *G = PA.binary(
      GuardKind::Eq, PA.attr(F, Symbol::intern("op_class")), PA.intLit(1));
  PatternArena Target;
  const GuardExpr *Imported =
      Target.importGuard(G, [&](Symbol S) { return S == F; });
  EXPECT_EQ(Imported->lhs()->kind(), GuardKind::FunAttr);
  const GuardExpr *Unchanged =
      Target.importGuard(G, [](Symbol) { return false; });
  EXPECT_EQ(Unchanged->lhs()->kind(), GuardKind::Attr);
}

//===----------------------------------------------------------------------===//
// Well-formedness
//===----------------------------------------------------------------------===//

class WellFormedTest : public CoreFixture {
protected:
  bool check(const Pattern *P, std::vector<std::string_view> Params = {}) {
    NamedPattern NP;
    NP.Name = Symbol::intern("T");
    for (std::string_view S : Params)
      NP.Params.push_back(Symbol::intern(S));
    NP.Pat = P;
    DiagnosticEngine Diags;
    bool Ok = checkWellFormed(NP, Sig, Diags);
    LastDiags = Diags.renderAll();
    return Ok;
  }
  std::string LastDiags;
};

TEST_F(WellFormedTest, AcceptsBasicPattern) {
  op("F", 2);
  EXPECT_TRUE(check(app("F", {v("x"), v("y")}), {"x", "y"}));
}

TEST_F(WellFormedTest, RejectsDuplicateExistsBinder) {
  Symbol Y = Symbol::intern("y");
  op("F", 2);
  const Pattern *P =
      PA.exists(Y, PA.exists(Y, app("F", {PA.var(Y), PA.var(Y)})));
  EXPECT_FALSE(check(P));
  EXPECT_NE(LastDiags.find("duplicate binder"), std::string::npos);
}

TEST_F(WellFormedTest, RejectsArityMismatch) {
  term::OpId F = op("F", 2);
  // Bypass the arena assert by constructing via a 1-child app on a 2-ary
  // op is impossible through the API; simulate with a RecCall mismatch
  // instead (the deserializer path checks App arity separately).
  Symbol P = Symbol::intern("P"), X = Symbol::intern("x");
  const Pattern *Body =
      PA.app(F, {PA.recCall(P, {X, X}), PA.var(X)});
  const Pattern *Mu = PA.mu(P, {X}, {X}, Body);
  EXPECT_FALSE(check(Mu, {"x"}));
  EXPECT_NE(LastDiags.find("passes 2 arguments"), std::string::npos);
}

TEST_F(WellFormedTest, RejectsRecCallOutsideMu) {
  const Pattern *P = PA.recCall(Symbol::intern("Nowhere"), {});
  EXPECT_FALSE(check(P));
  EXPECT_NE(LastDiags.find("outside the scope"), std::string::npos);
}

TEST_F(WellFormedTest, RejectsGuardOnUnknownVariable) {
  const Pattern *P = PA.guarded(
      v("x"), PA.binary(GuardKind::Eq,
                        PA.attr(Symbol::intern("ghost"),
                                Symbol::intern("rank")),
                        PA.intLit(2)));
  EXPECT_FALSE(check(P, {"x"}));
  EXPECT_NE(LastDiags.find("unknown variable 'ghost'"), std::string::npos);
}

TEST_F(WellFormedTest, RejectsIllSortedGuard) {
  // (1 == 2) + 3 is ill-sorted (bool operand to arithmetic +).
  const GuardExpr *Bad = PA.binary(
      GuardKind::Eq,
      PA.binary(GuardKind::Add,
                PA.binary(GuardKind::Eq, PA.intLit(1), PA.intLit(2)),
                PA.intLit(3)),
      PA.intLit(0));
  EXPECT_FALSE(check(PA.guarded(v("x"), Bad), {"x"}));
  EXPECT_NE(LastDiags.find("ill-sorted"), std::string::npos);
}

TEST_F(WellFormedTest, RejectsGuardOpRefToUnknownOperator) {
  const GuardExpr *G = PA.binary(
      GuardKind::Eq, PA.opRef(Symbol::intern("NoSuchOp")), PA.intLit(1));
  EXPECT_FALSE(check(PA.guarded(v("x"), G), {"x"}));
}

TEST_F(WellFormedTest, RejectsConstraintOnUnknownVariable) {
  op("F", 1);
  const Pattern *P = PA.matchConstraint(v("x"), app("F", {v("x")}),
                                        Symbol::intern("ghost"));
  EXPECT_FALSE(check(P, {"x"}));
}

TEST_F(WellFormedTest, LibraryRejectsRuleForUnknownPattern) {
  Library Lib;
  RewriteRule R;
  R.Name = Symbol::intern("r");
  R.PatternName = Symbol::intern("missing");
  R.Rhs = Lib.Arena.rhsVar(Symbol::intern("x"));
  Lib.Rules.push_back(R);
  DiagnosticEngine Diags;
  EXPECT_FALSE(checkWellFormed(Lib, Sig, Diags));
}

TEST_F(WellFormedTest, LibraryRejectsRhsVarNotAParameter) {
  Library Lib;
  NamedPattern NP;
  NP.Name = Symbol::intern("P");
  NP.Params = {Symbol::intern("x")};
  NP.Pat = Lib.Arena.var(Symbol::intern("x"));
  Lib.PatternDefs.push_back(NP);
  RewriteRule R;
  R.Name = Symbol::intern("r");
  R.PatternName = NP.Name;
  R.Rhs = Lib.Arena.rhsVar(Symbol::intern("other"));
  Lib.Rules.push_back(R);
  DiagnosticEngine Diags;
  EXPECT_FALSE(checkWellFormed(Lib, Sig, Diags));
  EXPECT_NE(Diags.renderAll().find("not a parameter"), std::string::npos);
}

TEST_F(WellFormedTest, LibraryRejectsDuplicatePatternNames) {
  Library Lib;
  for (int I = 0; I != 2; ++I) {
    NamedPattern NP;
    NP.Name = Symbol::intern("Dup");
    NP.Pat = Lib.Arena.var(Symbol::intern("x"));
    NP.Params = {Symbol::intern("x")};
    Lib.PatternDefs.push_back(NP);
  }
  DiagnosticEngine Diags;
  EXPECT_FALSE(checkWellFormed(Lib, Sig, Diags));
}
