//===- tests/test_serializer.cpp - Pattern binary format -----------------------===//

#include "TestHelpers.h"

#include "dsl/Sema.h"
#include "pattern/Serializer.h"

using namespace pypm;
using namespace pypm::pattern;

namespace {

class SerializerTest : public pypm::testing::CoreFixture {
protected:
  /// Compiles, serializes, deserializes into a fresh signature, and
  /// returns both libraries for comparison.
  struct RoundTrip {
    std::unique_ptr<Library> Original;
    std::unique_ptr<Library> Loaded;
    term::Signature LoadedSig;
    std::string Bytes;
  };

  RoundTrip roundTrip(std::string_view Src) {
    RoundTrip RT;
    RT.Original = dsl::compileOrDie(Src, Sig);
    RT.Bytes = serializeLibrary(*RT.Original, Sig);
    DiagnosticEngine Diags;
    RT.Loaded = deserializeLibrary(RT.Bytes, RT.LoadedSig, Diags);
    EXPECT_TRUE(RT.Loaded != nullptr) << Diags.renderAll();
    return RT;
  }
};

constexpr const char *FullFeatureSrc = R"(
  op MatMul(2); op Trans(1); op Relu(1) class("unary_pointwise");
  op Fused(2) attrs(act) class("fused_kernel");
  pattern Chain(x, f) { return f(Chain(x, f)); }
  pattern Chain(x, f) { return f(x); }
  pattern Epi(a, b, f) {
    c = var();
    assert f.op_class == opclass("unary_pointwise");
    assert a.shape.rank == 2 || a.shape.rank == 3;
    c <= MatMul(a, b);
    return f(c);
  }
  rule fuse for Epi(a, b, f) {
    assert a.eltType == f32 && b.eltType == f32;
    return Fused[act = f.op_id](a, b);
  }
)";

} // namespace

TEST_F(SerializerTest, RoundTripPreservesPatternStructure) {
  RoundTrip RT = roundTrip(FullFeatureSrc);
  ASSERT_EQ(RT.Loaded->PatternDefs.size(), RT.Original->PatternDefs.size());
  for (size_t I = 0; I != RT.Original->PatternDefs.size(); ++I) {
    const NamedPattern &A = RT.Original->PatternDefs[I];
    const NamedPattern &B = RT.Loaded->PatternDefs[I];
    EXPECT_EQ(A.Name, B.Name);
    EXPECT_EQ(A.Params, B.Params);
    EXPECT_EQ(A.FunParams, B.FunParams);
    // The printed form is a faithful structural fingerprint.
    EXPECT_EQ(A.Pat->toString(Sig), B.Pat->toString(RT.LoadedSig));
  }
}

TEST_F(SerializerTest, RoundTripPreservesRules) {
  RoundTrip RT = roundTrip(FullFeatureSrc);
  ASSERT_EQ(RT.Loaded->Rules.size(), 1u);
  const RewriteRule &A = RT.Original->Rules[0];
  const RewriteRule &B = RT.Loaded->Rules[0];
  EXPECT_EQ(A.Name, B.Name);
  EXPECT_EQ(A.PatternName, B.PatternName);
  EXPECT_EQ(A.Guard->toString(), B.Guard->toString());
  EXPECT_EQ(A.Rhs->toString(Sig), B.Rhs->toString(RT.LoadedSig));
}

TEST_F(SerializerTest, RoundTripPreservesSignatureMetadata) {
  RoundTrip RT = roundTrip(FullFeatureSrc);
  term::OpId Relu = RT.LoadedSig.lookup("Relu");
  ASSERT_TRUE(Relu.isValid());
  EXPECT_EQ(RT.LoadedSig.opClass(Relu).str(), "unary_pointwise");
  term::OpId Fused = RT.LoadedSig.lookup("Fused");
  ASSERT_TRUE(Fused.isValid());
  ASSERT_EQ(RT.LoadedSig.info(Fused).AttrNames.size(), 1u);
  EXPECT_EQ(RT.LoadedSig.info(Fused).AttrNames[0].str(), "act");
}

TEST_F(SerializerTest, LoadedPatternsMatchIdentically) {
  RoundTrip RT = roundTrip(FullFeatureSrc);
  term::TermArena Arena2(RT.LoadedSig);
  auto T = term::parseTermOrDie("Relu(Relu(Relu(K)))", RT.LoadedSig, Arena2);
  auto R = match::matchPattern(RT.Loaded->findPattern("Chain")->Pat, T,
                               Arena2);
  ASSERT_TRUE(R.matched());
  EXPECT_EQ(R.W.Theta.lookup(Symbol::intern("x")),
            term::parseTermOrDie("K", RT.LoadedSig, Arena2));
}

TEST_F(SerializerTest, DoubleRoundTripIsStable) {
  RoundTrip RT = roundTrip(FullFeatureSrc);
  std::string Bytes2 = serializeLibrary(*RT.Loaded, RT.LoadedSig);
  term::Signature Sig3;
  DiagnosticEngine Diags;
  auto Lib3 = deserializeLibrary(Bytes2, Sig3, Diags);
  ASSERT_TRUE(Lib3 != nullptr);
  EXPECT_EQ(Lib3->PatternDefs.size(), RT.Loaded->PatternDefs.size());
  for (size_t I = 0; I != Lib3->PatternDefs.size(); ++I)
    EXPECT_EQ(Lib3->PatternDefs[I].Pat->toString(Sig3),
              RT.Loaded->PatternDefs[I].Pat->toString(RT.LoadedSig));
}

TEST_F(SerializerTest, MergesIntoCompatibleSignature) {
  RoundTrip RT = roundTrip("op F(1);\npattern P(x) { return F(x); }");
  // Load again into a signature that already declares F with arity 1.
  term::Signature Sig2;
  Sig2.addOp("F", 1);
  DiagnosticEngine Diags;
  auto Lib = deserializeLibrary(RT.Bytes, Sig2, Diags);
  EXPECT_TRUE(Lib != nullptr) << Diags.renderAll();
}

TEST_F(SerializerTest, RejectsIncompatibleArity) {
  RoundTrip RT = roundTrip("op F(1);\npattern P(x) { return F(x); }");
  term::Signature Sig2;
  Sig2.addOp("F", 3);
  DiagnosticEngine Diags;
  EXPECT_EQ(deserializeLibrary(RT.Bytes, Sig2, Diags), nullptr);
  EXPECT_NE(Diags.renderAll().find("redeclared with arity"),
            std::string::npos);
}

TEST_F(SerializerTest, RejectsBadMagic) {
  term::Signature Sig2;
  DiagnosticEngine Diags;
  EXPECT_EQ(deserializeLibrary("NOPE....", Sig2, Diags), nullptr);
  EXPECT_NE(Diags.renderAll().find("bad magic"), std::string::npos);
}

TEST_F(SerializerTest, RejectsWrongVersion) {
  RoundTrip RT = roundTrip("op F(1);\npattern P(x) { return F(x); }");
  std::string Corrupt = RT.Bytes;
  Corrupt[4] = 99; // version byte
  term::Signature Sig2;
  DiagnosticEngine Diags;
  EXPECT_EQ(deserializeLibrary(Corrupt, Sig2, Diags), nullptr);
  EXPECT_NE(Diags.renderAll().find("version"), std::string::npos);
}

TEST_F(SerializerTest, RejectsEveryTruncation) {
  RoundTrip RT = roundTrip(FullFeatureSrc);
  // Never crashes and always errors, at every truncation point.
  for (size_t Len = 0; Len < RT.Bytes.size(); Len += 7) {
    term::Signature Sig2;
    DiagnosticEngine Diags;
    EXPECT_EQ(deserializeLibrary(RT.Bytes.substr(0, Len), Sig2, Diags),
              nullptr)
        << "truncation at " << Len << " unexpectedly parsed";
  }
}

TEST_F(SerializerTest, RejectsTrailingGarbage) {
  RoundTrip RT = roundTrip("op F(1);\npattern P(x) { return F(x); }");
  term::Signature Sig2;
  DiagnosticEngine Diags;
  EXPECT_EQ(deserializeLibrary(RT.Bytes + "junk", Sig2, Diags), nullptr);
  EXPECT_NE(Diags.renderAll().find("trailing bytes"), std::string::npos);
}

TEST_F(SerializerTest, SurvivesRandomByteFlips) {
  // Fuzz-lite: flipping any single byte must never crash the reader (it
  // may or may not produce a valid library, but must stay memory-safe).
  RoundTrip RT = roundTrip(FullFeatureSrc);
  for (size_t I = 8; I < RT.Bytes.size(); I += 11) {
    std::string Corrupt = RT.Bytes;
    Corrupt[I] = static_cast<char>(Corrupt[I] ^ 0x5a);
    term::Signature Sig2;
    DiagnosticEngine Diags;
    (void)deserializeLibrary(Corrupt, Sig2, Diags);
  }
  SUCCEED();
}

TEST_F(SerializerTest, EmptyLibraryRoundTrips) {
  Library Empty;
  std::string Bytes = serializeLibrary(Empty, Sig);
  term::Signature Sig2;
  DiagnosticEngine Diags;
  auto Lib = deserializeLibrary(Bytes, Sig2, Diags);
  ASSERT_TRUE(Lib != nullptr);
  EXPECT_TRUE(Lib->PatternDefs.empty());
  EXPECT_TRUE(Lib->Rules.empty());
}

TEST_F(SerializerTest, StringTableDeduplicates) {
  // The same identifier used many times is stored once: the binary for a
  // pattern using x eight times is barely larger than for one use.
  auto Small = dsl::compileOrDie("op F(1);\npattern P(x) { return F(x); }",
                                 Sig);
  term::Signature SigB;
  auto Big = dsl::compileOrDie(
      "op G(8);\npattern P(x) { return G(x, x, x, x, x, x, x, x); }", SigB);
  std::string SmallBytes = serializeLibrary(*Small, Sig);
  std::string BigBytes = serializeLibrary(*Big, SigB);
  EXPECT_LT(BigBytes.size(), SmallBytes.size() + 64);
}
