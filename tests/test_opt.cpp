//===- tests/test_opt.cpp - The paper's optimization library (§4.1) ------------===//

#include "models/Zoo.h"
#include "opt/StdPatterns.h"
#include "pattern/Serializer.h"
#include "rewrite/RewriteEngine.h"
#include "sim/CostModel.h"

#include <gtest/gtest.h>

using namespace pypm;
using namespace pypm::graph;
using namespace pypm::models;
using namespace pypm::rewrite;

namespace {

struct OptRun {
  // The graph borrows the signature; keep it alive alongside (declared
  // first so it outlives the graph on destruction).
  std::unique_ptr<term::Signature> Sig = std::make_unique<term::Signature>();
  std::unique_ptr<Graph> G;
  RewriteStats Stats;
  double Before = 0, After = 0;
};

OptRun optimizeTransformer(TransformerConfig TC, opt::OptConfig Config) {
  OptRun R;
  R.G = buildTransformer(*R.Sig, TC);
  sim::CostModel CM;
  R.Before = CM.graphCost(*R.G).Seconds;
  opt::Pipeline Pipe = opt::makePipeline(*R.Sig, Config);
  R.Stats = rewriteToFixpoint(*R.G, Pipe.Rules, ShapeInference());
  R.After = CM.graphCost(*R.G).Seconds;
  return R;
}

TransformerConfig smallBert() {
  TransformerConfig TC;
  TC.Name = "bert-small-test";
  TC.Layers = 2;
  TC.Hidden = 128;
  TC.SeqLen = 64;
  TC.Batch = 2;
  return TC;
}

} // namespace

TEST(OptFmha, FusesOneAttentionPerLayer) {
  OptRun R = optimizeTransformer(smallBert(), opt::OptConfig::FmhaOnly);
  EXPECT_EQ(R.G->countOps("FMHA"), 2u);
  EXPECT_EQ(R.G->countOps("Softmax"), 0u);
  EXPECT_EQ(R.Stats.TotalFired, 2u);
  EXPECT_LT(R.After, R.Before);
  DiagnosticEngine Diags;
  EXPECT_TRUE(R.G->verify(Diags)) << Diags.renderAll();
}

TEST(OptFmha, MatchesBothScaleSpellings) {
  for (auto Scale : {TransformerConfig::ScaleStyle::DivSqrtD,
                     TransformerConfig::ScaleStyle::MulInvSqrtD}) {
    TransformerConfig TC = smallBert();
    TC.Scale = Scale;
    OptRun R = optimizeTransformer(TC, opt::OptConfig::FmhaOnly);
    EXPECT_EQ(R.G->countOps("FMHA"), 2u);
  }
}

TEST(OptFmha, MaskedAttentionUsesTheMaskedKernel) {
  TransformerConfig TC = smallBert();
  TC.AttentionMask = true;
  OptRun R = optimizeTransformer(TC, opt::OptConfig::FmhaOnly);
  EXPECT_EQ(R.G->countOps("FMHAMasked"), 2u);
  EXPECT_EQ(R.G->countOps("FMHA"), 0u);
  EXPECT_EQ(R.G->countOps("Softmax"), 0u);
  DiagnosticEngine Diags;
  EXPECT_TRUE(R.G->verify(Diags)) << Diags.renderAll();
}

TEST(OptFmha, UnmaskedAttentionFallsThroughToUnmaskedKernel) {
  // The masked rule is tried first; its RHS references the unbound mask,
  // fails to build, and the engine falls through — the rule-dispatch
  // semantics of §2 driven by binding presence.
  OptRun R = optimizeTransformer(smallBert(), opt::OptConfig::FmhaOnly);
  EXPECT_EQ(R.G->countOps("FMHA"), 2u);
  EXPECT_EQ(R.G->countOps("FMHAMasked"), 0u);
}

TEST(OptFmha, AttentionProjectionsSurvive) {
  // Only the scores→softmax→·V spine fuses; Q/K/V/out matmuls remain.
  OptRun R = optimizeTransformer(smallBert(), opt::OptConfig::FmhaOnly);
  EXPECT_EQ(R.G->countOps("MatMul"), 2u * 6u); // 4 proj + 2 FFN per layer
}

TEST(OptEpilog, ContractsGeluAndFusesFfn) {
  OptRun R = optimizeTransformer(smallBert(), opt::OptConfig::EpilogOnly);
  // Per layer: one decomposed GELU contracted, then fused into the
  // bias-add matmul feeding it.
  EXPECT_EQ(R.G->countOps("Erf"), 0u);
  EXPECT_EQ(R.G->countOps("GemmBiasEpilog"), 2u);
  EXPECT_LT(R.After, R.Before);
}

TEST(OptEpilog, MatchesBothHalfSpellings) {
  for (auto Half : {TransformerConfig::HalfStyle::DivTwo,
                    TransformerConfig::HalfStyle::MulHalf}) {
    TransformerConfig TC = smallBert();
    TC.Half = Half;
    OptRun R = optimizeTransformer(TC, opt::OptConfig::EpilogOnly);
    EXPECT_EQ(R.G->countOps("Erf"), 0u) << "Half spelling missed";
  }
}

TEST(OptEpilog, ReluModelFusesWithoutGeluContraction) {
  TransformerConfig TC = smallBert();
  TC.Activation = TransformerConfig::Act::Relu;
  OptRun R = optimizeTransformer(TC, opt::OptConfig::EpilogOnly);
  EXPECT_EQ(R.G->countOps("GemmBiasEpilog"), 2u);
  EXPECT_EQ(R.G->countOps("Relu"), 0u);
}

TEST(OptEpilog, BiaslessModelUsesPlainGemmEpilog) {
  TransformerConfig TC = smallBert();
  TC.FfnBias = false;
  OptRun R = optimizeTransformer(TC, opt::OptConfig::EpilogOnly);
  EXPECT_EQ(R.G->countOps("GemmEpilog"), 2u);
  EXPECT_EQ(R.G->countOps("GemmBiasEpilog"), 0u);
}

TEST(OptBoth, CombinedBeatsEitherAlone) {
  OptRun None = optimizeTransformer(smallBert(), opt::OptConfig::None);
  OptRun Fmha = optimizeTransformer(smallBert(), opt::OptConfig::FmhaOnly);
  OptRun Epi = optimizeTransformer(smallBert(), opt::OptConfig::EpilogOnly);
  OptRun Both = optimizeTransformer(smallBert(), opt::OptConfig::Both);
  EXPECT_EQ(None.Stats.TotalFired, 0u);
  EXPECT_LT(Both.After, Fmha.After);
  EXPECT_LT(Both.After, Epi.After);
  EXPECT_EQ(Both.G->countOps("FMHA"), 2u);
  EXPECT_EQ(Both.G->countOps("GemmBiasEpilog"), 2u);
}

TEST(OptBoth, SpeedupsAreWithinPlausibleRange) {
  OptRun Both = optimizeTransformer(smallBert(), opt::OptConfig::Both);
  double Speedup = Both.Before / Both.After;
  EXPECT_GT(Speedup, 1.0);
  EXPECT_LT(Speedup, 10.0); // sanity: fusion does not fabricate 10×
}

TEST(OptVision, EpilogFusesConvBlocks) {
  term::Signature Sig;
  VisionConfig VC;
  VC.Name = "v";
  VC.StageDepths = {1, 1};
  VC.ImageSize = 32;
  VC.Batch = 2;
  VC.ClassifierHidden = 128;
  auto G = buildVisionModel(Sig, VC);
  size_t Convs = G->countOps("Conv2D");
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::EpilogOnly);
  rewriteToFixpoint(*G, Pipe.Rules, ShapeInference());
  EXPECT_EQ(G->countOps("ConvEpilog"), Convs);
  EXPECT_EQ(G->countOps("Conv2D"), 0u);
  // Classifier hidden MatMul+BiasAdd+Relu fused too.
  EXPECT_EQ(G->countOps("GemmBiasEpilog"), 1u);
  DiagnosticEngine Diags;
  EXPECT_TRUE(G->verify(Diags)) << Diags.renderAll();
}

TEST(OptVision, ConvEpilogCarriesStrideAndPad) {
  term::Signature Sig;
  VisionConfig VC;
  VC.Name = "v";
  VC.StageDepths = {1};
  VC.ImageSize = 32;
  VC.Batch = 2;
  auto G = buildVisionModel(Sig, VC);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::EpilogOnly);
  rewriteToFixpoint(*G, Pipe.Rules, ShapeInference());
  bool Found = false;
  for (NodeId N : G->topoOrder()) {
    if (Sig.name(G->op(N)).str() != "ConvEpilog")
      continue;
    Found = true;
    EXPECT_EQ(G->attr(N, Symbol::intern("stride")), 1);
    EXPECT_EQ(G->attr(N, Symbol::intern("pad")), 1);
    EXPECT_EQ(G->attr(N, Symbol::intern("act")),
              static_cast<int64_t>(Sig.lookup("Relu").index()));
  }
  EXPECT_TRUE(Found);
}

TEST(OptVision, FmhaIsANoopOnVisionModels) {
  // The Fig. 11 observation: no attention in CNNs, FMHA speedup ≈ 1.0.
  term::Signature Sig;
  VisionConfig VC;
  VC.Name = "v";
  VC.StageDepths = {1, 1};
  VC.ImageSize = 32;
  VC.Batch = 2;
  auto G = buildVisionModel(Sig, VC);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::FmhaOnly);
  RewriteStats Stats = rewriteToFixpoint(*G, Pipe.Rules, ShapeInference());
  EXPECT_EQ(Stats.TotalFired, 0u);
}

TEST(OptBoth, VitHybridFusesAttentionAndConvEpilogs) {
  // The ViT hybrid is the one suite model where FMHA, ConvEpilog, and
  // GemmBiasEpilog all fire together.
  term::Signature Sig;
  VitConfig C;
  C.Name = "vit";
  C.ImageSize = 64;
  C.PatchSize = 16;
  C.Batch = 2;
  C.Encoder.Layers = 2;
  C.Encoder.Hidden = 96;
  C.Encoder.FfnHidden = 384;
  auto G = buildVit(Sig, C);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
  rewriteToFixpoint(*G, Pipe.Rules, ShapeInference());
  EXPECT_EQ(G->countOps("FMHA"), 2u);
  EXPECT_EQ(G->countOps("ConvEpilog"), 1u);
  EXPECT_EQ(G->countOps("GemmBiasEpilog"), 2u);
  DiagnosticEngine Diags;
  EXPECT_TRUE(G->verify(Diags)) << Diags.renderAll();
}

TEST(OptCublas, Figure1RuleRewritesRank2Only) {
  term::Signature Sig;
  auto Lib = opt::compileCublas(Sig);
  Graph G(Sig);
  ShapeInference SI;
  NodeId A = G.addLeaf("Input", TensorType::make(term::DType::F32, {64, 32}));
  NodeId B = G.addLeaf("Input", TensorType::make(term::DType::F32, {16, 32}));
  NodeId T = G.addNode(Sig.lookup("Trans"), {B});
  SI.inferNode(G, T);
  NodeId M = G.addNode(Sig.lookup("MatMul"), {A, T});
  SI.inferNode(G, M);
  G.addOutput(M);
  RuleSet RS;
  RS.addLibrary(*Lib);
  rewriteToFixpoint(G, RS, SI);
  EXPECT_EQ(G.countOps("cublasMM_xyT_f32"), 1u);
}

TEST(OptUnaryChain, CollapsesReluTowers) {
  term::Signature Sig;
  auto Lib = opt::compileUnaryChain(Sig);
  Graph G(Sig);
  ShapeInference SI;
  NodeId X = G.addLeaf("Input", TensorType::make(term::DType::F32, {16}));
  NodeId Cur = X;
  for (int I = 0; I != 5; ++I) {
    Cur = G.addNode(Sig.lookup("Relu"), {Cur});
    SI.inferNode(G, Cur);
  }
  G.addOutput(Cur);
  RuleSet RS;
  RS.addLibrary(*Lib);
  rewriteToFixpoint(G, RS, SI);
  EXPECT_EQ(G.countOps("Relu"), 1u);
}

TEST(OptUnaryChain, DoesNotCollapseNonIdempotentOps) {
  term::Signature Sig;
  auto Lib = opt::compileUnaryChain(Sig);
  Graph G(Sig);
  ShapeInference SI;
  NodeId X = G.addLeaf("Input", TensorType::make(term::DType::F32, {16}));
  NodeId T = G.addNode(Sig.lookup("Tanh"), {G.addNode(Sig.lookup("Tanh"), {X})});
  SI.inferAll(G);
  G.addOutput(T);
  RuleSet RS;
  RS.addLibrary(*Lib);
  RewriteStats Stats = rewriteToFixpoint(G, RS, SI);
  EXPECT_EQ(Stats.TotalFired, 0u);
  EXPECT_EQ(G.countOps("Tanh"), 2u);
}

TEST(OptPipelines, LibrariesSerializeLikeAnyPatternBinary) {
  // The §2.4 deployment story: the optimization libraries round-trip
  // through the portable binary format and keep working.
  term::Signature Sig;
  auto Fmha = opt::compileFmha(Sig);
  std::string Bytes = pattern::serializeLibrary(*Fmha, Sig);
  EXPECT_GT(Bytes.size(), 100u);
  term::Signature Sig2;
  DiagnosticEngine Diags;
  auto Loaded = pattern::deserializeLibrary(Bytes, Sig2, Diags);
  ASSERT_TRUE(Loaded != nullptr) << Diags.renderAll();
  EXPECT_NE(Loaded->findPattern("MHA"), nullptr);
  EXPECT_EQ(Loaded->rulesFor(Symbol::intern("MHA")).size(), 2u);
}
