//===- tests/test_termview.cpp - Graph ↔ term adapter --------------------------===//

#include "graph/ShapeInference.h"
#include "graph/TermView.h"
#include "models/Transformers.h"

#include <gtest/gtest.h>

using namespace pypm;
using namespace pypm::graph;

namespace {

class TermViewTest : public ::testing::Test {
protected:
  TermViewTest() : G(Sig), Arena(Sig), View(G, Arena) {
    models::declareModelOps(Sig);
  }

  NodeId input(std::initializer_list<int64_t> Dims) {
    TensorType T;
    T.Dims.assign(Dims.begin(), Dims.end());
    return G.addLeaf("Input", std::move(T));
  }

  term::Signature Sig;
  Graph G;
  term::TermArena Arena;
  TermView View;
  ShapeInference SI;
};

} // namespace

TEST_F(TermViewTest, TermCarriesTensorAttributes) {
  NodeId A = input({8, 128});
  term::TermRef T = View.termFor(A);
  EXPECT_EQ(Arena.attribute(T, Symbol::intern("rank")), 2);
  EXPECT_EQ(Arena.attribute(T, Symbol::intern("dim0")), 8);
  EXPECT_EQ(Arena.attribute(T, Symbol::intern("dim1")), 128);
  EXPECT_EQ(Arena.attribute(T, Symbol::intern("elt_type")),
            static_cast<int64_t>(term::DType::F32));
}

TEST_F(TermViewTest, TermCarriesOperatorAttributes) {
  NodeId A = input({1, 3, 8, 8});
  NodeId W = input({4, 3, 3, 3});
  NodeId C = G.addNode(Sig.lookup("Conv2D"), {A, W},
                       {{Symbol::intern("stride"), 2}});
  SI.inferAll(G);
  term::TermRef T = View.termFor(C);
  EXPECT_EQ(Arena.attribute(T, Symbol::intern("stride")), 2);
}

TEST_F(TermViewTest, MemoizationSharesConversion) {
  NodeId A = input({4, 4});
  NodeId M = G.addNode(Sig.lookup("MatMul"), {A, A});
  SI.inferAll(G);
  term::TermRef T1 = View.termFor(M);
  term::TermRef T2 = View.termFor(M);
  EXPECT_EQ(T1, T2);
  // Shared node converts to shared subterm.
  EXPECT_EQ(T1->child(0), T1->child(1));
}

TEST_F(TermViewTest, DistinctLeavesStayDistinctTerms) {
  // Two Input leaves with identical types are different values; the uid
  // attribute keeps their terms apart.
  NodeId A = input({4, 4});
  NodeId B = input({4, 4});
  EXPECT_NE(View.termFor(A), View.termFor(B));
}

TEST_F(TermViewTest, EqualConstsShareTerms) {
  NodeId C1 = G.addConst(2.0);
  NodeId C2 = G.addConst(2.0);
  EXPECT_EQ(View.termFor(C1), View.termFor(C2));
  NodeId C3 = G.addConst(3.0);
  EXPECT_NE(View.termFor(C1), View.termFor(C3));
}

TEST_F(TermViewTest, NodeForInvertsTermFor) {
  NodeId A = input({4, 4});
  NodeId M = G.addNode(Sig.lookup("MatMul"), {A, A});
  SI.inferAll(G);
  term::TermRef T = View.termFor(M);
  EXPECT_EQ(View.nodeFor(T), M);
  EXPECT_EQ(View.nodeFor(T->child(0)), A);
}

TEST_F(TermViewTest, NodeForUnknownTermIsInvalid) {
  term::TermRef Foreign = Arena.leaf(Sig.getOrAddOp("Ghost", 0));
  EXPECT_EQ(View.nodeFor(Foreign), InvalidNode);
}

TEST_F(TermViewTest, InvalidateDropsMemo) {
  NodeId A = input({4, 4});
  term::TermRef T1 = View.termFor(A);
  View.invalidate();
  EXPECT_EQ(View.nodeFor(T1), InvalidNode);
  // Re-conversion produces the same (hash-consed) term again.
  EXPECT_EQ(View.termFor(A), T1);
}

TEST_F(TermViewTest, DifferentShapesDifferentTerms) {
  // Shape participates in identity: same op, different dims → different
  // terms (what nonlinear patterns should see).
  NodeId A = input({4, 4});
  NodeId B = input({4, 8});
  NodeId RA = G.addNode(Sig.lookup("Relu"), {A});
  NodeId RB = G.addNode(Sig.lookup("Relu"), {B});
  SI.inferAll(G);
  EXPECT_NE(View.termFor(RA), View.termFor(RB));
}
