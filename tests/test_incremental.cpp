//===- tests/test_incremental.cpp - Batched/incremental ≡ full discovery -----===//
//
// The dirty-region differential suite for RewriteOptions::Incremental and
// RewriteOptions::Batch. Both flags are pure amortization modes: the memo
// replays only complete fruitless visits invalidated by the exact commit
// footprint (markUsersDirty), and the batch sweep computes byte-identical
// candidate masks in one frontier pass. So every committed observable —
// final graph, pass count, per-pattern stats, governance status — must be
// bit-identical to a cold full re-discovery, across the model zoo, 50
// stress seeds, thread counts 0/1/2/4/8, and under budget exhaustion,
// quarantine, and injected faults. The mode-descriptive MemoHits/
// MemoMisses/BatchedNodes counters are deliberately outside the equality
// bars (see RewriteEngine.h) and are checked here only for sanity: the
// memo must actually hit, and Budget accounting must agree with the stats.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "StressHarness.h"
#include "graph/TermView.h"
#include "match/FastMatcher.h"
#include "models/Transformers.h"
#include "opt/StdPatterns.h"
#include "plan/Interpreter.h"
#include "plan/PlanBuilder.h"
#include "plan/Profile.h"
#include "plan/Program.h"
#include "rewrite/RewriteEngine.h"
#include "support/Budget.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

using namespace pypm;
using namespace pypm::match;
using pypm::testing::expectFullyEqual;
using pypm::testing::expectOutcomesEqual;
using pypm::testing::expectSameRewrites;
using pypm::testing::planOpts;
using pypm::testing::runModel;
using pypm::testing::RunResult;
using pypm::testing::runStressCase;
using pypm::testing::StressOutcome;
using pypm::testing::stressRepro;

namespace {

rewrite::RewriteOptions incOpts(unsigned Threads) {
  rewrite::RewriteOptions O = planOpts(Threads);
  O.Incremental = true;
  return O;
}

rewrite::RewriteOptions batchOpts(unsigned Threads, bool Incremental = false) {
  rewrite::RewriteOptions O = planOpts(Threads);
  O.Batch = true;
  O.Incremental = Incremental;
  return O;
}

/// μ-unfold freshening draws binder names from a process-global counter
/// that advances between runs, so reused-matcher witnesses can differ from
/// fresh-run witnesses in $-binders only. Only visible bindings feed RHS
/// construction and guards (same restriction as test_matchplan.cpp).
Witness restrictVisible(const Witness &W) {
  auto Visible = [](Symbol S) {
    return S.str().find('$') == std::string_view::npos;
  };
  Witness Out;
  for (const auto &[K, V] : W.Theta)
    if (Visible(K))
      Out.Theta.bind(K, V);
  for (const auto &[K, V] : W.Phi)
    if (Visible(K))
      Out.Phi.bind(K, V);
  return Out;
}

void expectStatsEqual(const MachineStats &A, const MachineStats &B) {
  EXPECT_EQ(A.Steps, B.Steps);
  EXPECT_EQ(A.Backtracks, B.Backtracks);
  EXPECT_EQ(A.MuUnfolds, B.MuUnfolds);
  EXPECT_EQ(A.VarBinds, B.VarBinds);
  EXPECT_EQ(A.GuardEvals, B.GuardEvals);
  EXPECT_EQ(A.GuardStuck, B.GuardStuck);
}

} // namespace

//===----------------------------------------------------------------------===//
// Zoo differentials: each mode ≡ a cold full re-discovery
//===----------------------------------------------------------------------===//

TEST(IncrementalEngine, ZooIncrementalEqualsFullRediscovery) {
  uint64_t TotalHits = 0;
  for (const auto &Suite : {models::hfSuite(), models::tvSuite()}) {
    for (const models::ModelEntry &Model : Suite) {
      RunResult Fast = runModel(Model, {});
      rewrite::RewriteOptions FastInc;
      FastInc.Incremental = true;
      expectFullyEqual(Fast, runModel(Model, FastInc),
                       Model.Name + " fast full vs fast incremental");

      RunResult Plan = runModel(Model, planOpts(0));
      RunResult Inc = runModel(Model, incOpts(0));
      expectFullyEqual(Plan, Inc, Model.Name + " plan full vs incremental");
      // Three-way: the incremental plan run still matches the fast
      // matcher's committed sequence.
      expectSameRewrites(Fast, Inc, Model.Name + " fast vs incremental plan");
      TotalHits += Inc.Stats.MemoHits;
    }
  }
  // The memo is not decorative: across the zoo the fixpoint passes must
  // actually replay fruitless visits.
  EXPECT_GT(TotalHits, 0u);
}

TEST(IncrementalEngine, ZooBatchedEqualsPerRootDiscovery) {
  uint64_t TotalBatched = 0;
  for (const auto &Suite : {models::hfSuite(), models::tvSuite()}) {
    for (const models::ModelEntry &Model : Suite) {
      RunResult Plan = runModel(Model, planOpts(0));
      RunResult Batched = runModel(Model, batchOpts(0));
      expectFullyEqual(Plan, Batched, Model.Name + " plan vs batched");
      RunResult Both = runModel(Model, batchOpts(0, /*Incremental=*/true));
      expectFullyEqual(Plan, Both, Model.Name + " plan vs batched+incremental");
      TotalBatched += Batched.Stats.BatchedNodes;
    }
  }
  EXPECT_GT(TotalBatched, 0u);
}

TEST(IncrementalEngine, ThreadedModesMatchSerialOnZooPrefix) {
  // Every mode × thread-count combination commits identically to its own
  // serial run (and hence, transitively, to the plain serial plan run).
  auto Hf = models::hfSuite();
  auto Tv = models::tvSuite();
  std::vector<models::ModelEntry> Prefix;
  for (size_t I = 0; I != 3 && I < Hf.size(); ++I)
    Prefix.push_back(Hf[I]);
  for (size_t I = 0; I != 3 && I < Tv.size(); ++I)
    Prefix.push_back(Tv[I]);
  for (const models::ModelEntry &Model : Prefix) {
    RunResult Inc0 = runModel(Model, incOpts(0));
    RunResult Batch0 = runModel(Model, batchOpts(0, true));
    for (unsigned Threads : {1u, 2u, 4u, 8u}) {
      expectFullyEqual(Inc0, runModel(Model, incOpts(Threads)),
                       Model.Name + " incremental@0 vs @" +
                           std::to_string(Threads));
      expectFullyEqual(Batch0, runModel(Model, batchOpts(Threads, true)),
                       Model.Name + " batched+inc@0 vs @" +
                           std::to_string(Threads));
    }
  }
}

TEST(IncrementalEngine, MuChainModesMatchFull) {
  // UnaryChain adds the μ-recursive stress rule: batched attempts reuse
  // one interpreter (persistent scratch + first-unfold memo), which must
  // stay stats-invisible even on deep unfolds.
  auto Suite = models::hfSuite();
  ASSERT_GE(Suite.size(), 3u);
  for (size_t I = 0; I != 3; ++I) {
    RunResult Plan = runModel(Suite[I], planOpts(0), /*WithUnaryChain=*/true);
    expectFullyEqual(Plan, runModel(Suite[I], incOpts(0), true),
                     Suite[I].Name + " +mu incremental");
    expectFullyEqual(Plan, runModel(Suite[I], batchOpts(0), true),
                     Suite[I].Name + " +mu batched");
    expectFullyEqual(Plan, runModel(Suite[I], batchOpts(4, true), true),
                     Suite[I].Name + " +mu batched+inc@4");
  }
}

TEST(IncrementalEngine, BatchFlagIsANoOpUnderTheFastMatcher) {
  // Batch requires the plan matcher's discrimination tree; under the fast
  // matcher the flag must degrade to a plain run, not misbehave.
  auto Suite = models::hfSuite();
  ASSERT_FALSE(Suite.empty());
  RunResult Fast = runModel(Suite.front(), {});
  rewrite::RewriteOptions O;
  O.Batch = true;
  RunResult Batched = runModel(Suite.front(), O);
  expectFullyEqual(Fast, Batched, Suite.front().Name + " fast batch no-op");
  EXPECT_EQ(Batched.Stats.BatchedNodes, 0u);
}

//===----------------------------------------------------------------------===//
// Memo accounting sanity
//===----------------------------------------------------------------------===//

TEST(IncrementalEngine, MemoAccountingAgreesWithBudget) {
  auto Suite = models::hfSuite();
  ASSERT_FALSE(Suite.empty());
  BudgetLimits L; // informational: no memo ceiling exists
  Budget B(L);
  rewrite::RewriteOptions O = incOpts(0);
  O.EngineBudget = &B;
  RunResult R = runModel(Suite.front(), O);
  EXPECT_GT(R.Stats.MemoHits, 0u);
  EXPECT_GT(R.Stats.MemoMisses, 0u);
  EXPECT_EQ(B.memoHits(), R.Stats.MemoHits);
  EXPECT_EQ(B.memoMisses(), R.Stats.MemoMisses);
  // Non-incremental runs never touch the memo counters.
  Budget B2(L);
  rewrite::RewriteOptions Plain = planOpts(0);
  Plain.EngineBudget = &B2;
  RunResult P = runModel(Suite.front(), Plain);
  EXPECT_EQ(P.Stats.MemoHits, 0u);
  EXPECT_EQ(P.Stats.MemoMisses, 0u);
  EXPECT_EQ(B2.memoHits(), 0u);
  EXPECT_EQ(B2.memoMisses(), 0u);
}

TEST(IncrementalEngine, ProfiledModesRecordIdenticalProfiles) {
  // Memo replays re-merge the recorded traversal trace and batch sweeps
  // record per-root traces covering the same group/edge sets, so profiles
  // recorded under either mode are byte-identical to a plain recording.
  auto Suite = models::hfSuite();
  ASSERT_FALSE(Suite.empty());
  const models::ModelEntry &Model = Suite.front();
  plan::Profile Plain, Inc, Batch, Both;
  auto Record = [&](rewrite::RewriteOptions O, plan::Profile *Into) {
    O.PlanProfile = Into;
    return runModel(Model, O);
  };
  RunResult Base = Record(planOpts(0), &Plain);
  expectFullyEqual(Base, Record(incOpts(0), &Inc), "profiled incremental");
  expectFullyEqual(Base, Record(batchOpts(0), &Batch), "profiled batched");
  expectFullyEqual(Base, Record(batchOpts(0, true), &Both),
                   "profiled batched+incremental");
  EXPECT_EQ(Plain, Inc);
  EXPECT_EQ(Plain, Batch);
  EXPECT_EQ(Plain, Both);
}

//===----------------------------------------------------------------------===//
// batchCandidates ≡ candidates, mask-for-mask and trace-for-trace
//===----------------------------------------------------------------------===//

TEST(BatchCandidates, AgreesWithPerRootWalkOnATransformer) {
  term::Signature Sig;
  models::declareModelOps(Sig);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
  plan::Program Prog = plan::PlanBuilder::compile(Pipe.Rules, Sig);

  models::TransformerConfig TC;
  TC.Name = "t";
  TC.Layers = 2;
  TC.Hidden = 64;
  auto G = models::buildTransformer(Sig, TC);
  std::vector<graph::NodeId> Roots = G->topoOrder();

  const size_t NE = Prog.numEntries();
  std::vector<uint8_t> Masks;
  std::vector<plan::TraversalTrace> Traces;
  Prog.batchCandidates(*G, Roots, Masks, &Traces);
  ASSERT_EQ(Masks.size(), Roots.size() * NE);
  ASSERT_EQ(Traces.size(), Roots.size());

  std::vector<uint8_t> Mask;
  plan::TraversalTrace Trace;
  plan::Profile SweepProf, WalkProf;
  for (size_t I = 0; I != Roots.size(); ++I) {
    Trace.clear();
    Prog.candidates(*G, Roots[I], Mask, &Trace);
    // Row I is byte-for-byte the per-root mask.
    std::vector<uint8_t> Row(Masks.begin() + I * NE,
                             Masks.begin() + (I + 1) * NE);
    EXPECT_EQ(Row, Mask) << "root " << Roots[I];
    // Traces visit the same group/edge sets (frontier vs depth-first
    // order); Profile::addTrace sums counters, so the recorded profiles
    // must be identical.
    auto Sorted = [](std::vector<uint32_t> V) {
      std::sort(V.begin(), V.end());
      return V;
    };
    EXPECT_EQ(Sorted(Traces[I].Groups), Sorted(Trace.Groups))
        << "root " << Roots[I];
    EXPECT_EQ(Sorted(Traces[I].Edges), Sorted(Trace.Edges))
        << "root " << Roots[I];
    SweepProf.addTrace(Traces[I]);
    WalkProf.addTrace(Trace);
  }
  EXPECT_EQ(SweepProf, WalkProf);

  // Term-batch overload: same contract over the unrolled terms.
  term::TermArena Arena(Sig);
  graph::TermView View(*G, Arena);
  std::vector<term::TermRef> Terms;
  for (graph::NodeId N : Roots)
    Terms.push_back(View.termFor(N));
  std::vector<uint8_t> TermMasks;
  Prog.batchCandidates(Terms, TermMasks);
  EXPECT_EQ(TermMasks, Masks);
}

TEST(BatchCandidates, EmptyBatchAndEmptyProgramAreWellFormed) {
  term::Signature Sig;
  models::declareModelOps(Sig);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
  plan::Program Prog = plan::PlanBuilder::compile(Pipe.Rules, Sig);
  graph::Graph G(Sig);

  std::vector<uint8_t> Masks{42};
  std::vector<plan::TraversalTrace> Traces;
  Prog.batchCandidates(G, std::span<const graph::NodeId>(), Masks, &Traces);
  EXPECT_TRUE(Masks.empty());
  EXPECT_TRUE(Traces.empty());

  rewrite::RuleSet Empty;
  plan::Program None = plan::PlanBuilder::compile(Empty, Sig);
  graph::NodeId N = G.addLeaf(
      "Input", graph::TensorType::make(term::DType::F32, {8, 8}));
  std::vector<graph::NodeId> Roots{N};
  None.batchCandidates(G, Roots, Masks);
  EXPECT_TRUE(Masks.empty()); // 1 root × 0 entries
}

//===----------------------------------------------------------------------===//
// Per-attempt three-way parity on reused matchers
//===----------------------------------------------------------------------===//

TEST(BatchMatchers, ReusedMatchersAgreeWithFreshRunsPerAttempt) {
  // The batch engine amortizes matcher construction: one Interpreter (and,
  // in Fast parity mode, one FastMatcher) serves every attempt of a pass.
  // Per attempt, the reused instances must agree with a fresh run on
  // status, every counter, and every visible binding — the persistent
  // scratch arena and first-unfold μ memo are stats-invisible.
  term::Signature Sig;
  models::declareModelOps(Sig);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
  Pipe.Libs.push_back(opt::compileUnaryChain(Sig));
  Pipe.Rules.addLibrary(*Pipe.Libs.back());
  plan::Program Prog = plan::PlanBuilder::compile(Pipe.Rules, Sig);

  models::TransformerConfig TC;
  TC.Name = "t";
  TC.Layers = 1;
  TC.Hidden = 64;
  auto G = models::buildTransformer(Sig, TC);
  term::TermArena Arena(Sig);
  graph::TermView View(*G, Arena);

  plan::Interpreter Reused(Prog, Arena);
  FastMatcher Fast(Arena);
  std::vector<uint8_t> Mask;
  size_t Attempts = 0;
  for (graph::NodeId N : G->topoOrder()) {
    term::TermRef T = View.termFor(N);
    Prog.candidates(T, Mask);
    for (size_t I = 0; I != Prog.numEntries(); ++I) {
      if (!Mask[I])
        continue;
      ++Attempts;
      SCOPED_TRACE("node " + std::to_string(N) + " entry " +
                   std::to_string(I));
      MatchResult Fresh = plan::Interpreter::run(Prog, I, T, Arena);
      MatchResult RI = Reused.matchOne(I, T);
      MatchResult RF =
          Fast.matchOne(Pipe.Rules.entries()[I].Pattern->Pat, T);
      ASSERT_EQ(RI.Status, Fresh.Status);
      ASSERT_EQ(RF.Status, Fresh.Status);
      expectStatsEqual(RI.Stats, Fresh.Stats);
      expectStatsEqual(RF.Stats, RI.Stats);
      if (Fresh.matched()) {
        EXPECT_EQ(restrictVisible(RI.W), restrictVisible(Fresh.W));
        EXPECT_EQ(restrictVisible(RF.W), restrictVisible(Fresh.W));
      }
    }
  }
  // The prefilter must have let real attempts through, else this test
  // compared nothing.
  EXPECT_GT(Attempts, 0u);
}

//===----------------------------------------------------------------------===//
// Randomized commit sequences: 50-seed stress at threads 0/1/2/4/8
//===----------------------------------------------------------------------===//

namespace {

class IncrementalStressTest : public ::testing::TestWithParam<unsigned> {};

rewrite::RewriteOptions stressPlan(unsigned Threads, bool Incremental,
                                   bool Batch, uint64_t MaxRewrites = 300) {
  rewrite::RewriteOptions O = planOpts(Threads);
  O.Incremental = Incremental;
  O.Batch = Batch;
  O.MaxRewrites = MaxRewrites;
  return O;
}

} // namespace

TEST_P(IncrementalStressTest, RandomCommitSequencesBitIdentical) {
  // Randomized rule zoos + DAGs: each commit dirties a region whose memo
  // rows must be invalidated exactly; over 50 seeds any stale-memo bug
  // shows up as a diverged graph or stat. The ping-pong rule pair keeps
  // commits flowing every pass, so memo state is constantly churned.
  unsigned Threads = GetParam();
  for (uint64_t Seed = 0; Seed != 50; ++Seed) {
    StressOutcome Full = runStressCase(Seed, stressPlan(Threads, 0, 0));
    StressOutcome Inc = runStressCase(Seed, stressPlan(Threads, 1, 0));
    StressOutcome Batch = runStressCase(Seed, stressPlan(Threads, 0, 1));
    StressOutcome Both = runStressCase(Seed, stressPlan(Threads, 1, 1));
    std::string At = " @threads=" + std::to_string(Threads);
    expectOutcomesEqual(Full, Inc, stressRepro(Seed, "incremental" + At));
    expectOutcomesEqual(Full, Batch, stressRepro(Seed, "batched" + At));
    expectOutcomesEqual(Full, Both, stressRepro(Seed, "batched+inc" + At));
    // Cross-matcher: the committed sequence still matches the fast serial
    // engine (attempt-shaped counters legitimately differ; see DESIGN.md).
    rewrite::RewriteOptions FastOpts;
    FastOpts.MaxRewrites = 300;
    FastOpts.Incremental = true;
    StressOutcome FastInc = runStressCase(Seed, FastOpts);
    SCOPED_TRACE(stressRepro(Seed, "fast-incremental vs plan"));
    EXPECT_EQ(FastInc.GraphText, Inc.GraphText);
    EXPECT_EQ(FastInc.Stats.TotalFired, Inc.Stats.TotalFired);
    EXPECT_EQ(FastInc.Stats.TotalMatches, Inc.Stats.TotalMatches);
    EXPECT_EQ(FastInc.Stats.Status, Inc.Stats.Status);
  }
}

TEST_P(IncrementalStressTest, CommitPrefixesBitIdentical) {
  // Truncating the run after K commits stops mid-churn with the memo in
  // an arbitrary (possibly stale-but-invalidated) state: the committed
  // prefix must still be bit-identical, for every prefix length.
  unsigned Threads = GetParam();
  for (uint64_t Seed = 0; Seed != 15; ++Seed) {
    for (uint64_t K : {1u, 3u, 7u, 20u}) {
      StressOutcome Full = runStressCase(Seed, stressPlan(Threads, 0, 0, K));
      StressOutcome Both = runStressCase(Seed, stressPlan(Threads, 1, 1, K));
      expectOutcomesEqual(Full, Both,
                          stressRepro(Seed, "prefix K=" + std::to_string(K) +
                                                " @threads=" +
                                                std::to_string(Threads)));
    }
  }
}

TEST_P(IncrementalStressTest, BudgetExhaustionBitIdentical) {
  unsigned Threads = GetParam();
  bool SawExhaustion = false;
  for (uint64_t Seed = 0; Seed != 10; ++Seed) {
    BudgetLimits L;
    L.MaxTotalSteps = 2;
    Budget BF(L), BB(L);
    rewrite::RewriteOptions Full = stressPlan(Threads, 0, 0);
    Full.EngineBudget = &BF;
    rewrite::RewriteOptions Both = stressPlan(Threads, 1, 1);
    Both.EngineBudget = &BB;
    StressOutcome SF = runStressCase(Seed, Full);
    StressOutcome SB = runStressCase(Seed, Both);
    expectOutcomesEqual(
        SF, SB,
        stressRepro(Seed, "budget @threads=" + std::to_string(Threads)));
    SawExhaustion |= SF.Stats.Status.Code == EngineStatusCode::BudgetExhausted;
  }
  EXPECT_TRUE(SawExhaustion);
}

TEST_P(IncrementalStressTest, QuarantineBitIdentical) {
  unsigned Threads = GetParam();
  bool SawQuarantine = false;
  for (uint64_t Seed = 0; Seed != 10; ++Seed) {
    rewrite::RewriteOptions Full = stressPlan(Threads, 0, 0);
    Full.MachineOpts.MaxSteps = 3;
    Full.QuarantineThreshold = 2;
    rewrite::RewriteOptions Both = Full;
    Both.Incremental = true;
    Both.Batch = true;
    StressOutcome SF = runStressCase(Seed, Full);
    StressOutcome SB = runStressCase(Seed, Both);
    expectOutcomesEqual(
        SF, SB,
        stressRepro(Seed, "quarantine @threads=" + std::to_string(Threads)));
    SawQuarantine |= SF.Stats.Status.quarantined();
  }
  EXPECT_TRUE(SawQuarantine);
}

TEST_P(IncrementalStressTest, SiteFaultsBitIdentical) {
  // Site-scheduled faults re-arm per (pass, node, entry): a memo replay
  // must re-consult the schedule and fall back to a live visit on an
  // armed site, so faulted runs stay bit-identical in every mode.
  unsigned Threads = GetParam();
  size_t RunsWithFaults = 0;
  for (uint64_t Seed = 0; Seed != 10; ++Seed) {
    FaultInjector::Config C;
    C.SiteSeed = Seed * 1000 + 7;
    // Denser than the fast-matcher suite's 1/23: the plan's tree
    // prefilter skips most attempts, and sites are consulted per
    // *attempted* entry, so a sparse schedule can miss entirely.
    C.SitePeriod = 5;
    FaultInjector F(C);
    auto Run = [&](bool Incremental, bool Batch) {
      rewrite::RewriteOptions O = stressPlan(Threads, Incremental, Batch, 100);
      O.Faults = &F;
      return runStressCase(Seed, O);
    };
    std::string At = " @threads=" + std::to_string(Threads);
    StressOutcome Full = Run(false, false);
    expectOutcomesEqual(Full, Run(true, false),
                        stressRepro(Seed, "fault inc" + At));
    expectOutcomesEqual(Full, Run(false, true),
                        stressRepro(Seed, "fault batch" + At));
    expectOutcomesEqual(Full, Run(true, true),
                        stressRepro(Seed, "fault both" + At));
    RunsWithFaults += Full.Stats.Status.FaultsAbsorbed != 0;
  }
  // The schedule must actually inject, else the differential is vacuous.
  EXPECT_GT(RunsWithFaults, 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, IncrementalStressTest,
                         ::testing::Values(0u, 1u, 2u, 4u, 8u),
                         [](const auto &Info) {
                           return "T" + std::to_string(Info.param);
                         });
