//===- tests/test_search.cpp - Cost-directed search: oracle + differential ===//
///
/// The three-way bar locking down src/search/ (see DESIGN.md §"Cost-directed
/// search"):
///
///  (a) DEGENERATE ≡ GREEDY. Every degenerate search configuration
///      (Lookahead == 0 or BeamWidth == 0) dispatches to the greedy engine
///      and must be bit-identical to Search == Greedy — graphs, witness
///      order, every counter — over the model zoo and a 50-seed stress
///      sweep at thread counts 0/1/2/4/8.
///
///  (b) ORACLE SANDWICH. On small seeded graphs the exhaustive enumerator
///      (tests/TestHelpers.h exhaustiveOptimum) computes the true optimum
///      over every commit sequence; the beam's end cost must satisfy
///      optimum <= beam <= greedy, with beam strictly beating greedy on the
///      constructed conflict workload (two fusions competing for one
///      region, canonical order favoring the costlier one).
///
///  (c) COMPOSITION. Search composes with the governance surface — budget
///      ceilings, quarantine, injected faults, HaltOnFault, MaxRewrites —
///      and with the discovery modes (Batch, Incremental, precompiled
///      plans), deterministically at every thread count: worker threads
///      only price hermetic clones, so nothing observable may move.
///
//===----------------------------------------------------------------------===//

#include "StressHarness.h"
#include "TestHelpers.h"
#include "analysis/CriticalPairs.h"
#include "dsl/Sema.h"
#include "plan/PlanBuilder.h"
#include "search/Search.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

using namespace pypm;
using namespace pypm::testing;
using rewrite::RewriteOptions;
using rewrite::RewriteStats;
using rewrite::SearchStrategy;

namespace {

RewriteOptions beamOpts(unsigned Width, unsigned Lookahead,
                        unsigned Threads = 0) {
  RewriteOptions O;
  O.Search = SearchStrategy::Beam;
  O.BeamWidth = Width;
  O.Lookahead = Lookahead;
  O.NumThreads = Threads;
  return O;
}

//===----------------------------------------------------------------------===//
// The conflict fixture: two fusions competing for one region
//===----------------------------------------------------------------------===//

/// Both patterns root at the same Gelu node, and entry order (the greedy
/// tie-break) puts the costlier rewrite first: the epilog fuse strands the
/// Trans as its own kernel, while the full fuse folds it into the cuBLAS
/// call. Firing either destroys the other's match, so greedy commits the
/// bad one and the cost-directed search must not.
constexpr const char *ConflictRules = R"pypm(
pattern EpiGelu(a, b) { return Gelu(MatMul(a, b)); }
rule epi for EpiGelu(a, b) { return GemmEpilog(a, b); }

pattern FullGelu(x, y) {
  yt = Trans(y);
  return Gelu(MatMul(x, yt));
}
rule full for FullGelu(x, y) { return Gelu(cublasMM_xyT_f32(x, y)); }
)pypm";

class SearchConflictTest : public ::testing::Test {
protected:
  SearchConflictTest() : G(Sig) {
    models::declareModelOps(Sig);
    Lib = dsl::compileOrDie(ConflictRules, Sig);
    RS.addLibrary(*Lib);
    graph::NodeId A = G.addLeaf(
        "Input", graph::TensorType::make(term::DType::F32, {512, 512}));
    graph::NodeId B = G.addLeaf(
        "Input", graph::TensorType::make(term::DType::F32, {512, 512}));
    graph::NodeId T = G.addNode(Sig.lookup("Trans"), {B});
    graph::NodeId M = G.addNode(Sig.lookup("MatMul"), {A, T});
    GeluNode = G.addNode(Sig.lookup("Gelu"), {M});
    G.addOutput(GeluNode);
    SI.inferAll(G);
    PreText = graph::writeGraphText(G);
  }

  /// Rewrites a fresh copy under \p Opts; returns the end-state modeled
  /// cost and (optionally) the run's stats and graph text.
  double endCost(RewriteOptions Opts, RewriteStats *StatsOut = nullptr,
                 std::string *TextOut = nullptr) {
    graph::Graph Copy(G);
    RewriteStats S = rewrite::rewriteToFixpoint(Copy, RS, SI, Opts);
    if (StatsOut)
      *StatsOut = S;
    if (TextOut)
      *TextOut = graph::writeGraphText(Copy);
    return CM.graphCost(Copy).Seconds;
  }

  term::Signature Sig;
  graph::Graph G;
  graph::ShapeInference SI;
  std::unique_ptr<pattern::Library> Lib;
  rewrite::RuleSet RS;
  sim::CostModel CM;
  graph::NodeId GeluNode = graph::InvalidNode;
  std::string PreText;
};

TEST_F(SearchConflictTest, EnumeratorSeesBothCompetingCandidates) {
  std::vector<search::Candidate> Cands = search::enumerateCandidates(G, RS);
  ASSERT_EQ(Cands.size(), 2u);
  EXPECT_EQ(Cands[0].Node, GeluNode);
  EXPECT_EQ(Cands[0].Entry, 0u); // EpiGelu, the canonical-order winner
  EXPECT_EQ(Cands[1].Node, GeluNode);
  EXPECT_EQ(Cands[1].Entry, 1u); // FullGelu, the cheaper one
}

TEST_F(SearchConflictTest, GreedyCommitsTheCanonicalCostlierFusion) {
  RewriteStats S;
  std::string Text;
  endCost({}, &S, &Text);
  EXPECT_EQ(S.TotalFired, 1u);
  EXPECT_NE(Text.find("GemmEpilog"), std::string::npos) << Text;
  EXPECT_NE(Text.find("Trans"), std::string::npos) << Text;
  // Greedy never prices anything, so the search counters stay zero.
  EXPECT_EQ(S.SearchSteps, 0u);
  EXPECT_EQ(S.SearchExpansions, 0u);
  EXPECT_DOUBLE_EQ(S.ModeledCostBefore, 0.0);
}

TEST_F(SearchConflictTest, BeamMatchesExhaustiveOptimumAndBeatsGreedy) {
  double Optimum = exhaustiveOptimum(G, RS, SI, CM);
  double Greedy = endCost({});
  RewriteStats S;
  std::string Text;
  double Beam = endCost(beamOpts(2, 1), &S, &Text);
  // The sandwich: optimum <= beam <= greedy, strict on this conflict.
  EXPECT_NEAR(Beam, Optimum, 1e-12);
  EXPECT_LT(Beam, Greedy);
  EXPECT_LE(Optimum, Greedy);
  // The winner is the full fusion: Trans folded away, Gelu on top.
  EXPECT_NE(Text.find("cublasMM_xyT_f32"), std::string::npos) << Text;
  EXPECT_EQ(Text.find("GemmEpilog"), std::string::npos) << Text;
  EXPECT_EQ(S.TotalFired, 1u);
}

TEST_F(SearchConflictTest, BestOfNAlsoPicksTheCheaperFusion) {
  double Optimum = exhaustiveOptimum(G, RS, SI, CM);
  RewriteOptions O = beamOpts(2, 1);
  O.Search = SearchStrategy::BestOfN;
  EXPECT_NEAR(endCost(O), Optimum, 1e-12);
}

TEST_F(SearchConflictTest, SearchStatsAccountTheRun) {
  RewriteStats S;
  double After = endCost(beamOpts(2, 1), &S);
  // Sweep 1 enumerates the two candidates and commits; sweep 2 proves the
  // fixpoint.
  EXPECT_EQ(S.SearchSteps, 2u);
  EXPECT_EQ(S.Passes, 2u);
  EXPECT_EQ(S.SearchCandidates, 2u);
  EXPECT_EQ(S.SearchExpansions, 2u);
  EXPECT_GT(S.ModeledCostBefore, S.ModeledCostAfter);
  EXPECT_NEAR(S.ModeledCostAfter, After, 1e-12);
  EXPECT_NEAR(S.ModeledCostBefore, CM.graphCost(G).Seconds, 1e-12);
}

TEST_F(SearchConflictTest, LosingCandidatesLeaveTheSubjectGraphUntouched) {
  std::vector<search::Candidate> Cands = search::enumerateCandidates(G, RS);
  ASSERT_EQ(Cands.size(), 2u);
  std::vector<std::string> Outcomes;
  for (const search::Candidate &C : Cands) {
    graph::Graph Clone(G);
    search::ApplyResult R = search::applyCandidate(Clone, C, RS, SI, CM);
    EXPECT_TRUE(R.Applied);
    EXPECT_LT(R.CostDelta, 0.0); // both fusions shrink the modeled cost
    Outcomes.push_back(graph::writeGraphText(Clone));
  }
  // Speculation ran exclusively on clones: the subject graph is untouched
  // byte for byte, and the two branches really were different futures.
  EXPECT_EQ(graph::writeGraphText(G), PreText);
  EXPECT_NE(Outcomes[0], Outcomes[1]);
}

TEST_F(SearchConflictTest, CommitDeltaAgreesWithWholeGraphRecost) {
  double Before = CM.graphCost(G).Seconds;
  for (const search::Candidate &C : search::enumerateCandidates(G, RS)) {
    graph::Graph Clone(G);
    search::ApplyResult R = search::applyCandidate(Clone, C, RS, SI, CM);
    ASSERT_TRUE(R.Applied);
    EXPECT_NEAR(CM.graphCost(Clone).Seconds, Before + R.CostDelta, 1e-12);
  }
}

TEST_F(SearchConflictTest, ThreadsOnlyPriceClonesNothingObservableMoves) {
  RewriteStats Base;
  std::string BaseText;
  double BaseCost = endCost(beamOpts(2, 2, 0), &Base, &BaseText);
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(Threads));
    RewriteStats S;
    std::string Text;
    double Cost = endCost(beamOpts(2, 2, Threads), &S, &Text);
    EXPECT_EQ(Text, BaseText);
    EXPECT_EQ(Cost, BaseCost);
    EXPECT_EQ(S.TotalFired, Base.TotalFired);
    EXPECT_EQ(S.SearchSteps, Base.SearchSteps);
    EXPECT_EQ(S.SearchCandidates, Base.SearchCandidates);
    EXPECT_EQ(S.SearchExpansions, Base.SearchExpansions);
    EXPECT_EQ(S.ModeledCostBefore, Base.ModeledCostBefore);
    EXPECT_EQ(S.ModeledCostAfter, Base.ModeledCostAfter);
    EXPECT_EQ(S.Status, Base.Status);
  }
}

TEST_F(SearchConflictTest, MatcherKindsAgreeOnTheCommittedResult) {
  std::string FastText;
  double FastCost = endCost(beamOpts(2, 1), nullptr, &FastText);
  for (rewrite::MatcherKind MK :
       {rewrite::MatcherKind::Machine, rewrite::MatcherKind::Plan,
        rewrite::MatcherKind::PlanThreaded}) {
    SCOPED_TRACE(static_cast<int>(MK));
    RewriteOptions O = beamOpts(2, 1);
    O.Matcher = MK;
    std::string Text;
    EXPECT_EQ(endCost(O, nullptr, &Text), FastCost);
    EXPECT_EQ(Text, FastText);
  }
}

TEST_F(SearchConflictTest, PrecompiledPlanMatchesFreshCompile) {
  plan::Program Prog = plan::PlanBuilder::compile(RS, Sig);
  RewriteOptions Fresh = beamOpts(2, 1);
  Fresh.Matcher = rewrite::MatcherKind::Plan;
  RewriteStats FreshStats;
  std::string FreshText;
  double FreshCost = endCost(Fresh, &FreshStats, &FreshText);
  EXPECT_GT(FreshStats.PlanCompileSeconds, 0.0);

  RewriteOptions Pre = Fresh;
  Pre.PrecompiledPlan = &Prog;
  RewriteStats PreStats;
  std::string PreText2;
  EXPECT_EQ(endCost(Pre, &PreStats, &PreText2), FreshCost);
  EXPECT_EQ(PreText2, FreshText);
  EXPECT_DOUBLE_EQ(PreStats.PlanCompileSeconds, 0.0);
}

//===----------------------------------------------------------------------===//
// Rollback soundness under injected faults
//===----------------------------------------------------------------------===//

/// The assert sits in the RULE body so it lowers to a rule-level guard —
/// the onGuardEval fault site (pattern-level asserts are evaluated inside
/// the match machine instead). The two-node RHS gives the injector a
/// mid-build site.
constexpr const char *GuardedRules = R"pypm(
pattern AG(x, y) { return Add(Relu(x), Relu(y)); }
rule ag for AG(x, y) {
  assert x.shape.rank == 2;
  return Relu(Add(x, y));
}
)pypm";

class SearchFaultTest : public ::testing::Test {
protected:
  SearchFaultTest() : G(Sig) {
    models::declareModelOps(Sig);
    Lib = dsl::compileOrDie(GuardedRules, Sig);
    RS.addLibrary(*Lib);
    graph::NodeId A = G.addLeaf(
        "Input", graph::TensorType::make(term::DType::F32, {8, 8}));
    graph::NodeId B = G.addLeaf(
        "Input", graph::TensorType::make(term::DType::F32, {8, 8}));
    graph::NodeId Root =
        G.addNode(Sig.lookup("Add"), {G.addNode(Sig.lookup("Relu"), {A}),
                                      G.addNode(Sig.lookup("Relu"), {B})});
    G.addOutput(Root);
    SI.inferAll(G);
    PreText = graph::writeGraphText(G);
  }

  term::Signature Sig;
  graph::Graph G;
  graph::ShapeInference SI;
  std::unique_ptr<pattern::Library> Lib;
  rewrite::RuleSet RS;
  sim::CostModel CM;
  std::string PreText;
};

TEST_F(SearchFaultTest, ApplyCandidateRollsBackOnGuardFault) {
  std::vector<search::Candidate> Cands = search::enumerateCandidates(G, RS);
  ASSERT_EQ(Cands.size(), 1u);
  FaultInjector::Config C;
  C.NthGuardEval = 1;
  FaultInjector F(C);
  EXPECT_THROW(search::applyCandidate(G, Cands[0], RS, SI, CM, {}, &F),
               InjectedFault);
  EXPECT_EQ(graph::writeGraphText(G), PreText);
}

TEST_F(SearchFaultTest, ApplyCandidateRollsBackMidBuildRhsFault) {
  std::vector<search::Candidate> Cands = search::enumerateCandidates(G, RS);
  ASSERT_EQ(Cands.size(), 1u);
  // The first replacement node (the Add) is already appended when the
  // injector throws at the second; the rollback sweep must collect it.
  FaultInjector::Config C;
  C.NthRhsBuild = 2;
  FaultInjector F(C);
  EXPECT_THROW(search::applyCandidate(G, Cands[0], RS, SI, CM, {}, &F),
               InjectedFault);
  EXPECT_EQ(graph::writeGraphText(G), PreText);
}

TEST_F(SearchFaultTest, SearchRunAbsorbsFaultAndQuarantines) {
  FaultInjector::Config C;
  C.NthGuardEval = 1;
  FaultInjector F(C);
  RewriteOptions O = beamOpts(2, 1);
  O.Faults = &F;
  RewriteStats S = rewrite::rewriteToFixpoint(G, RS, SI, O);
  EXPECT_EQ(S.Status.Code, EngineStatusCode::FaultInjected);
  EXPECT_EQ(S.Status.FaultsAbsorbed, 1u);
  EXPECT_EQ(S.Status.QuarantinedPatterns, std::vector<std::string>{"AG"});
  EXPECT_EQ(S.TotalFired, 0u);
  EXPECT_EQ(graph::writeGraphText(G), PreText);
}

TEST_F(SearchFaultTest, SearchRunHaltsOnFaultWhenAsked) {
  FaultInjector::Config C;
  C.NthGuardEval = 1;
  FaultInjector F(C);
  RewriteOptions O = beamOpts(2, 1);
  O.Faults = &F;
  O.HaltOnFault = true;
  RewriteStats S = rewrite::rewriteToFixpoint(G, RS, SI, O);
  EXPECT_EQ(S.Status.Code, EngineStatusCode::FaultInjected);
  EXPECT_EQ(S.Status.Reason, BudgetReason::Fault);
  EXPECT_TRUE(S.Status.QuarantinedPatterns.empty());
  EXPECT_EQ(S.TotalFired, 0u);
  EXPECT_EQ(graph::writeGraphText(G), PreText);
}

//===----------------------------------------------------------------------===//
// Rule fall-through: an unbuildable RHS tries the next rule
//===----------------------------------------------------------------------===//

/// The fuse_mha_masked shape: the first rule's RHS references a parameter
/// only the other alternate binds, so its build fails by design and the
/// engine falls through to the next rule. applyCandidate must do the same
/// WITHOUT sweeping or invalidating the term view mid-loop — wiping the
/// term-to-node memo the witness resolves through made every fall-through
/// rule unbuildable, and beam search silently stopped firing MHA on the
/// zoo (candidates priced as unapplicable).
constexpr const char *FallThroughRules = R"pypm(
pattern FT(x, m) { return Relu(Add(Relu(x), m)); }
pattern FT(x, m) { return Relu(Relu(x)); }
rule ft_masked for FT(x, m) { return Add(Relu(x), m); }
rule ft for FT(x, m) { return Relu(x); }
)pypm";

/// Same shape with no fall-back rule: every rule unbuildable. The RHS
/// builds two genuinely new nodes (the Relu^3 tower) before hitting the
/// unbound parameter, so a clean refusal must also sweep the orphans.
constexpr const char *DeadEndRules = R"pypm(
pattern FT2(x, m) { return Relu(Add(Relu(x), m)); }
pattern FT2(x, m) { return Relu(Relu(x)); }
rule ft2 for FT2(x, m) { return Add(Relu(Relu(Relu(Relu(x)))), m); }
)pypm";

class SearchFallThroughTest : public ::testing::Test {
protected:
  SearchFallThroughTest() : G(Sig) {
    models::declareModelOps(Sig);
    graph::NodeId A = G.addLeaf(
        "Input", graph::TensorType::make(term::DType::F32, {8, 8}));
    graph::NodeId Root =
        G.addNode(Sig.lookup("Relu"), {G.addNode(Sig.lookup("Relu"), {A})});
    G.addOutput(Root);
    SI.inferAll(G);
    PreText = graph::writeGraphText(G);
  }

  rewrite::RuleSet load(const char *Src) {
    Lib = dsl::compileOrDie(Src, Sig);
    rewrite::RuleSet RS;
    RS.addLibrary(*Lib);
    return RS;
  }

  term::Signature Sig;
  graph::Graph G;
  graph::ShapeInference SI;
  std::unique_ptr<pattern::Library> Lib;
  sim::CostModel CM;
  std::string PreText;
};

TEST_F(SearchFallThroughTest, ApplyCandidateFallsThroughPastUnbuildableRule) {
  rewrite::RuleSet RS = load(FallThroughRules);
  std::vector<search::Candidate> Cands = search::enumerateCandidates(G, RS);
  ASSERT_EQ(Cands.size(), 1u);
  EXPECT_EQ(Cands[0].Rule, 0u); // guards pass on the masked rule...
  search::ApplyResult R = search::applyCandidate(G, Cands[0], RS, SI, CM);
  ASSERT_TRUE(R.Applied); // ...but the unmasked one is what fires
  EXPECT_LT(R.CostDelta, 0.0);
  std::string Text = graph::writeGraphText(G);
  EXPECT_EQ(Text.find("Add"), std::string::npos) << Text;
  EXPECT_EQ(G.numLiveNodes(), 2u); // Input + one Relu
}

TEST_F(SearchFallThroughTest, BeamCommitsTheFallThroughRule) {
  rewrite::RuleSet RS = load(FallThroughRules);
  RewriteStats S = rewrite::rewriteToFixpoint(G, RS, SI, beamOpts(2, 2));
  EXPECT_EQ(S.TotalFired, 1u);
  EXPECT_EQ(graph::writeGraphText(G).find("Add"), std::string::npos);
}

TEST_F(SearchFallThroughTest, AllRulesUnbuildableIsACleanRefusal) {
  rewrite::RuleSet RS = load(DeadEndRules);
  std::vector<search::Candidate> Cands = search::enumerateCandidates(G, RS);
  ASSERT_EQ(Cands.size(), 1u);
  search::ApplyResult R = search::applyCandidate(G, Cands[0], RS, SI, CM);
  EXPECT_FALSE(R.Applied);
  // The partial build's orphan tower was swept: pre-call graph, exactly.
  EXPECT_EQ(graph::writeGraphText(G), PreText);
  EXPECT_EQ(G.numLiveNodes(), 3u);
}

/// The zoo-level symptom the fall-through bug caused: beam refused every
/// MHA candidate (rule 0 unbuildable on unmasked graphs) and fixpointed
/// without the attention fusion, strictly worse than greedy.
TEST(SearchZoo, BeamFiresTheAttentionFusionLikeGreedy) {
  models::ModelEntry Model = models::hfSuite().front(); // bert-tiny
  RunResult Greedy = runModel(Model, {});
  RunResult Beam = runModel(Model, beamOpts(4, 2));
  EXPECT_EQ(Beam.Stats.TotalFired, Greedy.Stats.TotalFired);
  for (const auto &[Name, SP] : Greedy.Stats.PerPattern) {
    if (!SP.RulesFired)
      continue;
    SCOPED_TRACE(Name);
    auto It = Beam.Stats.PerPattern.find(Name);
    ASSERT_NE(It, Beam.Stats.PerPattern.end());
    EXPECT_EQ(It->second.RulesFired, SP.RulesFired);
  }
}

//===----------------------------------------------------------------------===//
// Governance composition: MaxRewrites, budgets
//===----------------------------------------------------------------------===//

/// Two independent Relu towers: exactly two commits to fixpoint, so the
/// rewrite cap has something deterministic to truncate.
constexpr const char *TowerRules = R"pypm(
pattern RR(x) { return Relu(Relu(x)); }
rule rr for RR(x) { return Relu(x); }
)pypm";

class SearchGovernanceTest : public ::testing::Test {
protected:
  SearchGovernanceTest() : G(Sig) {
    models::declareModelOps(Sig);
    Lib = dsl::compileOrDie(TowerRules, Sig);
    RS.addLibrary(*Lib);
    for (int I = 0; I != 2; ++I) {
      graph::NodeId A = G.addLeaf(
          "Input", graph::TensorType::make(term::DType::F32, {8, 8}));
      graph::NodeId R1 = G.addNode(Sig.lookup("Relu"), {A});
      G.addOutput(G.addNode(Sig.lookup("Relu"), {R1}));
    }
    SI.inferAll(G);
  }

  term::Signature Sig;
  graph::Graph G;
  graph::ShapeInference SI;
  std::unique_ptr<pattern::Library> Lib;
  rewrite::RuleSet RS;
};

TEST_F(SearchGovernanceTest, MaxRewritesCapsCommits) {
  {
    graph::Graph Copy(G);
    RewriteStats S = rewrite::rewriteToFixpoint(Copy, RS, SI, beamOpts(2, 1));
    ASSERT_EQ(S.TotalFired, 2u);
    ASSERT_TRUE(S.Status.ok());
  }
  graph::Graph Copy(G);
  RewriteOptions O = beamOpts(2, 1);
  O.MaxRewrites = 1;
  RewriteStats S = rewrite::rewriteToFixpoint(Copy, RS, SI, O);
  EXPECT_EQ(S.TotalFired, 1u);
  EXPECT_TRUE(S.hitRewriteLimit());
}

TEST_F(SearchGovernanceTest, StepCeilingExhaustsIdenticallyAcrossThreads) {
  auto Run = [&](unsigned Threads) {
    BudgetLimits L;
    L.MaxTotalSteps = 10; // trips mid-enumeration, in committed order
    Budget B(L);
    graph::Graph Copy(G);
    RewriteOptions O = beamOpts(2, 2, Threads);
    O.EngineBudget = &B;
    StressOutcome Out;
    Out.Stats = rewrite::rewriteToFixpoint(Copy, RS, SI, O);
    Out.GraphText = graph::writeGraphText(Copy);
    return Out;
  };
  StressOutcome Serial = Run(0);
  EXPECT_EQ(Serial.Stats.Status.Code, EngineStatusCode::BudgetExhausted);
  EXPECT_EQ(Serial.Stats.Status.Reason, BudgetReason::Steps);
  for (unsigned Threads : {1u, 2u, 4u, 8u})
    expectOutcomesEqual(Serial, Run(Threads),
                        "step-ceiling threads=0 vs " +
                            std::to_string(Threads));
}

//===----------------------------------------------------------------------===//
// Degenerate configurations are the greedy engine, bit for bit
//===----------------------------------------------------------------------===//

TEST(SearchDegenerate, ZeroLookaheadAndZeroWidthAreGreedyOnTheZoo) {
  auto Suite = models::hfSuite();
  ASSERT_GE(Suite.size(), 2u);
  for (size_t I = 0; I != 2; ++I) {
    const models::ModelEntry &Model = Suite[I];
    RunResult Greedy = runModel(Model, {});
    RewriteOptions NoHorizon = beamOpts(4, 0);
    expectFullyEqual(Greedy, runModel(Model, NoHorizon),
                     Model.Name + " beam lookahead=0");
    RewriteOptions NoWidth;
    NoWidth.Search = SearchStrategy::BestOfN;
    NoWidth.BeamWidth = 0;
    NoWidth.Lookahead = 2;
    expectFullyEqual(Greedy, runModel(Model, NoWidth),
                     Model.Name + " best-of-n width=0");
  }
}

TEST(SearchDegenerate, DegenerateConfigsDoNotDispatchToSearch) {
  RewriteOptions O;
  EXPECT_FALSE(search::searchActive(O)); // Greedy strategy
  O.Search = SearchStrategy::Beam;
  EXPECT_TRUE(search::searchActive(O));
  O.Lookahead = 0;
  EXPECT_FALSE(search::searchActive(O));
  O.Lookahead = 1;
  O.BeamWidth = 0;
  EXPECT_FALSE(search::searchActive(O));
}

//===----------------------------------------------------------------------===//
// --search=auto: the confluence certificate picks the engine
//===----------------------------------------------------------------------===//

/// Certified-confluent fixture: Relu(Relu(x)) -> Relu(x) self-overlaps at
/// the Relu^3 tower, every overlap is joinable, and the termination probe
/// passes — so auto must resolve to greedy and spend zero search work.
class SearchAutoCertifiedTest : public ::testing::Test {
protected:
  SearchAutoCertifiedTest() : G(Sig) {
    Lib = dsl::compileOrDie(R"(
op Relu(1);
pattern RR(x) { return Relu(Relu(x)); }
rule rr for RR(x) { return Relu(x); }
)",
                            Sig);
    RS.addLibrary(*Lib);
    graph::NodeId N = G.addLeaf(
        "Input", graph::TensorType::make(term::DType::F32, {8, 8}));
    for (int I = 0; I != 5; ++I)
      N = G.addNode(Sig.lookup("Relu"), {N});
    G.addOutput(N);
    SI.inferAll(G);
  }

  RunResult run(rewrite::RewriteOptions Opts) {
    graph::Graph Copy(G);
    RunResult R;
    R.Stats = rewrite::rewriteToFixpoint(Copy, RS, SI, Opts);
    R.GraphText = graph::writeGraphText(Copy);
    return R;
  }

  term::Signature Sig;
  graph::Graph G;
  graph::ShapeInference SI;
  std::unique_ptr<pattern::Library> Lib;
  rewrite::RuleSet RS;
  sim::CostModel CM;
};

TEST_F(SearchAutoCertifiedTest, AutoIsGreedyBitIdenticallyOnACertifiedSet) {
  analysis::critical::ConfluenceReport CR =
      analysis::critical::analyzeConfluence(RS, Sig);
  ASSERT_TRUE(CR.certified()) << CR.render();
  for (unsigned Threads : {0u, 1u, 2u, 4u, 8u}) {
    rewrite::RewriteOptions Greedy;
    Greedy.NumThreads = Threads;
    RunResult A = run(Greedy);

    // Auto with the engine running the analysis itself...
    rewrite::RewriteOptions Auto = Greedy;
    Auto.Search = SearchStrategy::Auto;
    Auto.SearchCost = &CM;
    RunResult B = run(Auto);
    expectFullyEqual(A, B,
                     "auto-vs-greedy threads=" + std::to_string(Threads));
    EXPECT_EQ(B.Stats.SearchSteps, 0u);
    EXPECT_EQ(B.Stats.SearchExpansions, 0u);

    // ...and auto dispatching from a borrowed (plan-embedded) certificate.
    rewrite::RewriteOptions AutoCert = Auto;
    AutoCert.Confluence = &CR;
    expectFullyEqual(
        A, run(AutoCert),
        "auto-with-certificate-vs-greedy threads=" + std::to_string(Threads));
  }
}

TEST_F(SearchConflictTest, AutoIsBeamBitIdenticallyOnAConflictingSet) {
  analysis::critical::ConfluenceReport CR =
      analysis::critical::analyzeConfluence(RS, Sig);
  ASSERT_EQ(CR.Overall, analysis::critical::Verdict::Conflicting)
      << CR.render();
  for (unsigned Threads : {0u, 1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(Threads);
    RewriteStats BeamStats, AutoStats;
    std::string BeamText, AutoText;
    double BeamCost = endCost(beamOpts(4, 1, Threads), &BeamStats, &BeamText);

    rewrite::RewriteOptions Auto = beamOpts(4, 1, Threads);
    Auto.Search = SearchStrategy::Auto;
    double AutoCost = endCost(Auto, &AutoStats, &AutoText);

    EXPECT_EQ(AutoText, BeamText);
    EXPECT_DOUBLE_EQ(AutoCost, BeamCost);
    EXPECT_EQ(AutoStats.TotalFired, BeamStats.TotalFired);
    EXPECT_EQ(AutoStats.SearchSteps, BeamStats.SearchSteps);
    EXPECT_EQ(AutoStats.SearchExpansions, BeamStats.SearchExpansions);
    EXPECT_GT(AutoStats.SearchSteps, 0u)
        << "auto on a conflicting set must actually search";

    // Borrowed certificate: same dispatch without re-analysis.
    rewrite::RewriteOptions AutoCert = Auto;
    AutoCert.Confluence = &CR;
    std::string CertText;
    double CertCost = endCost(AutoCert, nullptr, &CertText);
    EXPECT_EQ(CertText, BeamText);
    EXPECT_DOUBLE_EQ(CertCost, BeamCost);
  }
}

//===----------------------------------------------------------------------===//
// Stress sweeps (nightly tier: suite names carry "Stress")
//===----------------------------------------------------------------------===//

class SearchStressDegenerate : public ::testing::TestWithParam<unsigned> {};

/// 50 seeds: every degenerate beam run must be bit-identical to greedy at
/// the same thread count — same engine, same everything.
TEST_P(SearchStressDegenerate, BeamLookaheadZeroEqualsGreedy) {
  unsigned Threads = GetParam();
  for (uint64_t Seed = 0; Seed != 50; ++Seed) {
    RewriteOptions Plain;
    Plain.MaxRewrites = 100;
    Plain.NumThreads = Threads;
    StressOutcome Greedy = runStressCase(Seed, Plain);

    RewriteOptions Degenerate = Plain;
    Degenerate.Search = SearchStrategy::Beam;
    Degenerate.BeamWidth = 4;
    Degenerate.Lookahead = 0;
    expectOutcomesEqual(Greedy, runStressCase(Seed, Degenerate),
                        stressRepro(Seed, "degenerate-beam threads=" +
                                              std::to_string(Threads)));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, SearchStressDegenerate,
                         ::testing::Values(0u, 1u, 2u, 4u, 8u),
                         [](const auto &Info) {
                           return "T" + std::to_string(Info.param);
                         });

/// Real beam runs must be thread-invariant: workers only price hermetic
/// clones, so every observable — graph, counters, governance — is pinned
/// to the serial run.
TEST(SearchStressThreads, BeamIsThreadInvariantAcrossSeeds) {
  for (uint64_t Seed = 0; Seed != 12; ++Seed) {
    RewriteOptions Base;
    Base.Search = SearchStrategy::Beam;
    Base.BeamWidth = 2;
    Base.Lookahead = 2;
    Base.MaxRewrites = 16;
    StressOutcome Serial = runStressCase(Seed, Base);
    for (unsigned Threads : {1u, 2u, 4u, 8u}) {
      RewriteOptions O = Base;
      O.NumThreads = Threads;
      expectOutcomesEqual(Serial, runStressCase(Seed, O),
                          stressRepro(Seed, 0, Threads, "beam"));
    }
  }
}

/// Site-scheduled faults land on the committed enumeration path, which is
/// serial in canonical order — so a faulting beam run is bit-identical at
/// every thread count too.
TEST(SearchStressFaults, SiteScheduleIsThreadInvariantUnderBeam) {
  for (uint64_t Seed : {1u, 4u, 9u}) {
    auto Run = [&](unsigned Threads) {
      FaultInjector::Config C;
      C.SiteSeed = Seed * 31 + 7;
      C.SitePeriod = 13;
      FaultInjector F(C);
      RewriteOptions O;
      O.Search = SearchStrategy::Beam;
      O.BeamWidth = 2;
      O.Lookahead = 1;
      O.MaxRewrites = 16;
      O.NumThreads = Threads;
      O.Faults = &F;
      return runStressCase(Seed, O);
    };
    StressOutcome Serial = Run(0);
    for (unsigned Threads : {1u, 4u})
      expectOutcomesEqual(Serial, Run(Threads),
                          stressRepro(Seed, 0, Threads, "beam site-faults"));
  }
}

/// Discovery-mode composition under beam search: Batch sweeps and the
/// Incremental flag (a no-op in search mode — every sweep re-enumerates)
/// must not change any committed observable.
TEST(SearchStressCompose, BatchAndIncrementalAreObservationallyInert) {
  for (uint64_t Seed : {0u, 7u, 23u}) {
    RewriteOptions Base;
    Base.Search = SearchStrategy::Beam;
    Base.BeamWidth = 2;
    Base.Lookahead = 1;
    Base.MaxRewrites = 16;
    Base.Matcher = rewrite::MatcherKind::Plan;
    StressOutcome Plain = runStressCase(Seed, Base);

    RewriteOptions Batched = Base;
    Batched.Batch = true;
    StressOutcome B = runStressCase(Seed, Batched);
    expectOutcomesEqual(Plain, B, stressRepro(Seed, "beam batch-on"));
    EXPECT_GT(B.Stats.BatchedNodes, 0u);

    RewriteOptions Inc = Base;
    Inc.Incremental = true;
    expectOutcomesEqual(Plain, runStressCase(Seed, Inc),
                        stressRepro(Seed, "beam incremental-on"));
  }
}

/// Fuel-starved attempts quarantine on the committed path; the quarantine
/// decisions — and the run that completes around them — are identical at
/// every thread count.
TEST(SearchStressCompose, QuarantineUnderFuelStarvationIsDeterministic) {
  for (uint64_t Seed : {3u, 11u}) {
    auto Run = [&](unsigned Threads) {
      RewriteOptions O;
      O.Search = SearchStrategy::Beam;
      O.BeamWidth = 2;
      O.Lookahead = 1;
      O.MaxRewrites = 16;
      O.NumThreads = Threads;
      O.QuarantineThreshold = 2;
      O.MachineOpts.MaxSteps = 12; // starve the deeper patterns
      return runStressCase(Seed, O);
    };
    StressOutcome Serial = Run(0);
    for (unsigned Threads : {2u, 8u})
      expectOutcomesEqual(Serial, Run(Threads),
                          stressRepro(Seed, 0, Threads, "beam fuel-starved"));
  }
}

} // namespace
