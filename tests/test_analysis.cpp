//===- tests/test_analysis.cpp - Static rule-set linter tests ------------===//
///
/// Coverage contract (one positive + one no-false-positive case per
/// diagnostic class, per ISSUE 5):
///  - analysis.unsat-guard: crafted contradictions vs the cuBLAS dtype
///    dispatch (whose `(a||b) && !a`-shaped guards must stay satisfiable);
///  - analysis.vacuous-guard: tautologies vs ordinary rank guards;
///  - analysis.unreachable-alternate: wildcard-first alternates vs the
///    MHA masked/unmasked pair and AddZero's operand orders;
///  - analysis.shadowed-rule: unconditional-first rule lists and
///    wider-pattern-first entries vs FMHA (whose second rule is reachable
///    precisely because `m` is not guaranteed bound);
///  - analysis.unproductive-mu: recursion at the subject position vs
///    UnaryChain/Partition's operator-consuming recursion;
///  - analysis.rewrite-cycle: swap rules and two-rule ping-pong vs the
///    epilog pipeline.
/// Plus: every §4 std library and the assembled Both pipeline must be free
/// of error-severity findings, the engine's Lint preflight must refuse
/// error-laden rule sets without touching the graph, and on lint-clean rule
/// sets lint-on must be bit-identical to lint-off at every thread count.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "analysis/CriticalPairs.h"
#include "analysis/GuardSolver.h"
#include "analysis/Skeleton.h"
#include "dsl/Sema.h"
#include "graph/GraphIO.h"
#include "models/Zoo.h"
#include "opt/StdPatterns.h"
#include "rewrite/RewriteEngine.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace pypm;
using analysis::LintOptions;
using analysis::LintReport;

namespace {

LintReport lintSource(std::string_view Source,
                      const LintOptions &Opts = {}) {
  term::Signature Sig;
  std::unique_ptr<pattern::Library> Lib = dsl::compileOrDie(Source, Sig);
  return analysis::lintLibrary(*Lib, Sig, Opts);
}

const analysis::Finding *findCode(const LintReport &R,
                                  std::string_view Code) {
  for (const analysis::Finding &F : R.Findings)
    if (F.Code == Code)
      return &F;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Guard satisfiability
//===----------------------------------------------------------------------===//

TEST(AnalysisGuards, ContradictoryPatternGuardIsError) {
  LintReport R = lintSource(R"(
op Relu(1);
pattern P(x) {
  assert x.shape.rank == 1 && x.shape.rank == 2;
  return Relu(x);
}
rule r for P(x) { return x; }
)");
  ASSERT_EQ(R.Errors, 1u);
  const analysis::Finding *F = findCode(R, "analysis.unsat-guard");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Sev, Severity::Error);
  EXPECT_EQ(F->PatternName, "P");
  EXPECT_FALSE(R.clean());
}

TEST(AnalysisGuards, ContradictoryRuleGuardIsError) {
  LintReport R = lintSource(R"(
op Relu(1);
op Gelu(1);
pattern G(x) { return Relu(x); }
rule g for G(x) {
  assert x.shape.rank >= 4 && x.shape.rank <= 2;
  return Gelu(x);
}
)");
  const analysis::Finding *F = findCode(R, "analysis.unsat-guard");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->RuleName, "g");
  EXPECT_FALSE(R.clean());
}

TEST(AnalysisGuards, ClashingOpIdentitiesAreUnsatisfiable) {
  // Refutes via symbolic operator identity, not intervals: the two op()
  // literals are distinct names, so both equalities cannot hold.
  LintReport R = lintSource(R"(
op Relu(1);
op Const(0);
op Gelu(1);
pattern P(x) {
  assert x.op_id == op("Const") && x.op_id == op("Gelu");
  return Relu(x);
}
rule r for P(x) { return x; }
)");
  EXPECT_NE(findCode(R, "analysis.unsat-guard"), nullptr);
}

TEST(AnalysisGuards, VacuousGuardIsWarning) {
  LintReport R = lintSource(R"(
op Relu(1);
pattern V(x) {
  assert 1 <= 2;
  return Relu(x);
}
rule r for V(x) { return x; }
)");
  EXPECT_EQ(R.Errors, 0u);
  const analysis::Finding *F = findCode(R, "analysis.vacuous-guard");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Sev, Severity::Warning);
}

TEST(AnalysisGuards, SatisfiableRankGuardsReportNothing) {
  LintReport R = lintSource(R"(
op MatMul(2) class("matmul");
pattern M(x, y) {
  assert x.shape.rank >= 2 && x.shape.rank <= 5;
  return MatMul(x, y);
}
rule r for M(x, y) { return x; }
)");
  EXPECT_EQ(findCode(R, "analysis.unsat-guard"), nullptr);
  EXPECT_EQ(findCode(R, "analysis.vacuous-guard"), nullptr);
}

// The cuBLAS dispatch lowers to guards shaped `(a&&b || c&&d) && !(a&&b)`
// on the elif path — refutable only by solving the disjunction, and
// satisfiable. A naive conjunction solver would flag it; ours must not.
TEST(AnalysisGuards, CublasDtypeDispatchIsSatisfiable) {
  term::Signature Sig;
  std::unique_ptr<pattern::Library> Lib = opt::compileCublas(Sig);
  ASSERT_NE(Lib, nullptr);
  LintReport R = analysis::lintLibrary(*Lib, Sig);
  EXPECT_EQ(findCode(R, "analysis.unsat-guard"), nullptr);
  EXPECT_EQ(findCode(R, "analysis.vacuous-guard"), nullptr);
  EXPECT_TRUE(R.clean());
}

//===----------------------------------------------------------------------===//
// Dead alternates
//===----------------------------------------------------------------------===//

TEST(AnalysisAlternates, WildcardFirstAlternateShadowsRefinement) {
  LintReport R = lintSource(R"(
op Add(2);
op Relu(1);
pattern D(x, y) { return Add(x, y); }
pattern D(x, y) { return Add(Relu(x), y); }
rule r for D(x, y) { return x; }
)");
  const analysis::Finding *F = findCode(R, "analysis.unreachable-alternate");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Sev, Severity::Warning);
  EXPECT_EQ(F->Alternate, 1); // the *second* alternate is the dead one
  EXPECT_EQ(F->Loc.Line, 5u); // its own @pattern line, not the group's
}

TEST(AnalysisAlternates, IncomparableAlternatesReportNothing) {
  // Neither operand order of x+0 subsumes the other.
  LintReport R = lintSource(R"(
op Add(2);
op Zero(0);
pattern AZ(x) { return Add(x, Zero()); }
pattern AZ(x) { return Add(Zero(), x); }
rule r for AZ(x) { return x; }
)");
  EXPECT_EQ(findCode(R, "analysis.unreachable-alternate"), nullptr);
}

TEST(AnalysisAlternates, GuardedAlternateMayNotSubsume) {
  // Alternate 1 carries a guard, so its skeleton over-approximates its
  // match set and it must not be treated as covering alternate 2.
  LintReport R = lintSource(R"(
op Add(2);
op Relu(1);
pattern D(x, y) {
  assert x.shape.rank == 2;
  return Add(x, y);
}
pattern D(x, y) { return Add(Relu(x), y); }
rule r for D(x, y) { return x; }
)");
  EXPECT_EQ(findCode(R, "analysis.unreachable-alternate"), nullptr);
}

TEST(AnalysisAlternates, MhaMaskedUnmaskedPairIsClean) {
  term::Signature Sig;
  std::unique_ptr<pattern::Library> Lib = opt::compileFmha(Sig);
  ASSERT_NE(Lib, nullptr);
  LintReport R = analysis::lintLibrary(*Lib, Sig);
  EXPECT_EQ(findCode(R, "analysis.unreachable-alternate"), nullptr);
}

//===----------------------------------------------------------------------===//
// Shadowed rules
//===----------------------------------------------------------------------===//

TEST(AnalysisShadowing, UnconditionalFirstRuleShadowsLaterRules) {
  LintReport R = lintSource(R"(
op Relu(1);
op Gelu(1);
op Sigmoid(1);
pattern S(x) { return Relu(x); }
rule first for S(x) { return Gelu(x); }
rule second for S(x) { return Sigmoid(x); }
)");
  const analysis::Finding *F = findCode(R, "analysis.shadowed-rule");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Sev, Severity::Warning);
  EXPECT_EQ(F->RuleName, "second");
}

TEST(AnalysisShadowing, WiderEntryShadowsLaterEntry) {
  LintReport R = lintSource(R"(
op Add(2);
op Mul(2);
op Relu(1);
pattern Wide(x, y) { return Add(x, y); }
rule wr for Wide(x, y) { return Mul(x, y); }
pattern Narrow(x, y) { return Add(Relu(x), y); }
rule nr for Narrow(x, y) { return Mul(y, x); }
)");
  const analysis::Finding *F = findCode(R, "analysis.shadowed-rule");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->RuleName, "nr");
  EXPECT_NE(F->Message.find("'Wide'"), std::string::npos);
}

// FMHA's first rule references m, which only the masked alternate binds:
// the rule can fall through on an RHS build failure, so fuse_mha is
// reachable and must not be reported. This is the exact false positive
// the guaranteed-bound check exists to prevent.
TEST(AnalysisShadowing, FmhaFallthroughRuleIsNotShadowed) {
  term::Signature Sig;
  std::unique_ptr<pattern::Library> Lib = opt::compileFmha(Sig);
  ASSERT_NE(Lib, nullptr);
  LintReport R = analysis::lintLibrary(*Lib, Sig);
  EXPECT_EQ(findCode(R, "analysis.shadowed-rule"), nullptr);
  EXPECT_TRUE(R.clean());
}

TEST(AnalysisShadowing, GuardedFirstRuleDoesNotShadow) {
  LintReport R = lintSource(R"(
op Relu(1);
op Gelu(1);
op Sigmoid(1);
pattern S(x) { return Relu(x); }
rule first for S(x) {
  assert x.shape.rank == 2;
  return Gelu(x);
}
rule second for S(x) { return Sigmoid(x); }
)");
  EXPECT_EQ(findCode(R, "analysis.shadowed-rule"), nullptr);
}

//===----------------------------------------------------------------------===//
// μ-recursion productivity
//===----------------------------------------------------------------------===//

TEST(AnalysisMu, SubjectPositionRecursionIsError) {
  LintReport R = lintSource(R"(
op Relu(1);
pattern U(x) { return Relu(x); }
pattern U(x) { return U(x); }
)");
  const analysis::Finding *F = findCode(R, "analysis.unproductive-mu");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Sev, Severity::Error);
  EXPECT_FALSE(R.clean());
}

TEST(AnalysisMu, OperatorGuardedRecursionIsProductive) {
  // The recursive occurrence sits under Relu — each unfolding consumes an
  // operator, exactly the UnaryChain shape.
  LintReport R = lintSource(R"(
op Relu(1);
pattern Chain(x) { return Relu(x); }
pattern Chain(x) { return Relu(Chain(x)); }
rule collapse for Chain(x) { return Relu(x); }
)");
  EXPECT_EQ(findCode(R, "analysis.unproductive-mu"), nullptr);
}

TEST(AnalysisMu, StdRecursiveLibrariesAreProductive) {
  for (auto *Compile : {opt::compileUnaryChain, opt::compilePartition}) {
    term::Signature Sig;
    std::unique_ptr<pattern::Library> Lib = Compile(Sig);
    ASSERT_NE(Lib, nullptr);
    LintReport R = analysis::lintLibrary(*Lib, Sig);
    EXPECT_EQ(findCode(R, "analysis.unproductive-mu"), nullptr);
    EXPECT_TRUE(R.clean());
  }
}

//===----------------------------------------------------------------------===//
// Rewrite cycles
//===----------------------------------------------------------------------===//

TEST(AnalysisCycles, SwapRuleSelfLoopIsWarning) {
  LintReport R = lintSource(R"(
op Add(2);
pattern SwapAdd(x, y) { return Add(x, y); }
rule swap for SwapAdd(x, y) { return Add(y, x); }
)");
  const analysis::Finding *F = findCode(R, "analysis.rewrite-cycle");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Sev, Severity::Warning);
  EXPECT_EQ(F->RuleName, "swap");
}

TEST(AnalysisCycles, TwoRulePingPongIsOneCycleReport) {
  LintReport R = lintSource(R"(
op Foo(1);
op Bar(1);
pattern FA(x) { return Foo(x); }
rule a for FA(x) { return Bar(x); }
pattern FB(x) { return Bar(x); }
rule b for FB(x) { return Foo(x); }
)");
  EXPECT_EQ(R.countCode("analysis.rewrite-cycle"), 1u);
  const analysis::Finding *F = findCode(R, "analysis.rewrite-cycle");
  ASSERT_NE(F, nullptr);
  EXPECT_NE(F->Message.find("'a' -> 'b'"), std::string::npos);
}

TEST(AnalysisCycles, ShrinkingRewritesAreNotCycles) {
  // Bare-variable replacements strictly shrink the term; lowering Foo to
  // Bar and eliminating Bar is a terminating chain, not a cycle.
  LintReport R = lintSource(R"(
op Foo(1);
op Bar(1);
pattern FA(x) { return Foo(x); }
rule a for FA(x) { return Bar(x); }
pattern FB(x) { return Bar(x); }
rule b for FB(x) { return x; }
)");
  EXPECT_EQ(findCode(R, "analysis.rewrite-cycle"), nullptr);
}

TEST(AnalysisCycles, EpilogPipelineHasNoCycle) {
  term::Signature Sig;
  std::unique_ptr<pattern::Library> Lib = opt::compileEpilog(Sig);
  ASSERT_NE(Lib, nullptr);
  LintReport R = analysis::lintLibrary(*Lib, Sig);
  EXPECT_EQ(findCode(R, "analysis.rewrite-cycle"), nullptr);
  EXPECT_TRUE(R.clean());
}

TEST(AnalysisCycles, UnaryChainSelfCollapseIsTheKnownWarning) {
  term::Signature Sig;
  std::unique_ptr<pattern::Library> Lib = opt::compileUnaryChain(Sig);
  ASSERT_NE(Lib, nullptr);
  LintReport R = analysis::lintLibrary(*Lib, Sig);
  // Relu(x) can re-match the chain pattern: a legitimate warning — the
  // engine's fixpoint caps govern it — but not an error.
  EXPECT_EQ(R.countCode("analysis.rewrite-cycle"), 1u);
  EXPECT_TRUE(R.clean());
}

//===----------------------------------------------------------------------===//
// Opaque RHS operators (notes)
//===----------------------------------------------------------------------===//

TEST(AnalysisNotes, UnknownRhsOperatorIsNoted) {
  term::Signature Sig;
  std::unique_ptr<pattern::Library> Lib = dsl::compileOrDie(R"(
op MatMul(2) class("matmul");
op NewKernel(2);
pattern M(x, y) { return MatMul(x, y); }
rule m for M(x, y) { return NewKernel(x, y); }
)",
                                                           Sig);
  graph::ShapeInference SI;
  LintOptions Opts;
  Opts.Shapes = &SI;
  Opts.CostModelNotes = true;
  LintReport R = analysis::lintLibrary(*Lib, Sig, Opts);
  EXPECT_NE(findCode(R, "analysis.opaque-rhs-op"), nullptr);
  EXPECT_NE(findCode(R, "analysis.generic-cost"), nullptr);
  EXPECT_TRUE(R.clean()); // notes never make a rule set dirty
}

TEST(AnalysisNotes, CoveredRhsOperatorsAreQuiet) {
  term::Signature Sig;
  std::unique_ptr<pattern::Library> Lib = opt::compileFmha(Sig);
  ASSERT_NE(Lib, nullptr);
  graph::ShapeInference SI;
  LintOptions Opts;
  Opts.Shapes = &SI;
  Opts.CostModelNotes = true;
  LintReport R = analysis::lintLibrary(*Lib, Sig, Opts);
  // FMHA / FMHAMasked have both inference rules and specialized costs.
  EXPECT_EQ(findCode(R, "analysis.opaque-rhs-op"), nullptr);
  EXPECT_EQ(findCode(R, "analysis.generic-cost"), nullptr);
}

//===----------------------------------------------------------------------===//
// The §4 libraries and the assembled pipeline are lint-clean
//===----------------------------------------------------------------------===//

TEST(AnalysisStdPatterns, AllLibrariesErrorFree) {
  struct {
    const char *Name;
    std::unique_ptr<pattern::Library> (*Compile)(term::Signature &);
  } const Libs[] = {
      {"fmha", opt::compileFmha},
      {"epilog", opt::compileEpilog},
      {"cublas", opt::compileCublas},
      {"unarychain", opt::compileUnaryChain},
      {"partition", opt::compilePartition},
  };
  for (const auto &L : Libs) {
    SCOPED_TRACE(L.Name);
    term::Signature Sig;
    std::unique_ptr<pattern::Library> Lib = L.Compile(Sig);
    ASSERT_NE(Lib, nullptr);
    LintReport R = analysis::lintLibrary(*Lib, Sig);
    EXPECT_TRUE(R.clean()) << R.renderAll();
  }
}

TEST(AnalysisStdPatterns, BothPipelineErrorFree) {
  term::Signature Sig;
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
  graph::ShapeInference SI;
  LintOptions Opts;
  Opts.Shapes = &SI;
  LintReport R = analysis::lintRuleSet(Pipe.Rules, Sig, Opts);
  EXPECT_TRUE(R.clean()) << R.renderAll();
}

//===----------------------------------------------------------------------===//
// Locations, rendering, report plumbing
//===----------------------------------------------------------------------===//

TEST(AnalysisReport, FindingsCarryDslLocations) {
  LintReport R = lintSource(R"(
op Relu(1);
pattern P(x) {
  assert x.shape.rank == 1 && x.shape.rank == 2;
  return Relu(x);
}
rule r for P(x) { return x; }
)");
  const analysis::Finding *F = findCode(R, "analysis.unsat-guard");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Loc.Line, 3u); // the pattern alternate's own line
  EXPECT_EQ(F->render(), "3:1: error[analysis.unsat-guard]: " + F->Message);
}

TEST(AnalysisReport, BuilderApiFallsBackToNames) {
  // No DSL involved: patterns built through the arena have no locations,
  // so findings must still identify the culprit by name alone.
  term::Signature Sig;
  pattern::PatternArena PA;
  term::OpId Add = Sig.addOp("Add", 2);
  pattern::NamedPattern NP;
  NP.Name = Symbol::intern("Swap");
  NP.Params = {Symbol::intern("x"), Symbol::intern("y")};
  NP.Pat = PA.app(Add, {PA.var("x"), PA.var("y")});
  pattern::RewriteRule Rule;
  Rule.Name = Symbol::intern("swap");
  Rule.PatternName = NP.Name;
  Rule.Rhs = PA.rhsApp(Add, {PA.rhsVar(Symbol::intern("y")),
                             PA.rhsVar(Symbol::intern("x"))});
  rewrite::RuleSet RS;
  RS.addPattern(NP, {&Rule});
  LintReport R = analysis::lintRuleSet(RS, Sig);
  const analysis::Finding *F = findCode(R, "analysis.rewrite-cycle");
  ASSERT_NE(F, nullptr);
  EXPECT_FALSE(F->Loc.isValid());
  EXPECT_EQ(F->render().rfind("warning[analysis.rewrite-cycle]: ", 0), 0u)
      << "no location prefix expected: " << F->render();
  EXPECT_NE(F->Message.find("'swap'"), std::string::npos);
}

TEST(AnalysisReport, JsonShapeAndCounts) {
  LintReport R = lintSource(R"(
op Add(2);
pattern SwapAdd(x, y) { return Add(x, y); }
rule swap for SwapAdd(x, y) { return Add(y, x); }
)");
  ASSERT_EQ(R.Warnings, 1u);
  std::string J = R.json();
  EXPECT_NE(J.find("\"code\":\"analysis.rewrite-cycle\""), std::string::npos);
  EXPECT_NE(J.find("\"errors\":0"), std::string::npos);
  EXPECT_NE(J.find("\"warnings\":1"), std::string::npos);
}

TEST(AnalysisReport, ToDiagnosticsPreservesSeverityAndCode) {
  LintReport R = lintSource(R"(
op Relu(1);
pattern U(x) { return U(x); }
)");
  DiagnosticEngine DE;
  R.toDiagnostics(DE);
  ASSERT_TRUE(DE.hasErrors());
  EXPECT_EQ(DE.errorCount(), R.Errors);
  EXPECT_NE(DE.renderAll().find("error[analysis.unproductive-mu]"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Engine preflight (RewriteOptions::Lint)
//===----------------------------------------------------------------------===//

std::unique_ptr<graph::Graph> tinyGraph(term::Signature &Sig) {
  auto G = std::make_unique<graph::Graph>(Sig);
  term::OpId In = Sig.getOrAddOp("Input", 0);
  term::OpId Relu = Sig.getOrAddOp("Relu", 1);
  graph::NodeId A = G->addNode(In, {});
  G->addNode(Relu, {A});
  return G;
}

TEST(AnalysisPreflight, ErrorFindingsRefuseTheRun) {
  term::Signature Sig;
  std::unique_ptr<pattern::Library> Lib = dsl::compileOrDie(R"(
op Relu(1);
op Gelu(1);
pattern P(x) {
  assert x.shape.rank == 1 && x.shape.rank == 2;
  return Relu(x);
}
rule r for P(x) { return Gelu(x); }
)",
                                                            Sig);
  rewrite::RuleSet RS;
  RS.addLibrary(*Lib);
  auto G = tinyGraph(Sig);
  std::string Before = graph::writeGraphText(*G);

  rewrite::RewriteOptions Opts;
  Opts.Lint = true;
  DiagnosticEngine Diags;
  Opts.Diags = &Diags;
  rewrite::RewriteStats Stats =
      rewrite::rewriteToFixpoint(*G, RS, graph::ShapeInference(), Opts);

  EXPECT_EQ(Stats.Status.Code, EngineStatusCode::LintRejected);
  EXPECT_EQ(Stats.Passes, 0u);
  EXPECT_EQ(Stats.TotalFired, 0u);
  EXPECT_EQ(graph::writeGraphText(*G), Before) << "graph must be untouched";
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.renderAll().find("analysis.unsat-guard"),
            std::string::npos);
}

TEST(AnalysisPreflight, LintRejectionUnderSearchAndIncrementalIsInert) {
  // S3: the preflight refusal must compose with the cost-directed search
  // and the incremental discovery mode — a refused run spends zero search
  // work (no clones priced, no steps) and leaves the graph byte-identical,
  // for beam, auto, and their --incremental combinations alike.
  term::Signature Sig;
  std::unique_ptr<pattern::Library> Lib = dsl::compileOrDie(R"(
op Relu(1);
op Gelu(1);
pattern P(x) {
  assert x.shape.rank == 1 && x.shape.rank == 2;
  return Relu(x);
}
rule r for P(x) { return Gelu(x); }
)",
                                                            Sig);
  rewrite::RuleSet RS;
  RS.addLibrary(*Lib);
  auto G = tinyGraph(Sig);
  std::string Before = graph::writeGraphText(*G);

  struct Combo {
    rewrite::SearchStrategy Search;
    bool Incremental;
    const char *Label;
  };
  const Combo Combos[] = {
      {rewrite::SearchStrategy::Beam, false, "beam"},
      {rewrite::SearchStrategy::Beam, true, "beam+incremental"},
      {rewrite::SearchStrategy::Auto, false, "auto"},
      {rewrite::SearchStrategy::Auto, true, "auto+incremental"},
  };
  sim::CostModel CM;
  for (const Combo &C : Combos) {
    SCOPED_TRACE(C.Label);
    rewrite::RewriteOptions Opts;
    Opts.Lint = true;
    Opts.Search = C.Search;
    Opts.BeamWidth = 2;
    Opts.Lookahead = 1;
    Opts.SearchCost = &CM;
    Opts.Incremental = C.Incremental;
    rewrite::RewriteStats Stats =
        rewrite::rewriteToFixpoint(*G, RS, graph::ShapeInference(), Opts);
    EXPECT_EQ(Stats.Status.Code, EngineStatusCode::LintRejected);
    EXPECT_EQ(Stats.TotalFired, 0u);
    EXPECT_EQ(Stats.SearchSteps, 0u);
    EXPECT_EQ(Stats.SearchExpansions, 0u);
    EXPECT_EQ(graph::writeGraphText(*G), Before)
        << "refused run must leave the graph byte-identical";
  }
}

TEST(AnalysisPreflight, WarningsDoNotRefuseTheRun) {
  term::Signature Sig;
  std::unique_ptr<pattern::Library> Lib = dsl::compileOrDie(R"(
op Input(0);
op Relu(1);
op Gelu(1);
pattern P(x) { return Relu(x); }
rule keep for P(x) { return Gelu(x); }
rule dead for P(x) { return x; }
)",
                                                            Sig);
  rewrite::RuleSet RS;
  RS.addLibrary(*Lib);
  auto G = tinyGraph(Sig);

  rewrite::RewriteOptions Opts;
  Opts.Lint = true;
  DiagnosticEngine Diags;
  Opts.Diags = &Diags;
  rewrite::RewriteStats Stats =
      rewrite::rewriteToFixpoint(*G, RS, graph::ShapeInference(), Opts);

  EXPECT_EQ(Stats.Status.Code, EngineStatusCode::Completed);
  EXPECT_EQ(Stats.TotalFired, 1u); // Relu -> Gelu fired despite the warning
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_NE(Diags.renderAll().find("analysis.shadowed-rule"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Critical pairs and confluence certificates (analysis/CriticalPairs.h)
//===----------------------------------------------------------------------===//

using analysis::critical::ConfluenceReport;
using analysis::critical::Verdict;

ConfluenceReport analyzeSource(std::string_view Source) {
  term::Signature Sig;
  std::unique_ptr<pattern::Library> Lib = dsl::compileOrDie(Source, Sig);
  return analysis::critical::analyzeConfluence(*Lib, Sig);
}

constexpr const char *TowerSource = R"(
op Relu(1);
pattern RR(x) { return Relu(Relu(x)); }
rule rr for RR(x) { return Relu(x); }
)";

constexpr const char *TransposeConflictSource = R"(
op MatMul(2);
op Trans(1);
pattern TT(x) { return Trans(Trans(x)); }
rule tt for TT(x) { return x; }
pattern MMTT(x, y) { return MatMul(Trans(x), Trans(y)); }
rule hoist for MMTT(x, y) { return Trans(MatMul(y, x)); }
)";

TEST(AnalysisConfluence, TowerCollapseCertifies) {
  // Relu(Relu(x)) -> Relu(x): one self-overlap (the Relu^3 tower), both
  // reducts normalize to Relu(x), and the termination probe passes.
  ConfluenceReport R = analyzeSource(TowerSource);
  EXPECT_EQ(R.Overall, Verdict::Certified);
  EXPECT_TRUE(R.certified());
  EXPECT_GE(R.PairsExamined, 1u);
  EXPECT_EQ(R.PairsExamined, R.PairsJoinable);
  EXPECT_EQ(R.PairsConflicting, 0u);
  EXPECT_TRUE(R.CertifiedRules.count("rr"));
  const analysis::Finding *Cert = nullptr;
  for (const analysis::Finding &F : R.Findings)
    if (F.Code == "analysis.certified-confluent")
      Cert = &F;
  ASSERT_NE(Cert, nullptr);
  EXPECT_EQ(Cert->Sev, Severity::Note);
  std::vector<std::string> Rules{"rr"};
  EXPECT_TRUE(R.joinableAmong(Rules));
}

TEST(AnalysisConfluence, TransposeHoistConflictCarriesBothNormalForms) {
  // Peak MatMul(Trans(Trans(z)), Trans(y)): collapsing the double
  // transpose first kills the hoist's match, hoisting first strands a
  // Trans over the MatMul — genuinely distinct normal forms.
  ConfluenceReport R = analyzeSource(TransposeConflictSource);
  EXPECT_EQ(R.Overall, Verdict::Conflicting);
  EXPECT_FALSE(R.certified());
  EXPECT_GE(R.PairsConflicting, 1u);
  const analysis::Finding *CP = nullptr;
  for (const analysis::Finding &F : R.Findings)
    if (F.Code == "analysis.critical-pair")
      CP = &F;
  ASSERT_NE(CP, nullptr);
  EXPECT_EQ(CP->Sev, Severity::Warning);
  // The witness message names both rules and reproduces both normal forms.
  EXPECT_NE(CP->Message.find("'tt'"), std::string::npos) << CP->Message;
  EXPECT_NE(CP->Message.find("'hoist'"), std::string::npos) << CP->Message;
  EXPECT_NE(CP->Message.find("witness"), std::string::npos);
  EXPECT_NE(CP->Message.find("normal form"), std::string::npos);
  std::vector<std::string> Pair{"tt", "hoist"};
  EXPECT_FALSE(R.joinableAmong(Pair));
}

TEST(AnalysisConfluence, AlphaEquivalentReductsAreJoinable) {
  // Neg(Neg(x)) -> x self-overlaps at Neg^3; both reducts reach Neg(x)
  // but delete *different* nodes of the shared peak. The canonical-form
  // comparison must see through the node renumbering — raw graph text
  // would report a spurious divergence here.
  ConfluenceReport R = analyzeSource(R"(
op Neg(1);
pattern DN(x) { return Neg(Neg(x)); }
rule dn for DN(x) { return x; }
)");
  EXPECT_EQ(R.Overall, Verdict::Certified) << R.render();
  EXPECT_EQ(R.PairsConflicting, 0u);
}

TEST(AnalysisConfluence, SwapRuleFailsTheTerminationProbe) {
  // Add(x,y) -> Add(y,x) has zero critical pairs yet never terminates:
  // joinable overlaps alone prove only local confluence, so the probe
  // must keep the verdict out of Certified.
  ConfluenceReport R = analyzeSource(R"(
op Add(2);
pattern SwapAdd(x, y) { return Add(x, y); }
rule swap for SwapAdd(x, y) { return Add(y, x); }
)");
  EXPECT_NE(R.Overall, Verdict::Certified);
  EXPECT_FALSE(R.certified());
  EXPECT_FALSE(R.CertifiedRules.count("swap"));
  const analysis::Finding *F = nullptr;
  for (const analysis::Finding &G : R.Findings)
    if (G.Code == "analysis.joinability-unknown")
      F = &G;
  ASSERT_NE(F, nullptr);
  EXPECT_NE(F->Message.find("termination probe"), std::string::npos);
}

TEST(AnalysisConfluence, MuRecursionBailsOutToUnknown) {
  // μ-recursive patterns have no finite flat first-order reading; the
  // analysis must degrade to Unknown, never silently claim "no overlaps".
  term::Signature Sig;
  std::unique_ptr<pattern::Library> Lib = opt::compileUnaryChain(Sig);
  ASSERT_NE(Lib, nullptr);
  ConfluenceReport R = analysis::critical::analyzeConfluence(*Lib, Sig);
  EXPECT_EQ(R.Overall, Verdict::Unknown);
  EXPECT_FALSE(R.certified());
  const analysis::Finding *F = nullptr;
  for (const analysis::Finding &G : R.Findings)
    if (G.Code == "analysis.joinability-unknown")
      F = &G;
  ASSERT_NE(F, nullptr);
  EXPECT_NE(F->Message.find("no flat first-order reading"),
            std::string::npos);
}

TEST(AnalysisConfluence, FunVarEpilogLibraryCertifies) {
  // Function-variable patterns (the Fig. 14 epilog idiom) flatten via
  // funvar unification; the std epilog library has no diverging overlap.
  term::Signature Sig;
  std::unique_ptr<pattern::Library> Lib = opt::compileEpilog(Sig);
  ASSERT_NE(Lib, nullptr);
  ConfluenceReport R = analysis::critical::analyzeConfluence(*Lib, Sig);
  EXPECT_EQ(R.Overall, Verdict::Certified) << R.render();
}

TEST(AnalysisConfluence, FindingsRankConflictsFirst) {
  // One conflicting overlap plus a μ bail-out in the same set: the
  // report lists analysis.critical-pair before analysis.joinability-
  // unknown, notes last.
  ConfluenceReport R = analyzeSource(TransposeConflictSource);
  ASSERT_FALSE(R.Findings.empty());
  int LastRank = 0;
  for (const analysis::Finding &F : R.Findings) {
    int Rank = F.Code == "analysis.critical-pair"        ? 0
               : F.Code == "analysis.joinability-unknown" ? 1
                                                          : 2;
    EXPECT_GE(Rank, LastRank) << F.Code;
    LastRank = Rank;
  }
}

TEST(AnalysisConfluence, CertificateRoundTripsThroughTheCodec) {
  for (const char *Source : {TowerSource, TransposeConflictSource}) {
    SCOPED_TRACE(Source);
    ConfluenceReport R = analyzeSource(Source);
    std::string Bytes = analysis::critical::serializeConfluence(R);
    std::string Err;
    std::unique_ptr<ConfluenceReport> R2 =
        analysis::critical::deserializeConfluence(Bytes, &Err);
    ASSERT_NE(R2, nullptr) << Err;
    EXPECT_EQ(R2->Overall, R.Overall);
    EXPECT_EQ(R2->PairsExamined, R.PairsExamined);
    EXPECT_EQ(R2->PairsJoinable, R.PairsJoinable);
    EXPECT_EQ(R2->PairsConflicting, R.PairsConflicting);
    EXPECT_EQ(R2->PairsUnknown, R.PairsUnknown);
    EXPECT_EQ(R2->CertifiedRules, R.CertifiedRules);
    EXPECT_EQ(R2->UnresolvedPairs, R.UnresolvedPairs);
    ASSERT_EQ(R2->Findings.size(), R.Findings.size());
    for (size_t I = 0; I != R.Findings.size(); ++I) {
      EXPECT_EQ(R2->Findings[I].Sev, R.Findings[I].Sev);
      EXPECT_EQ(R2->Findings[I].Code, R.Findings[I].Code);
      EXPECT_EQ(R2->Findings[I].Message, R.Findings[I].Message);
      EXPECT_EQ(R2->Findings[I].RuleName, R.Findings[I].RuleName);
    }
  }
}

//===----------------------------------------------------------------------===//
// S1: the certificate downgrades proven-joinable rewrite cycles
//===----------------------------------------------------------------------===//

TEST(AnalysisCycles, CertificateDowngradesProvenJoinableCycleToNote) {
  term::Signature Sig;
  std::unique_ptr<pattern::Library> Lib = dsl::compileOrDie(TowerSource, Sig);
  ConfluenceReport CR = analysis::critical::analyzeConfluence(*Lib, Sig);
  ASSERT_TRUE(CR.certified());

  LintOptions Opts;
  Opts.Confluence = &CR;
  LintReport R = analysis::lintLibrary(*Lib, Sig, Opts);
  const analysis::Finding *F = findCode(R, "analysis.rewrite-cycle");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Sev, Severity::Note);
  EXPECT_NE(F->Message.find("cannot diverge"), std::string::npos);
  EXPECT_EQ(R.Warnings, 0u);

  // Without the certificate the same cycle stays the pinned warning.
  LintReport Plain = analysis::lintLibrary(*Lib, Sig);
  const analysis::Finding *F0 = findCode(Plain, "analysis.rewrite-cycle");
  ASSERT_NE(F0, nullptr);
  EXPECT_EQ(F0->Sev, Severity::Warning);
}

TEST(AnalysisCycles, UnprovenCycleStaysWarningUnderCertificate) {
  // The swap rule's cycle is NOT proved joinable (its termination probe
  // fails), so passing the certificate must not downgrade it.
  term::Signature Sig;
  std::unique_ptr<pattern::Library> Lib = dsl::compileOrDie(R"(
op Add(2);
pattern SwapAdd(x, y) { return Add(x, y); }
rule swap for SwapAdd(x, y) { return Add(y, x); }
)",
                                                            Sig);
  ConfluenceReport CR = analysis::critical::analyzeConfluence(*Lib, Sig);
  ASSERT_FALSE(CR.certified());
  LintOptions Opts;
  Opts.Confluence = &CR;
  LintReport R = analysis::lintLibrary(*Lib, Sig, Opts);
  const analysis::Finding *F = findCode(R, "analysis.rewrite-cycle");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Sev, Severity::Warning);
}

//===----------------------------------------------------------------------===//
// S2: stable severity-then-location report order
//===----------------------------------------------------------------------===//

TEST(AnalysisReport, SortFindingsOrdersSeverityThenLocation) {
  LintReport R;
  auto Mk = [](Severity Sev, unsigned Line, unsigned Col,
               std::string Code) {
    analysis::Finding F;
    F.Sev = Sev;
    F.Loc = {Line, Col};
    F.Code = std::move(Code);
    return F;
  };
  R.Findings.push_back(Mk(Severity::Note, 1, 1, "analysis.opaque-rhs-op"));
  R.Findings.push_back(Mk(Severity::Warning, 9, 2, "analysis.vacuous-guard"));
  R.Findings.push_back(Mk(Severity::Error, 5, 3, "analysis.unsat-guard"));
  R.Findings.push_back(Mk(Severity::Warning, 2, 8, "analysis.vacuous-guard"));
  R.Findings.push_back(Mk(Severity::Warning, 2, 4, "analysis.shadowed-rule"));
  R.sortFindings();
  ASSERT_EQ(R.Findings.size(), 5u);
  EXPECT_EQ(R.Findings[0].Sev, Severity::Error);
  EXPECT_EQ(R.Findings[1].Sev, Severity::Warning);
  EXPECT_EQ(R.Findings[1].Loc.Line, 2u);
  EXPECT_EQ(R.Findings[1].Loc.Col, 4u);
  EXPECT_EQ(R.Findings[2].Loc.Line, 2u);
  EXPECT_EQ(R.Findings[2].Loc.Col, 8u);
  EXPECT_EQ(R.Findings[3].Loc.Line, 9u);
  EXPECT_EQ(R.Findings[4].Sev, Severity::Note);
}

TEST(AnalysisReport, LinterEmitsSortedReports) {
  // A fixture producing an error (unsat guard, late in the file) plus an
  // earlier warning: the error must still come first.
  LintReport R = lintSource(R"(
op Relu(1);
op Gelu(1);
pattern W(x) { assert 1 <= 2; return Relu(x); }
rule w for W(x) { return Gelu(x); }
pattern E(x) { assert x.shape.rank == 1 && x.shape.rank == 2; return Relu(x); }
rule e for E(x) { return Gelu(x); }
)");
  ASSERT_GE(R.Findings.size(), 2u);
  for (size_t I = 1; I < R.Findings.size(); ++I) {
    EXPECT_LE(static_cast<int>(R.Findings[I].Sev),
              static_cast<int>(R.Findings[I - 1].Sev));
    if (R.Findings[I].Sev == R.Findings[I - 1].Sev) {
      EXPECT_GE(R.Findings[I].Loc.Line, R.Findings[I - 1].Loc.Line);
    }
  }
  EXPECT_EQ(R.Findings.front().Sev, Severity::Error);
}

//===----------------------------------------------------------------------===//
// Lint-on ≡ lint-off: the preflight provably never alters engine results
//===----------------------------------------------------------------------===//

struct RunResult {
  std::string GraphText;
  rewrite::RewriteStats Stats;
};

RunResult runModel(const models::ModelEntry &Model,
                   rewrite::RewriteOptions Opts) {
  term::Signature Sig;
  auto G = Model.Build(Sig);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
  RunResult R;
  R.Stats = rewrite::rewriteToFixpoint(*G, Pipe.Rules,
                                       graph::ShapeInference(), Opts);
  R.GraphText = graph::writeGraphText(*G);
  return R;
}

void expectEquivalent(const RunResult &Off, const RunResult &On,
                      const std::string &Label) {
  SCOPED_TRACE(Label);
  EXPECT_EQ(Off.GraphText, On.GraphText);
  const rewrite::RewriteStats &A = Off.Stats;
  const rewrite::RewriteStats &B = On.Stats;
  EXPECT_EQ(A.Passes, B.Passes);
  EXPECT_EQ(A.NodesVisited, B.NodesVisited);
  EXPECT_EQ(A.TotalMatches, B.TotalMatches);
  EXPECT_EQ(A.TotalFired, B.TotalFired);
  EXPECT_EQ(A.NodesSwept, B.NodesSwept);
  EXPECT_EQ(A.Status, B.Status);
  ASSERT_EQ(A.PerPattern.size(), B.PerPattern.size());
  for (const auto &[Name, SA] : A.PerPattern) {
    SCOPED_TRACE(Name);
    auto It = B.PerPattern.find(Name);
    ASSERT_NE(It, B.PerPattern.end());
    const rewrite::PatternStats &SB = It->second;
    EXPECT_EQ(SA.Attempts, SB.Attempts);
    EXPECT_EQ(SA.RootSkips, SB.RootSkips);
    EXPECT_EQ(SA.Matches, SB.Matches);
    EXPECT_EQ(SA.RulesFired, SB.RulesFired);
    EXPECT_EQ(SA.GuardRejects, SB.GuardRejects);
    EXPECT_EQ(SA.MachineSteps, SB.MachineSteps);
    EXPECT_EQ(SA.Backtracks, SB.Backtracks);
  }
}

class LintDifferentialTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(LintDifferentialTest, ZooIdenticalWithAndWithoutLint) {
  unsigned Threads = GetParam();
  auto RunSuite = [&](const std::vector<models::ModelEntry> &Suite) {
    for (const models::ModelEntry &Model : Suite) {
      rewrite::RewriteOptions Off;
      Off.NumThreads = Threads;
      RunResult WithoutLint = runModel(Model, Off);
      rewrite::RewriteOptions On = Off;
      On.Lint = true;
      RunResult WithLint = runModel(Model, On);
      EXPECT_EQ(WithLint.Stats.Status.Code, EngineStatusCode::Completed);
      expectEquivalent(WithoutLint, WithLint,
                       Model.Name + " @" + std::to_string(Threads));
    }
  };
  RunSuite(models::hfSuite());
  RunSuite(models::tvSuite());
}

INSTANTIATE_TEST_SUITE_P(Threads, LintDifferentialTest,
                         ::testing::Values(0u, 1u, 2u, 4u, 8u));

} // namespace
