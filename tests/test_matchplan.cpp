//===- tests/test_matchplan.cpp - MatchPlan ≡ FastMatcher ≡ Machine ------------===//
///
/// The MatchPlan subsystem compiles a whole rule set into one shared
/// discrimination-tree bytecode program (plan::Program) executed by
/// plan::Interpreter. These tests pin its equivalence to the two existing
/// matchers at every level:
///
///  - per-attempt: identical terminal status, first witness, resume()
///    stream, and step counters against FastMatcher (and, via
///    test_fastmatcher's equivalence, the reference Machine of
///    Figs. 17-18) — on the paper's feature patterns and on thousands of
///    random (pattern, term) pairs;
///  - prefilter: the discrimination tree's candidate mask is sound (it
///    never prunes an entry that would have matched);
///  - engine: rewriteToFixpoint with Matcher=Plan commits the identical
///    rewrite sequence as the fast matcher on the whole model zoo, at
///    every thread count, and stays bit-identically deterministic across
///    thread counts under budgets, quarantine, and injected faults;
///  - artifact: a .pypmplan round-trip drives the engine to the same
///    result as an in-run compile.
///
//===----------------------------------------------------------------------===//

#include "StressHarness.h"
#include "TestHelpers.h"

#include "graph/GraphIO.h"
#include "match/FastMatcher.h"
#include "models/Transformers.h"
#include "models/Zoo.h"
#include "opt/StdPatterns.h"
#include "plan/Interpreter.h"
#include "plan/PlanBuilder.h"
#include "plan/PlanSerializer.h"
#include "rewrite/RewriteEngine.h"
#include "support/FaultInjection.h"
#include "support/Random.h"

#include <deque>
#include <functional>

using namespace pypm;
using namespace pypm::match;
using namespace pypm::pattern;
using pypm::testing::CoreFixture;
using pypm::testing::expectOutcomesEqual;
using pypm::testing::runStressCase;
using pypm::testing::StressOutcome;
using pypm::testing::stressRepro;

namespace {

bool isUserVisibleSym(Symbol S) {
  return S.str().find('$') == std::string_view::npos;
}

/// Restriction used where μ-unfold freshening makes binder names differ
/// between engines (see test_fastmatcher.cpp). The interpreter shares
/// FastMatcher's memoization, so against FastMatcher we compare whole
/// witnesses; against the reference machine only the visible part.
Witness restrictVisible(const Witness &W) {
  Witness Out;
  for (const auto &[K, V] : W.Theta)
    if (isUserVisibleSym(K))
      Out.Theta.bind(K, V);
  for (const auto &[K, V] : W.Phi)
    if (isUserVisibleSym(K))
      Out.Phi.bind(K, V);
  return Out;
}

void expectStatsEqual(const MachineStats &A, const MachineStats &B) {
  EXPECT_EQ(A.Steps, B.Steps);
  EXPECT_EQ(A.Backtracks, B.Backtracks);
  EXPECT_EQ(A.MuUnfolds, B.MuUnfolds);
  EXPECT_EQ(A.VarBinds, B.VarBinds);
  EXPECT_EQ(A.GuardEvals, B.GuardEvals);
  EXPECT_EQ(A.GuardStuck, B.GuardStuck);
}

class MatchPlanTest : public CoreFixture {
protected:
  /// Compiles \p P as the sole entry of a program. The NamedPattern and
  /// Program must outlive the interpreter runs, hence the deques.
  const plan::Program &compileSingle(const Pattern *P) {
    Defs.push_back(NamedPattern{Symbol::intern("P"), {}, {}, P});
    rewrite::RuleSet RS;
    RS.addPattern(Defs.back());
    Progs.push_back(plan::PlanBuilder::compile(RS, Sig));
    return Progs.back();
  }

  /// Reference machine vs FastMatcher vs compiled plan, single attempt.
  void expectAgree(const Pattern *P, term::TermRef T,
                   Machine::Options Opts = {}) {
    MatchResult Ref = matchPattern(P, T, Arena, Opts);
    MatchResult Fast = FastMatcher::run(P, T, Arena, Opts);
    const plan::Program &Prog = compileSingle(P);
    MatchResult Plan = plan::Interpreter::run(Prog, 0, T, Arena, Opts);
    ASSERT_EQ(Plan.Status, Ref.Status)
        << P->toString(Sig) << " vs " << Arena.toString(T);
    if (Ref.Status == MachineStatus::Success) {
      // Bit-identical against FastMatcher (shared unfold memoization);
      // visible-restricted against the per-retry-freshening machine.
      EXPECT_EQ(Plan.W, Fast.W)
          << P->toString(Sig) << " vs " << Arena.toString(T) << "\n  fast "
          << toString(Fast.W, Sig) << "\n  plan " << toString(Plan.W, Sig);
      EXPECT_EQ(restrictVisible(Plan.W), restrictVisible(Ref.W));
    }
    expectStatsEqual(Plan.Stats, Fast.Stats);
    // The tree prefilter must never prune an entry that matches.
    std::vector<uint8_t> Mask;
    Prog.candidates(T, Mask);
    ASSERT_EQ(Mask.size(), 1u);
    if (Ref.Status == MachineStatus::Success) {
      EXPECT_TRUE(Mask[0]) << P->toString(Sig) << " pruned against "
                           << Arena.toString(T);
    }
  }

  std::deque<NamedPattern> Defs;
  std::deque<plan::Program> Progs;
};

} // namespace

TEST_F(MatchPlanTest, AgreesOnBasicForms) {
  expectAgree(v("x"), t("F(C, D)"));
  expectAgree(app("Pair", {v("x"), v("x")}), t("Pair(C, C)"));
  expectAgree(app("Pair", {v("x"), v("x")}), t("Pair(C, D)"));
  expectAgree(app("Trans", {v("x")}), t("Softmax1(A)"));
}

TEST_F(MatchPlanTest, AgreesOnAlternatesAndGuards) {
  const GuardExpr *RankIs2 = PA.binary(
      GuardKind::Eq, PA.attr(Symbol::intern("x"), Symbol::intern("rank")),
      PA.intLit(2));
  const Pattern *P =
      PA.alt(PA.guarded(v("x"), RankIs2), app("Trans", {v("y")}));
  expectAgree(P, t("A[rank=2]"));
  expectAgree(P, t("Trans(B[rank=7])"));
  expectAgree(P, t("C"));
}

TEST_F(MatchPlanTest, AgreesOnExistsAndConstraints) {
  Symbol X = Symbol::intern("x"), Y = Symbol::intern("y");
  const Pattern *P = PA.exists(
      Y, PA.matchConstraint(PA.var(X), app("Trans", {PA.var(Y)}), X));
  expectAgree(P, t("Trans(B)"));
  expectAgree(P, t("Softmax1(B)"));
}

TEST_F(MatchPlanTest, AgreesOnRecursionIncludingFuelExhaustion) {
  Symbol U = Symbol::intern("U"), X = Symbol::intern("x"),
         F = Symbol::intern("f");
  const Pattern *Body = PA.alt(PA.funVarApp(F, {PA.recCall(U, {X, F})}),
                               PA.funVarApp(F, {PA.var(X)}));
  const Pattern *Chain = PA.mu(U, {X, F}, {X, F}, Body);
  expectAgree(Chain, t("Relu(Relu(Relu(C)))"));
  expectAgree(Chain, t("Relu(Tanh(C))"));
  expectAgree(Chain, t("C"));

  Symbol P = Symbol::intern("P");
  const Pattern *Diverge = PA.mu(P, {X}, {X}, PA.recCall(P, {X}));
  Machine::Options Tight;
  Tight.MaxMuUnfolds = 32;
  const plan::Program &Prog = compileSingle(Diverge);
  MatchResult Fast = FastMatcher::run(Diverge, t("C"), Arena, Tight);
  MatchResult Plan = plan::Interpreter::run(Prog, 0, t("C"), Arena, Tight);
  EXPECT_EQ(Fast.Status, MachineStatus::OutOfFuel);
  EXPECT_EQ(Plan.Status, MachineStatus::OutOfFuel);
  expectStatsEqual(Plan.Stats, Fast.Stats);
}

TEST_F(MatchPlanTest, ResumeStreamsAgree) {
  const Pattern *P = PA.alt(app("Pair", {v("x"), v("y")}),
                            app("Pair", {v("y"), v("x")}));
  term::TermRef T = t("Pair(C1, C2)");
  std::vector<Witness> RefStream = allSolutions(P, T, Arena);
  const plan::Program &Prog = compileSingle(P);
  plan::Interpreter IP(Prog, Arena);
  std::vector<Witness> PlanStream;
  MachineStatus S = IP.matchEntry(0, T);
  while (S == MachineStatus::Success) {
    PlanStream.push_back(IP.witness());
    S = IP.resume();
  }
  ASSERT_EQ(PlanStream.size(), RefStream.size());
  for (size_t I = 0; I != RefStream.size(); ++I)
    EXPECT_EQ(PlanStream[I], RefStream[I]) << "solution " << I;
}

TEST_F(MatchPlanTest, SharedPrefixIsFactoredInTheTree) {
  // Two patterns share the MatMul root; a third roots at Trans. The tree
  // must discriminate at the root and the mask must reflect it.
  Defs.push_back(NamedPattern{Symbol::intern("A"), {}, {},
                              app("MatMul", {app("Trans", {v("x")}), v("y")})});
  Defs.push_back(NamedPattern{Symbol::intern("B"), {}, {},
                              app("MatMul", {v("x"), v("y")})});
  Defs.push_back(
      NamedPattern{Symbol::intern("C"), {}, {}, app("Trans", {v("x")})});
  rewrite::RuleSet RS;
  for (const NamedPattern &NP : Defs)
    RS.addPattern(NP);
  plan::Program Prog = plan::PlanBuilder::compile(RS, Sig);
  ASSERT_EQ(Prog.Entries.size(), 3u);
  EXPECT_TRUE(Prog.Wildcards.empty());

  std::vector<uint8_t> Mask;
  Prog.candidates(t("MatMul(Trans(A), B)"), Mask);
  EXPECT_EQ(Mask, (std::vector<uint8_t>{1, 1, 0}));
  Prog.candidates(t("MatMul(A, B)"), Mask);
  EXPECT_EQ(Mask, (std::vector<uint8_t>{0, 1, 0}));
  Prog.candidates(t("Trans(A)"), Mask);
  EXPECT_EQ(Mask, (std::vector<uint8_t>{0, 0, 1}));
  Prog.candidates(t("Softmax1(A)"), Mask);
  EXPECT_EQ(Mask, (std::vector<uint8_t>{0, 0, 0}));

  // The disassembly names every entry (pypmc --emit-plan surface).
  std::string Asm = Prog.disassemble(Sig);
  for (const char *Name : {"A", "B", "C"})
    EXPECT_NE(Asm.find(std::string("(") + Name + ")"), std::string::npos)
        << Asm;
}

TEST_F(MatchPlanTest, CandidateMaskIsSoundOnThePaperLibraries) {
  term::Signature Sig2;
  models::declareModelOps(Sig2);
  auto Fmha = opt::compileFmha(Sig2);
  auto Epilog = opt::compileEpilog(Sig2);
  auto Partition = opt::compilePartition(Sig2);
  rewrite::RuleSet RS;
  for (const auto *Lib : {Fmha.get(), Epilog.get(), Partition.get()})
    RS.addLibrary(*Lib, /*RulesOnly=*/false);
  plan::Program Prog = plan::PlanBuilder::compile(RS, Sig2);
  ASSERT_EQ(Prog.Entries.size(), RS.entries().size());

  models::TransformerConfig TC;
  TC.Name = "t";
  TC.Layers = 1;
  TC.Hidden = 64;
  auto G = models::buildTransformer(Sig2, TC);
  term::TermArena Arena2(Sig2);
  graph::TermView View(*G, Arena2);

  uint64_t Pruned = 0, Checked = 0;
  std::vector<uint8_t> Mask, GraphMask;
  for (graph::NodeId N : G->topoOrder()) {
    term::TermRef T = View.termFor(N);
    Prog.candidates(T, Mask);
    // The graph-walking overload must agree with the term overload.
    Prog.candidates(*G, N, GraphMask);
    EXPECT_EQ(Mask, GraphMask) << "node " << N;
    for (size_t I = 0; I != RS.entries().size(); ++I) {
      ++Checked;
      if (Mask[I])
        continue;
      ++Pruned;
      // Soundness: a pruned entry must not match.
      MatchResult MR =
          FastMatcher::run(RS.entries()[I].Pattern->Pat, T, Arena2);
      EXPECT_NE(MR.Status, MachineStatus::Success)
          << "entry " << I << " pruned but matches at node " << N;
    }
  }
  // The tree must actually prune on a real model (else it is useless).
  EXPECT_GT(Pruned, Checked / 2);
}

//===----------------------------------------------------------------------===//
// Randomized equivalence over the whole core calculus
//===----------------------------------------------------------------------===//

namespace {

class MatchPlanRandomTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(MatchPlanRandomTest, RandomPatternsAgree) {
  term::Signature Sig;
  term::TermArena Arena(Sig);
  PatternArena PA;
  Rng R(GetParam() * 9176 + 11);

  term::OpId C0 = Sig.addOp("c0", 0), C1 = Sig.addOp("c1", 0);
  term::OpId U0 = Sig.addOp("u0", 1), B0 = Sig.addOp("b0", 2);

  std::vector<Symbol> Vars{Symbol::intern("x"), Symbol::intern("y")};
  uint64_t Fresh = 0;
  std::function<term::TermRef(unsigned)> GenTerm =
      [&](unsigned Depth) -> term::TermRef {
    if (Depth == 0 || R.chance(1, 3))
      return Arena.leaf(R.chance(1, 2) ? C0 : C1);
    if (R.chance(1, 2))
      return Arena.make(U0, {GenTerm(Depth - 1)});
    return Arena.make(B0, {GenTerm(Depth - 1), GenTerm(Depth - 1)});
  };
  std::function<const Pattern *(unsigned)> GenPat =
      [&](unsigned Depth) -> const Pattern * {
    if (Depth == 0)
      return PA.var(Vars[R.below(2)]);
    switch (R.below(8)) {
    case 0:
      return PA.var(Vars[R.below(2)]);
    case 1:
      return PA.app(U0, {GenPat(Depth - 1)});
    case 2:
      return PA.app(B0, {GenPat(Depth - 1), GenPat(Depth - 1)});
    case 3:
      return PA.alt(GenPat(Depth - 1), GenPat(Depth - 1));
    case 4: {
      Symbol V = Symbol::intern("e" + std::to_string(Fresh++));
      return PA.exists(V, PA.app(U0, {PA.var(V)}));
    }
    case 5: {
      Symbol V = Vars[R.below(2)];
      return PA.matchConstraint(PA.var(V), GenPat(Depth - 1), V);
    }
    case 6: {
      Symbol F = Symbol::intern("F" + std::to_string(Fresh++));
      return PA.existsFun(F, PA.funVarApp(F, {GenPat(Depth - 1)}));
    }
    case 7: {
      Symbol Self = Symbol::intern("P" + std::to_string(Fresh++));
      Symbol Param = Symbol::intern("r" + std::to_string(Fresh++));
      const Pattern *Step = PA.app(U0, {PA.recCall(Self, {Param})});
      return PA.mu(Self, {Param}, {Vars[R.below(2)]},
                   PA.alt(Step, GenPat(Depth - 1)));
    }
    }
    return PA.var(Vars[0]);
  };

  std::deque<NamedPattern> Defs;
  for (int Iter = 0; Iter != 150; ++Iter) {
    term::TermRef T = GenTerm(4);
    const Pattern *P = GenPat(3);
    Defs.push_back(NamedPattern{Symbol::intern("P"), {}, {}, P});
    rewrite::RuleSet RS;
    RS.addPattern(Defs.back());
    plan::Program Prog = plan::PlanBuilder::compile(RS, Sig);

    MatchResult Fast = FastMatcher::run(P, T, Arena);
    MatchResult Plan = plan::Interpreter::run(Prog, 0, T, Arena);
    ASSERT_EQ(Plan.Status, Fast.Status)
        << P->toString(Sig) << " against " << Arena.toString(T);
    if (Fast.matched()) {
      // μ-unfold binder names come from the process-global fresh counter,
      // which advances between the two runs: compare visible bindings.
      ASSERT_EQ(restrictVisible(Plan.W), restrictVisible(Fast.W))
          << P->toString(Sig) << " against " << Arena.toString(T);
      std::vector<uint8_t> Mask;
      Prog.candidates(T, Mask);
      ASSERT_TRUE(Mask[0]) << P->toString(Sig) << " pruned against "
                           << Arena.toString(T);
    }
    expectStatsEqual(Plan.Stats, Fast.Stats);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchPlanRandomTest,
                         ::testing::Range<uint64_t>(0, 50));

//===----------------------------------------------------------------------===//
// Engine-level equivalence
//===----------------------------------------------------------------------===//

// Zoo-differential scaffolding shared with test_planprofile.cpp and
// test_incremental.cpp.
using pypm::testing::expectFullyEqual;
using pypm::testing::expectSameRewrites;
using pypm::testing::planOpts;
using pypm::testing::runModel;
using pypm::testing::RunResult;

TEST(MatchPlanEngine, ZooRewritesMatchFastMatcherAtEveryThreadCount) {
  for (const auto &Suite : {models::hfSuite(), models::tvSuite()}) {
    for (const models::ModelEntry &Model : Suite) {
      RunResult Fast = runModel(Model, {});
      RunResult Plan0 = runModel(Model, planOpts(0));
      expectSameRewrites(Fast, Plan0, Model.Name + " fast vs plan@0");
      for (unsigned Threads : {1u, 2u, 4u, 8u}) {
        RunResult PlanN = runModel(Model, planOpts(Threads));
        expectFullyEqual(Plan0, PlanN,
                         Model.Name + " plan@0 vs plan@" +
                             std::to_string(Threads));
      }
    }
  }
}

TEST(MatchPlanEngine, MuChainPipelineMatchesFast) {
  // UnaryChain adds a μ-pattern (Fig. 3) to the pipeline: the plan lowers
  // it to a MatchMu escape whose unfolds run through the dynamic path.
  auto Suite = models::hfSuite();
  ASSERT_GE(Suite.size(), 3u);
  for (size_t I = 0; I != 3; ++I) {
    RunResult Fast = runModel(Suite[I], {}, /*WithUnaryChain=*/true);
    RunResult Plan0 = runModel(Suite[I], planOpts(0), true);
    RunResult Plan4 = runModel(Suite[I], planOpts(4), true);
    expectSameRewrites(Fast, Plan0, Suite[I].Name + " +mu fast vs plan@0");
    expectFullyEqual(Plan0, Plan4, Suite[I].Name + " +mu plan@0 vs plan@4");
  }
}

TEST(MatchPlanEngine, PrecompiledPlanMatchesInRunCompile) {
  auto Suite = models::hfSuite();
  ASSERT_FALSE(Suite.empty());
  const models::ModelEntry &Model = Suite.front();

  term::Signature Sig;
  auto GA = Model.Build(Sig);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
  plan::Program Prog = plan::PlanBuilder::compile(Pipe.Rules, Sig);

  rewrite::RewriteOptions Pre = planOpts(0);
  Pre.PrecompiledPlan = &Prog;
  RunResult A;
  A.Stats =
      rewrite::rewriteToFixpoint(*GA, Pipe.Rules, graph::ShapeInference(), Pre);
  A.GraphText = graph::writeGraphText(*GA);
  // The supplied plan was used: nothing was compiled inside the run.
  EXPECT_EQ(A.Stats.PlanCompileSeconds, 0.0);

  RunResult B = runModel(Model, planOpts(0));
  EXPECT_GT(B.Stats.PlanCompileSeconds, 0.0);
  expectFullyEqual(A, B, Model.Name + " precompiled vs in-run");
}

TEST(MatchPlanEngine, MismatchedPrecompiledPlanFallsBackToFreshCompile) {
  // A plan compiled from a different rule set must be rejected (entry
  // names differ) and replaced by an in-run compile, not executed.
  auto Suite = models::hfSuite();
  ASSERT_FALSE(Suite.empty());
  const models::ModelEntry &Model = Suite.front();

  term::Signature Sig;
  auto G = Model.Build(Sig);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
  auto Cublas = opt::compileCublas(Sig);
  rewrite::RuleSet Other;
  Other.addLibrary(*Cublas);
  plan::Program Wrong = plan::PlanBuilder::compile(Other, Sig);

  rewrite::RewriteOptions Opts = planOpts(0);
  Opts.PrecompiledPlan = &Wrong;
  RunResult A;
  A.Stats =
      rewrite::rewriteToFixpoint(*G, Pipe.Rules, graph::ShapeInference(), Opts);
  A.GraphText = graph::writeGraphText(*G);
  EXPECT_GT(A.Stats.PlanCompileSeconds, 0.0); // fell back

  RunResult B = runModel(Model, planOpts(0));
  expectFullyEqual(A, B, Model.Name + " mismatched-precompiled");
}

//===----------------------------------------------------------------------===//
// Governance determinism under the plan matcher
//===----------------------------------------------------------------------===//

namespace {

class MatchPlanGovernanceTest : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(MatchPlanGovernanceTest, StressRewritesMatchFastAcrossSeeds) {
  // The 50-seed stress zoo: plan@0 and plan@T must commit the same
  // sequence as the fast serial engine. Budgets are generous (no step or
  // fuel ceilings — those diverge across matcher kinds by design), but
  // the rewrite cap must be finite: the stress templates include a
  // ping-pong rule pair that never reaches a fixpoint on its own.
  unsigned Threads = GetParam();
  for (uint64_t Seed = 0; Seed != 50; ++Seed) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    rewrite::RewriteOptions FastOpts;
    FastOpts.MaxRewrites = 300;
    rewrite::RewriteOptions P0 = planOpts(0);
    P0.MaxRewrites = 300;
    rewrite::RewriteOptions PN = planOpts(Threads);
    PN.MaxRewrites = 300;
    StressOutcome Fast = runStressCase(Seed, FastOpts);
    StressOutcome Plan0 = runStressCase(Seed, P0);
    StressOutcome PlanN = runStressCase(Seed, PN);
    // Committed sequence vs the fast matcher.
    EXPECT_EQ(Fast.GraphText, Plan0.GraphText);
    EXPECT_EQ(Fast.Stats.TotalFired, Plan0.Stats.TotalFired);
    EXPECT_EQ(Fast.Stats.TotalMatches, Plan0.Stats.TotalMatches);
    EXPECT_EQ(Fast.Stats.Status, Plan0.Stats.Status);
    // Full bit-identical determinism across plan thread counts.
    expectOutcomesEqual(Plan0, PlanN, stressRepro(Seed, 0, Threads));
  }
}

TEST_P(MatchPlanGovernanceTest, BudgetExhaustionIsDeterministic) {
  unsigned Threads = GetParam();
  bool SawExhaustion = false;
  for (uint64_t Seed = 0; Seed != 10; ++Seed) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    // The tree prefilter skips (and so never charges) attempts the root-op
    // index would have started, so plan runs on these seeds charge only a
    // handful of steps total; the ceiling must sit below that to trip.
    BudgetLimits L;
    L.MaxTotalSteps = 2;
    Budget B0(L), BN(L);
    rewrite::RewriteOptions O0 = planOpts(0);
    O0.EngineBudget = &B0;
    rewrite::RewriteOptions ON = planOpts(Threads);
    ON.EngineBudget = &BN;
    StressOutcome S0 = runStressCase(Seed, O0);
    StressOutcome SN = runStressCase(Seed, ON);
    expectOutcomesEqual(S0, SN, stressRepro(Seed, 0, Threads, "budget"));
    SawExhaustion |=
        S0.Stats.Status.Code == EngineStatusCode::BudgetExhausted;
  }
  EXPECT_TRUE(SawExhaustion);
}

TEST_P(MatchPlanGovernanceTest, QuarantineIsDeterministic) {
  unsigned Threads = GetParam();
  bool SawQuarantine = false;
  for (uint64_t Seed = 0; Seed != 10; ++Seed) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    rewrite::RewriteOptions O0 = planOpts(0);
    O0.MachineOpts.MaxSteps = 3;
    O0.QuarantineThreshold = 2;
    rewrite::RewriteOptions ON = O0;
    ON.NumThreads = Threads;
    StressOutcome S0 = runStressCase(Seed, O0);
    StressOutcome SN = runStressCase(Seed, ON);
    expectOutcomesEqual(S0, SN, stressRepro(Seed, 0, Threads, "quarantine"));
    SawQuarantine |= S0.Stats.Status.quarantined();
  }
  EXPECT_TRUE(SawQuarantine);
}

INSTANTIATE_TEST_SUITE_P(Threads, MatchPlanGovernanceTest,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto &Info) {
                           return "T" + std::to_string(Info.param);
                         });

namespace {

/// The guard-throwing fixture of test_faults, re-run under the plan
/// matcher: the engine's fault sites fire in committed order, which the
/// matcher kind does not change.
class MatchPlanFaultTest : public ::testing::Test {
protected:
  MatchPlanFaultTest() {
    models::declareModelOps(Sig);
    Lib = dsl::compileOrDie(
        "pattern AG(x, y) { return Add(Relu(x), Relu(y)); }\n"
        "rule ag for AG(x, y) {\n"
        "  assert x.shape.rank == 2;\n"
        "  return Relu(Add(x, y));\n"
        "}\n"
        "pattern RR(x) { return Relu(Relu(x)); }\n"
        "rule rr for RR(x) { return Relu(x); }\n",
        Sig);
    RS.addLibrary(*Lib);
  }

  StressOutcome run(unsigned Threads, FaultInjector &F) {
    graph::Graph G(Sig);
    graph::NodeId A = G.addLeaf(
        "Input", graph::TensorType::make(term::DType::F32, {8, 8}));
    graph::NodeId B = G.addLeaf(
        "Input", graph::TensorType::make(term::DType::F32, {8, 8}));
    graph::NodeId Root =
        G.addNode(Sig.lookup("Add"), {G.addNode(Sig.lookup("Relu"), {A}),
                                      G.addNode(Sig.lookup("Relu"), {B})});
    G.addOutput(Root);
    graph::ShapeInference SI;
    SI.inferAll(G);
    rewrite::RewriteOptions Opts = planOpts(Threads);
    Opts.Faults = &F;
    StressOutcome Out;
    Out.Stats = rewrite::rewriteToFixpoint(G, RS, SI, Opts);
    Out.GraphText = graph::writeGraphText(G);
    return Out;
  }

  term::Signature Sig;
  std::unique_ptr<pattern::Library> Lib;
  rewrite::RuleSet RS;
};

} // namespace

TEST_F(MatchPlanFaultTest, GuardFaultQuarantinesDeterministically) {
  FaultInjector::Config C;
  C.NthGuardEval = 1;
  FaultInjector F0(C), F2(C), F4(C);
  StressOutcome S0 = run(0, F0);
  EXPECT_EQ(S0.Stats.Status.Code, EngineStatusCode::FaultInjected);
  EXPECT_EQ(S0.Stats.Status.FaultsAbsorbed, 1u);
  EXPECT_EQ(S0.Stats.Status.QuarantinedPatterns,
            std::vector<std::string>{"AG"});
  expectOutcomesEqual(S0, run(2, F2), "guard-fault threads=0 vs 2");
  expectOutcomesEqual(S0, run(4, F4), "guard-fault threads=0 vs 4");
}

//===----------------------------------------------------------------------===//
// .pypmplan artifact round-trips
//===----------------------------------------------------------------------===//

TEST(MatchPlanSerializer, RoundTripDrivesTheEngineIdentically) {
  // Serialize the epilog library (guards, op-class constraints, function
  // variables), reload it into a fresh signature, and run the engine off
  // the loaded artifact: committed results must equal an in-run compile.
  term::Signature SigA;
  models::declareModelOps(SigA);
  auto LibA = opt::compileEpilog(SigA);
  DiagnosticEngine Diags;
  std::string Bytes = plan::serializePlan(*LibA, SigA, /*RulesOnly=*/true,
                                          Diags);
  ASSERT_FALSE(Bytes.empty()) << Diags.renderAll();

  // Load into a signature that already holds ops at different indices:
  // exercises the operator-renumbering path the loader recompiles around.
  term::Signature SigB;
  SigB.getOrAddOp("zz_unrelated", 3);
  models::declareModelOps(SigB);
  DiagnosticEngine LoadDiags;
  auto LP = plan::deserializePlan(Bytes, SigB, LoadDiags);
  ASSERT_NE(LP, nullptr) << LoadDiags.renderAll();
  EXPECT_EQ(LP->Prog.Entries.size(), LP->Rules.entries().size());

  auto Suite = models::hfSuite();
  ASSERT_FALSE(Suite.empty());

  // Engine run A: off the loaded artifact.
  auto GA = Suite.front().Build(SigB);
  rewrite::RewriteOptions OptsA = planOpts(0);
  OptsA.PrecompiledPlan = &LP->Prog;
  RunResult A;
  A.Stats = rewrite::rewriteToFixpoint(*GA, LP->Rules,
                                       graph::ShapeInference(), OptsA);
  A.GraphText = graph::writeGraphText(*GA);
  EXPECT_EQ(A.Stats.PlanCompileSeconds, 0.0);

  // Engine run B: original library, in-run compile. The signature must be
  // laid out like SigB — rule RHS attributes (e.g. the epilog's act=<op>)
  // record operator ids, which are signature-relative.
  term::Signature SigC;
  SigC.getOrAddOp("zz_unrelated", 3);
  models::declareModelOps(SigC);
  auto LibC = opt::compileEpilog(SigC);
  auto GB = Suite.front().Build(SigC);
  rewrite::RuleSet RulesC;
  RulesC.addLibrary(*LibC);
  RunResult B;
  B.Stats = rewrite::rewriteToFixpoint(*GB, RulesC, graph::ShapeInference(),
                                       planOpts(0));
  B.GraphText = graph::writeGraphText(*GB);

  expectSameRewrites(A, B, "artifact vs in-run compile");
}

TEST(MatchPlanSerializer, MatchOnlyLibrariesRoundTripToo) {
  term::Signature Sig;
  models::declareModelOps(Sig);
  auto Lib = opt::compilePartition(Sig); // match-only patterns
  DiagnosticEngine Diags;
  std::string Bytes =
      plan::serializePlan(*Lib, Sig, /*RulesOnly=*/false, Diags);
  ASSERT_FALSE(Bytes.empty()) << Diags.renderAll();
  term::Signature Sig2;
  DiagnosticEngine LoadDiags;
  auto LP = plan::deserializePlan(Bytes, Sig2, LoadDiags);
  ASSERT_NE(LP, nullptr) << LoadDiags.renderAll();
  EXPECT_EQ(LP->Prog.Entries.size(), Lib->PatternDefs.size());
}
