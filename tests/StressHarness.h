//===- tests/StressHarness.h - Seeded stress graphs + rule zoos -*- C++ -*-===//
///
/// \file
/// The seeded rule-zoo / random-DAG generator shared by the robustness
/// suites (test_budget, test_faults). Mirrors the generator proven
/// serial/parallel-equivalent in test_properties: every artifact is a pure
/// function of the seed, so any two runs of the same seed — at any thread
/// count, under any budget or fault schedule — start from identical
/// inputs.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_TESTS_STRESSHARNESS_H
#define PYPM_TESTS_STRESSHARNESS_H

#include "dsl/Sema.h"
#include "graph/GraphIO.h"
#include "graph/ShapeInference.h"
#include "models/Transformers.h"
#include "rewrite/RewriteEngine.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <string>

namespace pypm::testing {

/// Rule templates exercising every commit path: plain collapses, a rule
/// returning a bound variable, a shape-guarded rule, a ping-pong pair that
/// only terminates via the rewrite limit, and a match-only pattern.
inline const char *const StressTemplates[] = {
    "pattern RR(x) { return Relu(Relu(x)); }\n"
    "rule rr for RR(x) { return Relu(x); }\n",
    "pattern TT(x) { return Tanh(Tanh(x)); }\n"
    "rule tt for TT(x) { return Tanh(x); }\n",
    "pattern SR(x) { return Sigmoid(Relu(x)); }\n"
    "rule sr for SR(x) { return Gelu(x); }\n",
    "pattern NN(x) { return Neg(Neg(x)); }\n"
    "rule nn for NN(x) { return x; }\n",
    "pattern RS(x) { return Relu(Sigmoid(x)); }\n"
    "rule rs for RS(x) { return Sigmoid(Relu(x)); }\n",
    "pattern SRflip(x) { return Sigmoid(Relu(x)); }\n"
    "rule srflip for SRflip(x) { return Relu(Sigmoid(x)); }\n",
    "pattern AG(x, y) {\n"
    "  assert x.shape.rank == 2;\n"
    "  return Add(Relu(x), Relu(y));\n"
    "}\n"
    "rule ag for AG(x, y) { return Relu(Add(x, y)); }\n",
    "pattern MO(x, y) { return Mul(Tanh(x), y); }\n",
};
inline constexpr size_t NumStressTemplates =
    sizeof(StressTemplates) / sizeof(StressTemplates[0]);

/// Deterministically derives a DSL source from the seed: each template
/// joins with probability 1/2 (at least one always does).
inline std::string stressRuleSource(uint64_t Seed) {
  Rng R(Seed * 0x9e3779b9u + 3);
  std::string Src;
  for (size_t I = 0; I != NumStressTemplates; ++I)
    if (R.chance(1, 2))
      Src += StressTemplates[I];
  if (Src.empty())
    Src = StressTemplates[Seed % NumStressTemplates];
  return Src;
}

/// Deterministically builds a random DAG over the ops the templates
/// mention. Uniform {8, 8} f32 shapes keep every guard satisfiable.
inline void buildStressGraph(uint64_t Seed, graph::Graph &G,
                             const term::Signature &Sig) {
  Rng R(Seed * 0x51ed2701u + 9);
  const char *Unary[] = {"Relu", "Tanh", "Sigmoid", "Neg"};
  const char *Binary[] = {"Add", "Mul"};
  std::vector<graph::NodeId> Nodes;
  int NumInputs = static_cast<int>(R.range(2, 4));
  for (int I = 0; I != NumInputs; ++I)
    Nodes.push_back(G.addLeaf(
        "Input", graph::TensorType::make(term::DType::F32, {8, 8})));
  int NumOps = static_cast<int>(R.range(20, 60));
  for (int I = 0; I != NumOps; ++I) {
    if (R.chance(2, 3)) {
      term::OpId Op = Sig.lookup(Unary[R.below(4)]);
      Nodes.push_back(G.addNode(Op, {Nodes[R.below(Nodes.size())]}));
    } else {
      term::OpId Op = Sig.lookup(Binary[R.below(2)]);
      Nodes.push_back(G.addNode(Op, {Nodes[R.below(Nodes.size())],
                                     Nodes[R.below(Nodes.size())]}));
    }
  }
  // A couple of outputs so sweeping keeps a non-trivial live set.
  G.addOutput(Nodes.back());
  G.addOutput(Nodes[Nodes.size() / 2]);
}

struct StressOutcome {
  std::string GraphText;
  rewrite::RewriteStats Stats;
};

/// Builds the seed's graph + rules and runs rewriteToFixpoint with \p
/// Opts. Opts carries everything the robustness tests vary: thread count,
/// budget, quarantine threshold, fault injector, HaltOnFault.
inline StressOutcome runStressCase(uint64_t Seed,
                                   const rewrite::RewriteOptions &Opts) {
  term::Signature Sig;
  models::declareModelOps(Sig);
  auto Lib = dsl::compileOrDie(stressRuleSource(Seed), Sig);
  graph::Graph G(Sig);
  buildStressGraph(Seed, G, Sig);
  graph::ShapeInference SI;
  SI.inferAll(G);

  rewrite::RuleSet RS;
  RS.addLibrary(*Lib);
  StressOutcome Out;
  Out.Stats = rewrite::rewriteToFixpoint(G, RS, SI, Opts);
  Out.GraphText = graph::writeGraphText(G);
  return Out;
}

/// One-line repro label for a stress comparison: names the seed and the
/// thread counts (or any other varied knob) so a red assertion in a
/// 50-seed × 5-thread-count sweep prints exactly which case to re-run,
/// not just a pair of mismatched numbers.
inline std::string stressRepro(uint64_t Seed, const std::string &What) {
  return "seed=" + std::to_string(Seed) + " " + What;
}
inline std::string stressRepro(uint64_t Seed, unsigned ThreadsA,
                               unsigned ThreadsB,
                               const std::string &What = "") {
  std::string R = "seed=" + std::to_string(Seed) +
                  " threads=" + std::to_string(ThreadsA) + " vs " +
                  std::to_string(ThreadsB);
  if (!What.empty())
    R += " " + What;
  return R;
}

/// Everything observable must agree except wall-clock fields (and the
/// parallel-only Discovery map, plus the mode-descriptive memo/batch
/// counters). Status carries the whole failure taxonomy — code, reason,
/// quarantine list, absorbed-fault count — so equality here is the
/// bit-identical-governance claim. \p Repro, when non-empty, scopes every
/// assertion with the failing case's seed and thread count (see
/// stressRepro) so sweep failures identify themselves.
inline void expectOutcomesEqual(const StressOutcome &A,
                                const StressOutcome &B,
                                const std::string &Repro = "") {
  SCOPED_TRACE(Repro.empty() ? "stress-case" : Repro);
  EXPECT_EQ(A.GraphText, B.GraphText);
  const rewrite::RewriteStats &S = A.Stats, &P = B.Stats;
  EXPECT_EQ(S.Passes, P.Passes);
  EXPECT_EQ(S.NodesVisited, P.NodesVisited);
  EXPECT_EQ(S.TotalMatches, P.TotalMatches);
  EXPECT_EQ(S.TotalFired, P.TotalFired);
  EXPECT_EQ(S.NodesSwept, P.NodesSwept);
  EXPECT_EQ(S.Status, P.Status);
  ASSERT_EQ(S.PerPattern.size(), P.PerPattern.size());
  for (const auto &[Name, SP] : S.PerPattern) {
    SCOPED_TRACE(Name);
    auto It = P.PerPattern.find(Name);
    ASSERT_NE(It, P.PerPattern.end());
    rewrite::PatternStats X = SP, Y = It->second;
    X.Seconds = Y.Seconds = 0.0;
    EXPECT_EQ(X, Y);
  }
}

} // namespace pypm::testing

#endif // PYPM_TESTS_STRESSHARNESS_H
