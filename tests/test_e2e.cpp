//===- tests/test_e2e.cpp - Full-pipeline integration tests --------------------===//
///
/// End-to-end flows mirroring the paper's deployment story (§2.4): author
/// patterns in the DSL, serialize to a pattern binary, load it in a fresh
/// "compiler process", run the DLCB rewriting pass over real suite models,
/// and measure with the cost model. Plus the §4.2 pipeline: contract GELU,
/// partition, fuse, and re-cost.
///
//===----------------------------------------------------------------------===//

#include "models/Zoo.h"
#include "opt/StdPatterns.h"
#include "pattern/Serializer.h"
#include "rewrite/Partition.h"
#include "rewrite/RewriteEngine.h"
#include "sim/CostModel.h"

#include <gtest/gtest.h>

using namespace pypm;
using namespace pypm::graph;
using namespace pypm::rewrite;

TEST(EndToEnd, SerializedPipelineOptimizesAModelInAFreshProcess) {
  // "Frontend process": author and serialize.
  std::string FmhaBytes, EpilogBytes;
  {
    term::Signature Sig;
    auto Fmha = opt::compileFmha(Sig);
    auto Epilog = opt::compileEpilog(Sig);
    FmhaBytes = pattern::serializeLibrary(*Fmha, Sig);
    EpilogBytes = pattern::serializeLibrary(*Epilog, Sig);
  }

  // "Compiler process": load binaries, compile the model.
  term::Signature Sig;
  models::TransformerConfig TC;
  TC.Name = "bert-tiny";
  TC.Layers = 2;
  TC.Hidden = 128;
  TC.SeqLen = 64;
  auto G = models::buildTransformer(Sig, TC);

  DiagnosticEngine Diags;
  auto Fmha = pattern::deserializeLibrary(FmhaBytes, Sig, Diags);
  auto Epilog = pattern::deserializeLibrary(EpilogBytes, Sig, Diags);
  ASSERT_TRUE(Fmha && Epilog) << Diags.renderAll();

  RuleSet Rules;
  Rules.addLibrary(*Fmha);
  Rules.addLibrary(*Epilog);
  sim::CostModel CM;
  double Before = CM.graphCost(*G).Seconds;
  RewriteStats Stats = rewriteToFixpoint(*G, Rules, ShapeInference());
  double After = CM.graphCost(*G).Seconds;

  EXPECT_EQ(G->countOps("FMHA"), 2u);
  EXPECT_EQ(G->countOps("GemmBiasEpilog"), 2u);
  EXPECT_GT(Before / After, 1.0);
  EXPECT_GE(Stats.TotalFired, 6u);
  DiagnosticEngine VDiags;
  EXPECT_TRUE(G->verify(VDiags)) << VDiags.renderAll();
}

TEST(EndToEnd, EverySuiteModelOptimizesValidly) {
  // The Fig. 10/11 prerequisite: all four configurations leave every model
  // in the two suites valid, with a speedup ≥ 1 (rewrites never hurt under
  // the cost model) that compounds for Both.
  sim::CostModel CM;
  auto RunSuite = [&](const std::vector<models::ModelEntry> &Suite,
                      size_t Limit) {
    size_t Count = 0;
    for (const models::ModelEntry &E : Suite) {
      if (Count++ == Limit)
        break;
      double Times[4];
      int I = 0;
      for (auto Config : {opt::OptConfig::None, opt::OptConfig::FmhaOnly,
                          opt::OptConfig::EpilogOnly, opt::OptConfig::Both}) {
        term::Signature Sig;
        auto G = E.Build(Sig);
        opt::Pipeline Pipe = opt::makePipeline(Sig, Config);
        rewriteToFixpoint(*G, Pipe.Rules, ShapeInference());
        DiagnosticEngine Diags;
        ASSERT_TRUE(G->verify(Diags)) << E.Name << ": " << Diags.renderAll();
        Times[I++] = CM.graphCost(*G).Seconds;
      }
      EXPECT_LE(Times[1], Times[0] * 1.0001) << E.Name; // fmha never hurts
      EXPECT_LE(Times[2], Times[0] * 1.0001) << E.Name;
      EXPECT_LE(Times[3], Times[1] * 1.0001) << E.Name; // both ≤ each alone
      EXPECT_LE(Times[3], Times[2] * 1.0001) << E.Name;
    }
  };
  RunSuite(models::hfSuite(), 6);
  RunSuite(models::tvSuite(), 4);
}

TEST(EndToEnd, DirectedPartitioningPipeline) {
  // §4.2: contract GELU first, then partition the epilog regions and fuse
  // them "just in time" with region costs from the cost model.
  term::Signature Sig;
  models::TransformerConfig TC;
  TC.Name = "bert-tiny";
  TC.Layers = 2;
  TC.Hidden = 128;
  auto G = models::buildTransformer(Sig, TC);

  // Stage 1: GELU contraction only (take the pattern out of the epilog
  // library; its rules list is the contraction rule).
  auto Epilog = opt::compileEpilog(Sig);
  RuleSet GeluOnly;
  for (const pattern::NamedPattern &NP : Epilog->PatternDefs)
    if (NP.Name == Symbol::intern("GeluExpanded"))
      GeluOnly.addPattern(NP, Epilog->rulesFor(NP.Name));
  rewriteToFixpoint(*G, GeluOnly, ShapeInference());
  ASSERT_EQ(G->countOps("Gelu"), 2u);

  // Stage 2: partition on MatMulEpilogExt.
  auto Partition = opt::compilePartition(Sig);
  Symbol Frontier[3] = {Symbol::intern("a"), Symbol::intern("b"),
                        Symbol::intern("b1")};
  PartitionResult PR = partitionGraph(
      *G, *Partition->findPattern("MatMulEpilogExt"), Frontier);
  ASSERT_GE(PR.Regions.size(), 4u);

  // Stage 3: "recursively compile" each region — price it as one fused
  // kernel and substitute.
  sim::CostModel CM;
  double Before = CM.graphCost(*G).Seconds;
  double RegionBudget = 0;
  for (const Region &R : PR.Regions)
    RegionBudget +=
        CM.fusedRegionCost(*G, R.Interior, R.Frontier, R.Root).Seconds;
  std::vector<NodeId> Fused = fuseRegions(*G, PR, ShapeInference());
  EXPECT_EQ(Fused.size(), PR.Regions.size());
  double After = CM.graphCost(*G).Seconds;
  EXPECT_LT(After, Before);
  EXPECT_GT(RegionBudget, 0.0);
  DiagnosticEngine Diags;
  EXPECT_TRUE(G->verify(Diags)) << Diags.renderAll();
}

TEST(EndToEnd, OptimizationIsIdempotent) {
  // Running the pass twice fires nothing new (a true fixpoint).
  term::Signature Sig;
  models::TransformerConfig TC;
  TC.Name = "t";
  TC.Layers = 2;
  TC.Hidden = 128;
  auto G = models::buildTransformer(Sig, TC);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
  RewriteStats First = rewriteToFixpoint(*G, Pipe.Rules, ShapeInference());
  RewriteStats Second = rewriteToFixpoint(*G, Pipe.Rules, ShapeInference());
  EXPECT_GT(First.TotalFired, 0u);
  EXPECT_EQ(Second.TotalFired, 0u);
}

TEST(EndToEnd, CompileTimeCostScalesWithModelSize) {
  // The Fig. 12/13 mechanism: matcher time grows with the number of nodes
  // traversed, and the Epilog pass probes far more nodes than MHA.
  term::Signature Sig;
  models::TransformerConfig Small, Large;
  Small.Name = "s";
  Small.Layers = 1;
  Small.Hidden = 64;
  Large.Name = "l";
  Large.Layers = 8;
  Large.Hidden = 64;
  auto GSmall = models::buildTransformer(Sig, Small);
  auto GLarge = models::buildTransformer(Sig, Large);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);

  RewriteStats SSmall = rewriteToFixpoint(*GSmall, Pipe.Rules,
                                          ShapeInference());
  RewriteStats SLarge = rewriteToFixpoint(*GLarge, Pipe.Rules,
                                          ShapeInference());
  EXPECT_GT(SLarge.NodesVisited, SSmall.NodesVisited);
  // MHA attempts are filtered to MatMul roots; the epilog patterns probe
  // many more candidates (the paper's two-orders-of-magnitude effect).
  const PatternStats &Mha = SLarge.PerPattern.at("MHA");
  uint64_t EpilogSteps = 0;
  for (const char *Name : {"GemmAct", "GemmBiasAct", "ConvBiasAct"})
    EpilogSteps += SLarge.PerPattern.at(Name).MachineSteps;
  EXPECT_GT(EpilogSteps, Mha.MachineSteps);
}
