//===- tests/test_term.cpp - Signatures, hash-consed terms, parser ------------===//

#include "TestHelpers.h"

#include "term/DType.h"

using namespace pypm;
using namespace pypm::term;
using pypm::testing::CoreFixture;

class TermTest : public CoreFixture {};

TEST_F(TermTest, SignatureDeclareAndLookup) {
  OpId MM = Sig.addOp("MatMul", 2);
  EXPECT_EQ(Sig.lookup("MatMul"), MM);
  EXPECT_EQ(Sig.arity(MM), 2u);
  EXPECT_EQ(Sig.name(MM).str(), "MatMul");
  EXPECT_FALSE(Sig.lookup("Nope").isValid());
}

TEST_F(TermTest, SignatureGetOrAddIsIdempotent) {
  OpId A = Sig.getOrAddOp("Relu", 1, 1, "unary_pointwise");
  OpId B = Sig.getOrAddOp("Relu", 1);
  EXPECT_EQ(A, B);
  EXPECT_EQ(Sig.opClass(A).str(), "unary_pointwise");
}

TEST_F(TermTest, SignatureOpsOfClass) {
  Sig.addOp("Relu", 1, 1, "unary_pointwise");
  Sig.addOp("Tanh", 1, 1, "unary_pointwise");
  Sig.addOp("Add", 2, 1, "binary_pointwise");
  auto Ops = Sig.opsOfClass(Symbol::intern("unary_pointwise"));
  ASSERT_EQ(Ops.size(), 2u);
  EXPECT_EQ(Sig.name(Ops[0]).str(), "Relu");
  EXPECT_EQ(Sig.name(Ops[1]).str(), "Tanh");
}

TEST_F(TermTest, HashConsingSharesEqualTerms) {
  TermRef A = t("F(C, C)");
  TermRef B = t("F(C, C)");
  EXPECT_EQ(A, B); // pointer identity == structural equality
}

TEST_F(TermTest, DistinctStructureDistinctTerms) {
  EXPECT_NE(t("F(C, D)"), t("F(D, C)"));
  EXPECT_NE(t("G1(C)"), t("G2(C)"));
}

TEST_F(TermTest, AttributesParticipateInIdentity) {
  TermRef A = t("X[rank=2]");
  TermRef B = t("X[rank=3]");
  TermRef C = t("X[rank=2]");
  EXPECT_NE(A, B);
  EXPECT_EQ(A, C);
}

TEST_F(TermTest, AttributeOrderIsNormalized) {
  TermRef A = t("X[rank=2,elt_type=3]");
  TermRef B = t("X[elt_type=3,rank=2]");
  EXPECT_EQ(A, B);
}

TEST_F(TermTest, SharedSubtermsCountedPerOccurrenceInSize) {
  TermRef Shared = t("F(G(C), G(C))");
  EXPECT_EQ(Shared->size(), 5u); // F, G, C, G, C as a tree
  EXPECT_EQ(Shared->depth(), 3u);
  // But in memory G(C) exists once.
  EXPECT_EQ(Shared->child(0), Shared->child(1));
}

TEST_F(TermTest, BuiltinAttributes) {
  TermRef T = t("F(G(C), C)");
  EXPECT_EQ(Arena.attribute(T, Symbol::intern("arity")), 2);
  EXPECT_EQ(Arena.attribute(T, Symbol::intern("size")), 4);
  EXPECT_EQ(Arena.attribute(T, Symbol::intern("depth")), 3);
  EXPECT_EQ(Arena.attribute(T, Symbol::intern("op_id")),
            static_cast<int64_t>(T->op().index()));
  EXPECT_FALSE(Arena.attribute(T, Symbol::intern("no_such_attr")));
}

TEST_F(TermTest, StoredAttributesShadowNothingButAreFound) {
  TermRef T = t("X[rank=2,dim0=64,dim1=32]");
  EXPECT_EQ(T->storedAttr(Symbol::intern("rank")), 2);
  EXPECT_EQ(T->storedAttr(Symbol::intern("dim1")), 32);
  EXPECT_FALSE(T->storedAttr(Symbol::intern("dim2")));
  EXPECT_EQ(Arena.attribute(T, Symbol::intern("rank")), 2);
}

TEST_F(TermTest, SubtermsDeduplicated) {
  TermRef T = t("F(G(C), G(C))");
  std::vector<TermRef> Subs = TermArena::subterms(T);
  EXPECT_EQ(Subs.size(), 3u); // F(...), G(C), C
}

TEST_F(TermTest, ToStringRoundTripsThroughParser) {
  const char *Cases[] = {
      "C",
      "F(C, D)",
      "MatMul(Trans(A[rank=2]), B[elt_type=3,rank=2])",
      "Op[a=1,b=2](Leaf)",
  };
  for (const char *Text : Cases) {
    TermRef T1 = t(Text);
    std::string Printed = Arena.toString(T1);
    TermRef T2 = t(Printed);
    EXPECT_EQ(T1, T2) << Text << " vs " << Printed;
  }
}

TEST_F(TermTest, ParserReportsArityMismatch) {
  (void)t("F(C, D)"); // declares F/2
  TermParseResult R = parseTerm("F(C)", Sig, Arena);
  ASSERT_TRUE(std::holds_alternative<TermParseError>(R));
  EXPECT_NE(std::get<TermParseError>(R).Message.find("expects 2"),
            std::string::npos);
}

TEST_F(TermTest, ParserRejectsTrailingGarbage) {
  TermParseResult R = parseTerm("C extra", Sig, Arena);
  ASSERT_TRUE(std::holds_alternative<TermParseError>(R));
}

TEST_F(TermTest, ParserRejectsMalformedAttr) {
  TermParseResult R = parseTerm("X[rank]", Sig, Arena);
  ASSERT_TRUE(std::holds_alternative<TermParseError>(R));
}

TEST_F(TermTest, ParserRejectsUnknownOpWithoutAutoDeclare) {
  TermParseResult R =
      parseTerm("Mystery(C)", Sig, Arena, /*AutoDeclare=*/false);
  ASSERT_TRUE(std::holds_alternative<TermParseError>(R));
}

TEST_F(TermTest, ParserNegativeAttrValues) {
  TermRef T = t("X[bias=-5]");
  EXPECT_EQ(T->storedAttr(Symbol::intern("bias")), -5);
}

TEST_F(TermTest, ArenaCountsDistinctTerms) {
  size_t Before = Arena.numTerms();
  (void)t("F(C, C)"); // F(C,C), C → 2 new
  (void)t("F(C, C)"); // shared, 0 new
  EXPECT_EQ(Arena.numTerms(), Before + 2);
}

TEST_F(TermTest, DTypeHelpers) {
  EXPECT_EQ(dtypeBytes(DType::F32), 4u);
  EXPECT_EQ(dtypeBytes(DType::I8), 1u);
  EXPECT_EQ(dtypeBytes(DType::F64), 8u);
  EXPECT_EQ(dtypeName(DType::BF16), "bf16");
  EXPECT_EQ(dtypeFromName("f32"), DType::F32);
  EXPECT_EQ(dtypeFromName("i32"), DType::I32);
  EXPECT_FALSE(dtypeFromName("f8").has_value());
}
