//===- tests/test_builder.cpp - Fluent C++ frontend builder --------------------===//
///
/// The builder must produce core-calculus libraries that behave exactly
/// like the DSL frontend's on the paper's figures.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "dsl/Sema.h"
#include "frontend/Builder.h"

using namespace pypm;
using namespace pypm::frontend;
using namespace pypm::pattern;

namespace {

class BuilderTest : public pypm::testing::CoreFixture {};

} // namespace

TEST_F(BuilderTest, Figure1MMxyT) {
  ModuleBuilder B(Sig);
  auto MatMul = B.op("MatMul", 2);
  auto Trans = B.op("Trans", 1);
  auto Cublas = B.op("cublasMM_xyT_f32", 2);

  auto P = B.pattern("MMxyT", {"x", "y"});
  P.require(P.arg("x")["rank"] == 2);
  P.require(P.arg("y")["rank"] == 2);
  P.ret(MatMul(P.arg("x"), Trans(P.arg("y"))));
  P.done();

  auto R = B.rule("cublasrule", "MMxyT");
  R.require(R.arg("x")["elt_type"] == 3 && R.arg("y")["elt_type"] == 3);
  R.ret(Cublas.rhs({R.arg("x").rhs(), R.arg("y").rhs()}));

  auto Lib = B.finish();
  ASSERT_TRUE(Lib != nullptr);
  const NamedPattern *NP = Lib->findPattern("MMxyT");
  ASSERT_NE(NP, nullptr);
  EXPECT_TRUE(
      matchP(NP->Pat, t("MatMul(A[rank=2], Trans(C[rank=2]))")).matched());
  EXPECT_FALSE(
      matchP(NP->Pat, t("MatMul(A[rank=1], Trans(C[rank=2]))")).matched());
  ASSERT_EQ(Lib->Rules.size(), 1u);
  EXPECT_NE(Lib->Rules[0].Guard, nullptr);
}

TEST_F(BuilderTest, Figure3UnaryChainViaSelf) {
  ModuleBuilder B(Sig);
  {
    auto P = B.pattern("UnaryChain", {"x", "f"});
    auto X = P.arg("x");
    auto F = P.funParam("f");
    P.ret(P.fcall(F, {P.self({X, F})}));
    P.done();
  }
  {
    auto P = B.pattern("UnaryChain", {"x", "f"});
    P.ret(P.fcall(P.funParam("f"), {P.arg("x")}));
    P.done();
  }
  auto Lib = B.finish();
  ASSERT_TRUE(Lib != nullptr);
  const NamedPattern *NP = Lib->findPattern("UnaryChain");
  EXPECT_EQ(NP->Pat->kind(), PatternKind::Mu);
  auto R = matchP(NP->Pat, t("Relu(Relu(Relu(C)))"));
  ASSERT_TRUE(R.matched());
  EXPECT_EQ(bound(R.W, "x"), t("C"));
}

TEST_F(BuilderTest, VarAndConstraintMirrorFig4Alternate) {
  ModuleBuilder B(Sig);
  auto Trans = B.op("Trans", 1);
  auto P = B.pattern("RootOfTrans", {"x"});
  auto X = P.arg("x");
  auto Y = P.var("y");
  P.constrain(X, Trans(Y));
  P.ret(X);
  P.done();
  auto Lib = B.finish();
  ASSERT_TRUE(Lib != nullptr);
  auto R = matchP(Lib->findPattern("RootOfTrans")->Pat, t("Trans(B)"));
  ASSERT_TRUE(R.matched());
  EXPECT_EQ(bound(R.W, "x"), t("Trans(B)"));
  EXPECT_EQ(bound(R.W, "y"), t("B"));
}

TEST_F(BuilderTest, OpvarWithClassGuard) {
  ModuleBuilder B(Sig);
  B.op("Relu", 1, "unary_pointwise");
  B.op("Trans", 1, "movement");
  auto P = B.pattern("AnyPointwise", {"x"});
  auto F = P.opvar("F");
  P.require(F["op_class"] == P.opclass("unary_pointwise"));
  P.ret(P.fcall(F, {P.arg("x")}));
  P.done();
  auto Lib = B.finish();
  ASSERT_TRUE(Lib != nullptr);
  const NamedPattern *NP = Lib->findPattern("AnyPointwise");
  EXPECT_TRUE(matchP(NP->Pat, t("Relu(C)")).matched());
  EXPECT_FALSE(matchP(NP->Pat, t("Trans(C)")).matched());
}

TEST_F(BuilderTest, LitMatchesConstNodes) {
  ModuleBuilder B(Sig);
  auto Div = B.op("Div", 2);
  auto P = B.pattern("HalfOf", {"x"});
  P.ret(Div(P.arg("x"), P.lit(2.0)));
  P.done();
  auto Lib = B.finish();
  ASSERT_TRUE(Lib != nullptr);
  const NamedPattern *NP = Lib->findPattern("HalfOf");
  EXPECT_TRUE(
      matchP(NP->Pat, t("Div(X, Const[value_u6=2000000])")).matched());
  EXPECT_FALSE(
      matchP(NP->Pat, t("Div(X, Const[value_u6=500000])")).matched());
}

TEST_F(BuilderTest, GuardOperatorsBuildArithmetic) {
  ModuleBuilder B(Sig);
  auto P = B.pattern("Sized", {"x"});
  auto X = P.arg("x");
  P.require((X["size"] + P.intLit(1)) * P.intLit(2) >= 6 &&
            !(X["depth"] == 1));
  P.ret(X);
  P.done();
  auto Lib = B.finish();
  ASSERT_TRUE(Lib != nullptr);
  const NamedPattern *NP = Lib->findPattern("Sized");
  // F(C): size 2 → (2+1)*2 = 6 ≥ 6 and depth 2 ≠ 1.
  EXPECT_TRUE(matchP(NP->Pat, t("F(C)")).matched());
  // C: size 1 → 4 < 6.
  EXPECT_FALSE(matchP(NP->Pat, t("C")).matched());
}

TEST_F(BuilderTest, RuleRhsFunVarAndAttrTemplates) {
  ModuleBuilder B(Sig);
  auto MatMul = B.op("MatMul", 2);
  auto Fused = B.op("GemmEpilog2", 2, "fused_kernel");
  auto P = B.pattern("GemmAct", {"a", "b", "f"});
  auto F = P.funParam("f");
  P.require(F["arity"] == 1);
  P.ret(P.fcall(F, {MatMul(P.arg("a"), P.arg("b"))}));
  P.done();

  auto R = B.rule("fuse", "GemmAct");
  auto RF = R.arg("f");
  R.ret(Fused.rhs({R.arg("a").rhs(), R.arg("b").rhs()},
                  {{Symbol::intern("act"),
                    B.arena().funAttr(RF.name(), Symbol::intern("op_id"))}}));
  auto Lib = B.finish();
  ASSERT_TRUE(Lib != nullptr);
  ASSERT_EQ(Lib->Rules.size(), 1u);
  EXPECT_EQ(Lib->Rules[0].Rhs->attrTemplates().size(), 1u);
}

TEST_F(BuilderTest, BuilderAndDslProduceEquivalentMatchers) {
  // Compile UnaryChain both ways and compare behavior across a family of
  // terms (the libraries must agree on match/no-match and on θ).
  term::Signature SigDsl;
  auto DslLib = dsl::compileOrDie(R"(
    pattern UnaryChain(x, f) { return f(UnaryChain(x, f)); }
    pattern UnaryChain(x, f) { return f(x); }
  )",
                                  SigDsl);

  ModuleBuilder B(Sig);
  {
    auto P = B.pattern("UnaryChain", {"x", "f"});
    auto X = P.arg("x");
    auto F = P.funParam("f");
    P.ret(P.fcall(F, {P.self({X, F})}));
    P.done();
  }
  {
    auto P = B.pattern("UnaryChain", {"x", "f"});
    P.ret(P.fcall(P.funParam("f"), {P.arg("x")}));
    P.done();
  }
  auto BuiltLib = B.finish();
  ASSERT_TRUE(BuiltLib != nullptr);

  term::TermArena ArenaDsl(SigDsl);
  const char *Cases[] = {"Relu(C)", "Relu(Relu(C))", "Relu(Tanh(C))", "C",
                         "Pair(C, C)"};
  for (const char *Case : Cases) {
    auto TB = t(Case);
    auto TD = term::parseTermOrDie(Case, SigDsl, ArenaDsl);
    auto RB = matchP(BuiltLib->findPattern("UnaryChain")->Pat, TB);
    auto RD = match::matchPattern(DslLib->findPattern("UnaryChain")->Pat, TD,
                                  ArenaDsl);
    EXPECT_EQ(RB.matched(), RD.matched()) << Case;
    if (RB.matched() && RD.matched()) {
      auto XB = bound(RB.W, "x");
      auto XD = RD.W.Theta.lookup(Symbol::intern("x")).value_or(nullptr);
      ASSERT_NE(XB, nullptr);
      ASSERT_NE(XD, nullptr);
      EXPECT_EQ(Arena.toString(XB), term::TermArena::toString(XD, SigDsl))
          << Case;
    }
  }
}

TEST_F(BuilderTest, FinishRejectsIllFormedLibraries) {
  ModuleBuilder B(Sig);
  auto F = B.op("F", 1);
  auto P = B.pattern("P", {"x"});
  P.ret(F(P.arg("x")));
  P.done();
  auto R = B.rule("bad", "P");
  // RHS references a variable that is not a parameter.
  R.ret(RExpr{B.arena().rhsVar(Symbol::intern("ghost"))});
  EXPECT_EQ(B.finish(), nullptr);
}
