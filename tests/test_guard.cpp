//===- tests/test_guard.cpp - Guard expression evaluation ---------------------===//

#include "TestHelpers.h"

#include "match/Subst.h"

using namespace pypm;
using namespace pypm::pattern;
using pypm::testing::CoreFixture;

class GuardTest : public CoreFixture {
protected:
  GuardTest() {
    X = Symbol::intern("x");
    F = Symbol::intern("F");
  }

  match::Subst Theta;
  match::FunSubst Phi;
  Symbol X, F;

  GuardEval evalB(const GuardExpr *G) {
    match::SubstEnv Env(Theta, Phi, Arena);
    return G->evalBool(Env);
  }
  GuardEval evalI(const GuardExpr *G) {
    match::SubstEnv Env(Theta, Phi, Arena);
    return G->evalInt(Env);
  }
};

TEST_F(GuardTest, Arithmetic) {
  const GuardExpr *E = PA.binary(
      GuardKind::Add, PA.intLit(3),
      PA.binary(GuardKind::Mul, PA.intLit(4), PA.intLit(5)));
  EXPECT_EQ(evalI(E).Value, 23);
  EXPECT_EQ(evalI(PA.binary(GuardKind::Sub, PA.intLit(1), PA.intLit(9))).Value,
            -8);
  EXPECT_EQ(evalI(PA.binary(GuardKind::Div, PA.intLit(17), PA.intLit(5))).Value,
            3);
  EXPECT_EQ(evalI(PA.binary(GuardKind::Mod, PA.intLit(17), PA.intLit(5))).Value,
            2);
}

TEST_F(GuardTest, DivByZeroIsStuck) {
  const GuardExpr *E = PA.binary(GuardKind::Div, PA.intLit(1), PA.intLit(0));
  GuardEval R = evalI(E);
  EXPECT_EQ(R.Status, GuardStatus::DivByZero);
  EXPECT_FALSE(R.ok());
}

TEST_F(GuardTest, Comparisons) {
  auto Cmp = [&](GuardKind K, int64_t A, int64_t B) {
    return evalB(PA.binary(K, PA.intLit(A), PA.intLit(B))).truthy();
  };
  EXPECT_TRUE(Cmp(GuardKind::Eq, 2, 2));
  EXPECT_FALSE(Cmp(GuardKind::Eq, 2, 3));
  EXPECT_TRUE(Cmp(GuardKind::Ne, 2, 3));
  EXPECT_TRUE(Cmp(GuardKind::Lt, 2, 3));
  EXPECT_FALSE(Cmp(GuardKind::Lt, 3, 3));
  EXPECT_TRUE(Cmp(GuardKind::Le, 3, 3));
  EXPECT_TRUE(Cmp(GuardKind::Gt, 4, 3));
  EXPECT_TRUE(Cmp(GuardKind::Ge, 3, 3));
}

TEST_F(GuardTest, BooleanConnectives) {
  const GuardExpr *T = PA.binary(GuardKind::Eq, PA.intLit(1), PA.intLit(1));
  const GuardExpr *Fa = PA.binary(GuardKind::Eq, PA.intLit(1), PA.intLit(2));
  EXPECT_TRUE(evalB(PA.binary(GuardKind::And, T, T)).truthy());
  EXPECT_FALSE(evalB(PA.binary(GuardKind::And, T, Fa)).truthy());
  EXPECT_TRUE(evalB(PA.binary(GuardKind::Or, Fa, T)).truthy());
  EXPECT_FALSE(evalB(PA.binary(GuardKind::Or, Fa, Fa)).truthy());
  EXPECT_TRUE(evalB(PA.notExpr(Fa)).truthy());
  EXPECT_FALSE(evalB(PA.notExpr(T)).truthy());
}

TEST_F(GuardTest, AttrLookupThroughTheta) {
  Theta.bind(X, t("A[rank=2,dim0=64]"));
  EXPECT_EQ(evalI(PA.attr(X, Symbol::intern("rank"))).Value, 2);
  EXPECT_EQ(evalI(PA.attr(X, Symbol::intern("dim0"))).Value, 64);
}

TEST_F(GuardTest, AttrOnUnboundVarIsStuck) {
  GuardEval R = evalI(PA.attr(X, Symbol::intern("rank")));
  EXPECT_EQ(R.Status, GuardStatus::UnboundVar);
}

TEST_F(GuardTest, UnknownAttrIsStuck) {
  Theta.bind(X, t("A[rank=2]"));
  GuardEval R = evalI(PA.attr(X, Symbol::intern("weird")));
  EXPECT_EQ(R.Status, GuardStatus::UnknownAttr);
}

TEST_F(GuardTest, BuiltinAttrsThroughGuard) {
  Theta.bind(X, t("F2(C, C)"));
  EXPECT_EQ(evalI(PA.attr(X, Symbol::intern("arity"))).Value, 2);
  EXPECT_EQ(evalI(PA.attr(X, Symbol::intern("size"))).Value, 3);
}

TEST_F(GuardTest, FunAttrs) {
  term::OpId Relu = Sig.addOp("Relu", 1, 1, "unary_pointwise");
  Phi.bind(F, Relu);
  EXPECT_EQ(evalI(PA.funAttr(F, Symbol::intern("arity"))).Value, 1);
  EXPECT_EQ(evalI(PA.funAttr(F, Symbol::intern("op_id"))).Value,
            static_cast<int64_t>(Relu.index()));
  EXPECT_EQ(evalI(PA.funAttr(F, Symbol::intern("op_class"))).Value,
            static_cast<int64_t>(Symbol::intern("unary_pointwise").rawId()));
  EXPECT_EQ(evalI(PA.funAttr(F, Symbol::intern("results"))).Value, 1);
  EXPECT_EQ(evalI(PA.funAttr(F, Symbol::intern("nonsense"))).Status,
            GuardStatus::UnknownAttr);
}

TEST_F(GuardTest, FunAttrOnUnboundFunVarIsStuck) {
  EXPECT_EQ(evalI(PA.funAttr(F, Symbol::intern("arity"))).Status,
            GuardStatus::UnboundVar);
}

TEST_F(GuardTest, OpClassRefMatchesFunAttr) {
  term::OpId Relu = Sig.addOp("Relu", 1, 1, "unary_pointwise");
  Phi.bind(F, Relu);
  const GuardExpr *G = PA.binary(
      GuardKind::Eq, PA.funAttr(F, Symbol::intern("op_class")),
      PA.opClassRef(Symbol::intern("unary_pointwise")));
  EXPECT_TRUE(evalB(G).truthy());
  const GuardExpr *G2 = PA.binary(
      GuardKind::Eq, PA.funAttr(F, Symbol::intern("op_class")),
      PA.opClassRef(Symbol::intern("binary_pointwise")));
  EXPECT_FALSE(evalB(G2).truthy());
}

TEST_F(GuardTest, OpRefResolvesAgainstSignature) {
  term::OpId Relu = Sig.addOp("Relu", 1);
  const GuardExpr *G =
      PA.binary(GuardKind::Eq, PA.opRef(Symbol::intern("Relu")),
                PA.intLit(static_cast<int64_t>(Relu.index())));
  EXPECT_TRUE(evalB(G).truthy());
  EXPECT_EQ(evalI(PA.opRef(Symbol::intern("Missing"))).Status,
            GuardStatus::UnknownAttr);
}

TEST_F(GuardTest, AndShortCircuitsPastStuckRight) {
  // false && <stuck> evaluates to false, mirroring Fig. 1's dispatch style.
  const GuardExpr *Fa = PA.binary(GuardKind::Eq, PA.intLit(0), PA.intLit(1));
  const GuardExpr *Stuck =
      PA.binary(GuardKind::Eq, PA.attr(X, Symbol::intern("rank")),
                PA.intLit(2));
  GuardEval R = evalB(PA.binary(GuardKind::And, Fa, Stuck));
  EXPECT_TRUE(R.ok());
  EXPECT_FALSE(R.truthy());
  // true && <stuck> is stuck.
  const GuardExpr *T = PA.binary(GuardKind::Eq, PA.intLit(1), PA.intLit(1));
  EXPECT_FALSE(evalB(PA.binary(GuardKind::And, T, Stuck)).ok());
}

TEST_F(GuardTest, OrShortCircuitsPastStuckRight) {
  const GuardExpr *T = PA.binary(GuardKind::Eq, PA.intLit(1), PA.intLit(1));
  const GuardExpr *Stuck =
      PA.binary(GuardKind::Eq, PA.attr(X, Symbol::intern("rank")),
                PA.intLit(2));
  EXPECT_TRUE(evalB(PA.binary(GuardKind::Or, T, Stuck)).truthy());
  const GuardExpr *Fa = PA.binary(GuardKind::Eq, PA.intLit(0), PA.intLit(1));
  EXPECT_FALSE(evalB(PA.binary(GuardKind::Or, Fa, Stuck)).ok());
}

TEST_F(GuardTest, StuckPropagatesThroughComparison) {
  const GuardExpr *Stuck =
      PA.binary(GuardKind::Lt, PA.attr(X, Symbol::intern("rank")),
                PA.intLit(5));
  EXPECT_EQ(evalB(Stuck).Status, GuardStatus::UnboundVar);
}

TEST_F(GuardTest, ToStringRendersInfix) {
  const GuardExpr *G = PA.binary(
      GuardKind::And,
      PA.binary(GuardKind::Eq, PA.attr(X, Symbol::intern("rank")),
                PA.intLit(2)),
      PA.notExpr(PA.binary(GuardKind::Lt, PA.intLit(1), PA.intLit(2))));
  EXPECT_EQ(G->toString(), "((x.rank == 2) && !((1 < 2)))");
}

TEST_F(GuardTest, ToStringRendersRefs) {
  EXPECT_EQ(PA.opClassRef(Symbol::intern("conv"))->toString(),
            "opclass(\"conv\")");
  EXPECT_EQ(PA.opRef(Symbol::intern("MatMul"))->toString(), "op(\"MatMul\")");
}

TEST_F(GuardTest, IsArithAndBoolKinds) {
  EXPECT_TRUE(isArithKind(GuardKind::IntLit));
  EXPECT_TRUE(isArithKind(GuardKind::Mod));
  EXPECT_FALSE(isArithKind(GuardKind::Eq));
  EXPECT_TRUE(isBoolKind(GuardKind::And));
  EXPECT_TRUE(isBoolKind(GuardKind::Not));
}
