//===- tests/test_costmodel.cpp - Analytic GPU cost model ----------------------===//

#include "dsl/Sema.h"
#include "graph/GraphIO.h"
#include "graph/ShapeInference.h"
#include "models/Transformers.h"
#include "rewrite/RewriteEngine.h"
#include "sim/CostModel.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

using namespace pypm;
using namespace pypm::graph;
using namespace pypm::sim;

namespace {

class CostTest : public ::testing::Test {
protected:
  CostTest() : G(Sig) { models::declareModelOps(Sig); }

  NodeId input(std::initializer_list<int64_t> Dims) {
    return G.addLeaf("Input", TensorType::make(term::DType::F32, Dims));
  }
  NodeId node(std::string_view Op, std::initializer_list<NodeId> In,
              std::vector<term::Attr> Attrs = {}) {
    NodeId N = G.addNode(Sig.lookup(Op), In, std::move(Attrs));
    SI.inferNode(G, N);
    return N;
  }

  term::Signature Sig;
  Graph G;
  ShapeInference SI;
  CostModel CM;
};

} // namespace

TEST_F(CostTest, LeavesCostNothing) {
  NodeId A = input({1024, 1024});
  KernelCost C = CM.nodeCost(G, A);
  EXPECT_EQ(C.Seconds, 0.0);
  EXPECT_EQ(C.Launches, 0u);
}

TEST_F(CostTest, EveryKernelPaysLaunchOverhead) {
  NodeId R = node("Relu", {input({1})});
  KernelCost C = CM.nodeCost(G, R);
  EXPECT_GE(C.Seconds, CM.device().LaunchOverhead);
  EXPECT_EQ(C.Launches, 1u);
}

TEST_F(CostTest, MatMulFlopsAreTwoMNK) {
  NodeId M = node("MatMul", {input({64, 128}), input({128, 32})});
  KernelCost C = CM.nodeCost(G, M);
  EXPECT_DOUBLE_EQ(C.Flops, 2.0 * 64 * 32 * 128);
}

TEST_F(CostTest, BiggerMatMulCostsMore) {
  NodeId Small = node("MatMul", {input({64, 64}), input({64, 64})});
  NodeId Big = node("MatMul", {input({1024, 1024}), input({1024, 1024})});
  EXPECT_LT(CM.nodeCost(G, Small).Seconds, CM.nodeCost(G, Big).Seconds);
}

TEST_F(CostTest, ElementwiseIsBandwidthBound) {
  NodeId A = node("Add", {input({4096, 4096}), input({4096, 4096})});
  KernelCost C = CM.nodeCost(G, A);
  double MemTime = C.Bytes / CM.device().MemBandwidth;
  EXPECT_NEAR(C.Seconds - CM.device().LaunchOverhead, MemTime, 1e-9);
}

TEST_F(CostTest, FmhaBeatsDecomposedAttention) {
  // Decomposed: QKᵀ, Div, Softmax, ·V — vs one FMHA kernel. Same Q/K/V.
  NodeId Q = input({8, 256, 64});
  NodeId K = input({8, 256, 64});
  NodeId V = input({8, 256, 64});
  NodeId Scores = node("MatMul", {Q, node("Trans", {K})});
  NodeId Scaled = node("Div", {Scores, G.addConst(8.0)});
  NodeId Probs = node("Softmax", {Scaled});
  NodeId Attn = node("MatMul", {Probs, V});
  double Decomposed = CM.nodeCost(G, Scores).Seconds +
                      CM.nodeCost(G, Scaled).Seconds +
                      CM.nodeCost(G, Probs).Seconds +
                      CM.nodeCost(G, Attn).Seconds +
                      CM.nodeCost(G, G.inputs(Scores)[1]).Seconds;
  NodeId Fused = node("FMHA", {Q, K, V});
  double FusedCost = CM.nodeCost(G, Fused).Seconds;
  EXPECT_LT(FusedCost, Decomposed);
  // The fused kernel moves no S×S intermediates.
  EXPECT_LT(CM.nodeCost(G, Fused).Bytes, CM.nodeCost(G, Scores).Bytes +
                                             CM.nodeCost(G, Attn).Bytes);
}

TEST_F(CostTest, GemmEpilogBeatsGemmPlusActivation) {
  NodeId A = input({512, 512});
  NodeId B = input({512, 512});
  NodeId M = node("MatMul", {A, B});
  NodeId R = node("Gelu", {M});
  double Separate = CM.nodeCost(G, M).Seconds + CM.nodeCost(G, R).Seconds;
  NodeId E = node("GemmEpilog", {A, B});
  EXPECT_LT(CM.nodeCost(G, E).Seconds, Separate);
}

TEST_F(CostTest, ConvEpilogBeatsConvBiasRelu) {
  NodeId X = input({8, 64, 56, 56});
  NodeId W = input({64, 64, 3, 3});
  std::vector<term::Attr> CAttrs{{Symbol::intern("stride"), 1},
                                 {Symbol::intern("pad"), 1}};
  NodeId C = node("Conv2D", {X, W}, CAttrs);
  NodeId Bias = input({64, 1, 1});
  NodeId BA = node("BiasAdd", {C, Bias});
  NodeId R = node("Relu", {BA});
  double Separate = CM.nodeCost(G, C).Seconds + CM.nodeCost(G, BA).Seconds +
                    CM.nodeCost(G, R).Seconds;
  NodeId E = node("ConvEpilog", {X, W, Bias}, CAttrs);
  EXPECT_LT(CM.nodeCost(G, E).Seconds, Separate);
}

TEST_F(CostTest, CublasKernelBeatsGenericMatMulPlusTranspose) {
  NodeId A = input({512, 512});
  NodeId B = input({512, 512});
  NodeId T = node("Trans", {B});
  NodeId M = node("MatMul", {A, T});
  double Generic = CM.nodeCost(G, T).Seconds + CM.nodeCost(G, M).Seconds;
  NodeId Fused = node("cublasMM_xyT_f32", {A, B});
  EXPECT_LT(CM.nodeCost(G, Fused).Seconds, Generic);
}

TEST_F(CostTest, GraphCostSumsLiveKernels) {
  NodeId A = input({64, 64});
  NodeId M = node("MatMul", {A, A});
  NodeId R = node("Relu", {M});
  G.addOutput(R);
  GraphCost Total = CM.graphCost(G);
  EXPECT_EQ(Total.Kernels, 2u);
  double Expected = CM.nodeCost(G, M).Seconds + CM.nodeCost(G, R).Seconds;
  EXPECT_NEAR(Total.Seconds, Expected, 1e-12);
}

TEST_F(CostTest, DeadNodesDoNotCount) {
  NodeId A = input({64, 64});
  node("MatMul", {A, A}); // dead (not an output)
  NodeId R = node("Relu", {A});
  G.addOutput(R);
  G.removeUnreachable();
  EXPECT_EQ(CM.graphCost(G).Kernels, 1u);
}

TEST_F(CostTest, FusedRegionCostUsesRecordedWork) {
  term::OpId FusedOp = Sig.getOrAddOp("FusedRegion2", 2, 1, "fused");
  NodeId A = input({64, 64});
  NodeId B = input({64, 64});
  NodeId F = G.addNode(FusedOp, {A, B},
                       {{Symbol::intern("flops"), 1'000'000'000},
                        {Symbol::intern("bytes"), 1'000'000}});
  G.setType(F, TensorType::make(term::DType::F32, {64, 64}));
  KernelCost C = CM.nodeCost(G, F);
  EXPECT_DOUBLE_EQ(C.Flops, 1e9);
  EXPECT_DOUBLE_EQ(C.Bytes, 1e6);
  EXPECT_EQ(C.Launches, 1u);
}

TEST_F(CostTest, FusedRegionCostHelper) {
  NodeId A = input({128, 128});
  NodeId B = input({128, 128});
  NodeId M = node("MatMul", {A, B});
  NodeId R = node("Relu", {M});
  std::vector<NodeId> Interior{M, R};
  std::vector<NodeId> Frontier{A, B};
  KernelCost Fused = CM.fusedRegionCost(G, Interior, Frontier, R);
  double Separate = CM.nodeCost(G, M).Seconds + CM.nodeCost(G, R).Seconds;
  EXPECT_LT(Fused.Seconds, Separate);
  EXPECT_DOUBLE_EQ(Fused.Flops, CM.nodeCost(G, M).Flops +
                                    CM.nodeCost(G, R).Flops);
}

TEST_F(CostTest, DeviceSpecPreset) {
  DeviceSpec D = DeviceSpec::a6000Like();
  EXPECT_EQ(D.Name, "a6000-like");
  EXPECT_GT(D.PeakFlops, 1e13);
  EXPECT_GT(D.MemBandwidth, 1e11);
}

TEST_F(CostTest, FlattenIsFree) {
  NodeId F = node("Flatten", {input({2, 16, 7, 7})});
  KernelCost C = CM.nodeCost(G, F);
  EXPECT_EQ(C.Seconds, 0.0);
  EXPECT_EQ(C.Launches, 0u);
}

//===----------------------------------------------------------------------===//
// The delta-costing contract the beam search builds on
//===----------------------------------------------------------------------===//

// commitDelta must reprice a commit EXACTLY — graphCost(after) ==
// graphCost(before) + delta — and deltas of commits into disjoint regions
// must be additive, so a partial commit sequence can be priced as a
// running sum instead of a whole-graph re-cost per step
// (src/search/Search.cpp relies on both).
TEST_F(CostTest, CommitDeltasAreExactAndAdditiveOverDisjointRegions) {
  // Two disjoint Gelu(MatMul(A, B)) regions.
  NodeId Gelus[2], As[2], Bs[2];
  for (int I = 0; I != 2; ++I) {
    As[I] = input({256, 256});
    Bs[I] = input({256, 256});
    Gelus[I] = node("Gelu", {node("MatMul", {As[I], Bs[I]})});
    G.addOutput(Gelus[I]);
  }
  double Before = CM.graphCost(G).Seconds;

  // Commit an epilog fusion into each region, the way the search's
  // applyCandidate does: append the replacement, redirect uses, sweep,
  // delta-cost the appended-live vs swept-previously-live node sets.
  double Deltas[2];
  for (int I = 0; I != 2; ++I) {
    NodeId FirstNew = G.numNodes();
    NodeId E = node("GemmEpilog", {As[I], Bs[I]});
    G.replaceAllUses(Gelus[I], E, FirstNew);
    std::vector<NodeId> Swept;
    G.removeUnreachable(&Swept);
    std::vector<NodeId> Removed;
    for (NodeId N : Swept)
      if (N < FirstNew)
        Removed.push_back(N);
    std::vector<NodeId> Added{E};
    Deltas[I] = CM.commitDelta(G, Added, Removed);
    EXPECT_LT(Deltas[I], 0.0); // the fusion shrinks the modeled cost
  }
  double After = CM.graphCost(G).Seconds;
  EXPECT_NEAR(After, Before + Deltas[0] + Deltas[1], 1e-12);
  // Disjoint regions, identical shapes: the two deltas are the same
  // number, and each one alone accounts for exactly half the movement.
  EXPECT_DOUBLE_EQ(Deltas[0], Deltas[1]);
}

// Every fused kernel the standard rules introduce launches at most as
// many kernels as the nodes it replaces — fusion may never increase the
// modeled launch count.
TEST_F(CostTest, FusionNeverIncreasesLaunchCount) {
  NodeId A = input({128, 128});
  NodeId B = input({128, 128});
  NodeId M = node("MatMul", {A, B});
  NodeId Ge = node("Gelu", {M});
  EXPECT_LE(CM.nodeCost(G, node("GemmEpilog", {A, B})).Launches,
            CM.nodeCost(G, M).Launches + CM.nodeCost(G, Ge).Launches);

  NodeId T = node("Trans", {B});
  NodeId MT = node("MatMul", {A, T});
  EXPECT_LE(CM.nodeCost(G, node("cublasMM_xyT_f32", {A, B})).Launches,
            CM.nodeCost(G, T).Launches + CM.nodeCost(G, MT).Launches);

  NodeId Q = input({4, 64, 32});
  NodeId K = input({4, 64, 32});
  NodeId V = input({4, 64, 32});
  NodeId Scores = node("MatMul", {Q, node("Trans", {K})});
  NodeId Probs = node("Softmax", {Scores});
  NodeId Attn = node("MatMul", {Probs, V});
  unsigned Decomposed = CM.nodeCost(G, G.inputs(Scores)[1]).Launches +
                        CM.nodeCost(G, Scores).Launches +
                        CM.nodeCost(G, Probs).Launches +
                        CM.nodeCost(G, Attn).Launches;
  EXPECT_LE(CM.nodeCost(G, node("FMHA", {Q, K, V})).Launches, Decomposed);
}

// The search's pricing must be a pure function of the graph and rules:
// worker threads price hermetic clones, so the modeled costs a search run
// reports are bit-equal at every thread count.
TEST_F(CostTest, SearchPricingIsDeterministicAcrossThreads) {
  auto Lib = dsl::compileOrDie("pattern RR(x) { return Relu(Relu(x)); }\n"
                               "rule rr for RR(x) { return Relu(x); }\n",
                               Sig);
  rewrite::RuleSet RS;
  RS.addLibrary(*Lib);
  NodeId N = input({64, 64});
  for (int I = 0; I != 6; ++I)
    N = node("Relu", {N});
  G.addOutput(N);

  auto Run = [&](unsigned Threads) {
    graph::Graph Copy(G);
    rewrite::RewriteOptions O;
    O.Search = rewrite::SearchStrategy::Beam;
    O.BeamWidth = 2;
    O.Lookahead = 2;
    O.NumThreads = Threads;
    O.SearchCost = &CM;
    rewrite::RewriteStats S = rewrite::rewriteToFixpoint(Copy, RS, SI, O);
    return std::tuple(S.ModeledCostBefore, S.ModeledCostAfter,
                      CM.graphCost(Copy).Seconds,
                      graph::writeGraphText(Copy));
  };
  auto Serial = Run(0);
  EXPECT_GT(std::get<0>(Serial), std::get<1>(Serial));
  EXPECT_EQ(std::get<1>(Serial), std::get<2>(Serial));
  for (unsigned Threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(Threads));
    EXPECT_EQ(Run(Threads), Serial); // bit-equal doubles, identical graph
  }
}
