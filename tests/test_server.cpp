//===- tests/test_server.cpp - pypmd daemon robustness suite -------------===//
///
/// The rewrite-as-a-service failure-domain contract, pinned:
///
///  - wire hardening: every strict prefix of a frame is Truncated, every
///    single-byte corruption is detected and lands in exactly the
///    documented class (offset < 16 fatal-but-clean close; offset >= 16
///    MalformedRequest and the connection survives);
///  - per-request isolation: a deadline-exhausted request reports
///    BudgetExhausted(Deadline) and does not poison the next request;
///  - admission control: at queue capacity the daemon sheds with a
///    machine-readable Overloaded reply, deterministically;
///  - plan cache: hit replies are bit-identical to miss replies, and an
///    on-disk entry truncated at any point (a torn write) is a miss that
///    the next write repairs;
///  - ServerStress: 50 seeds of concurrent framed clients against one
///    daemon, every accepted reply bit-identical to a single-shot
///    `pypmc rewrite`-equivalent run of the same request.
///
//===----------------------------------------------------------------------===//

#include "server/PlanCache.h"
#include "server/Protocol.h"
#include "server/RequestQueue.h"
#include "server/Server.h"
#include "StressHarness.h"

#include "graph/GraphIO.h"
#include "models/Transformers.h"
#include "plan/PlanBuilder.h"
#include "plan/aot/Emitter.h"
#include "plan/aot/Library.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <fstream>
#include <future>
#include <sstream>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace pypm;
using namespace pypm::server;

namespace {

//===----------------------------------------------------------------------===//
// Fixtures
//===----------------------------------------------------------------------===//

const char *const kRules = "op Add(2);\n"
                           "op Zero(0);\n"
                           "op Neg(1);\n"
                           "pattern AddZero(x) { return Add(x, Zero()); }\n"
                           "rule elim_add_zero for AddZero(x) { return x; }\n"
                           "pattern NN(x) { return Neg(Neg(x)); }\n"
                           "rule elim_nn for NN(x) { return x; }\n";

const char *const kGraph = "z = Zero() : f32[]\n"
                           "a = Add(z, z) : f32[]\n"
                           "n = Neg(a) : f32[]\n"
                           "b = Neg(n) : f32[]\n"
                           "output b\n";

RewriteRequest basicRequest(uint64_t Seq = 1) {
  RewriteRequest R;
  R.Seq = Seq;
  R.RuleSet = kRules;
  R.GraphText = kGraph;
  return R;
}

/// A bidirectional in-process connection; Fds[0] is the client end.
struct SocketPair {
  int Fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0); }
  ~SocketPair() {
    if (Fds[0] >= 0)
      ::close(Fds[0]);
    if (Fds[1] >= 0)
      ::close(Fds[1]);
  }
  void send(std::string_view Bytes) {
    size_t Off = 0;
    while (Off < Bytes.size()) {
      ssize_t N = ::write(Fds[0], Bytes.data() + Off, Bytes.size() - Off);
      ASSERT_GT(N, 0);
      Off += static_cast<size_t>(N);
    }
  }
  void closeWrite() { ::shutdown(Fds[0], SHUT_WR); }
  /// Called by the serve thread after serve() returns, so the client's
  /// reply loop sees EOF instead of blocking on the open server end.
  void closeServer() {
    ::close(Fds[1]);
    Fds[1] = -1;
  }
};

/// Runs one scripted connection: write \p Wire to the server, half-close,
/// collect every reply body until EOF. Returns serve()'s clean/fatal bit.
bool scriptConnection(Server &Srv, const std::string &Wire,
                      std::vector<std::string> &Replies) {
  SocketPair SP;
  bool Clean = false;
  std::thread ServerThread([&] {
    Clean = Srv.serve(SP.Fds[1], SP.Fds[1]);
    SP.closeServer();
  });
  SP.send(Wire);
  SP.closeWrite();
  for (;;) {
    std::string Body;
    FrameStatus FS = readFrame(SP.Fds[0], /*Request=*/false, Body);
    if (FS != FrameStatus::Ok)
      break;
    Replies.push_back(std::move(Body));
  }
  ServerThread.join();
  return Clean;
}

RewriteReply decodeReplyOrDie(const std::string &Body) {
  RewriteReply Rep;
  std::string Err;
  EXPECT_TRUE(decodeRewriteReply(Body, Rep, Err)) << Err;
  return Rep;
}

//===----------------------------------------------------------------------===//
// Protocol codecs
//===----------------------------------------------------------------------===//

TEST(ServerProtocol, RewriteRequestRoundTrips) {
  RewriteRequest R = basicRequest(42);
  R.DeadlineMicros = 1234;
  R.MaxSteps = 99;
  R.MaxMuUnfolds = 7;
  R.MaxRewrites = 3;
  R.Threads = 2;
  R.Matcher = 3;
  R.Incremental = true;
  R.FaultSiteSeed = 5;
  R.FaultSitePeriod = 11;
  R.Search = 2;
  R.BeamWidth = 6;
  R.Lookahead = 3;
  R.SearchWitnesses = 2;
  RewriteRequest Out;
  std::string Err;
  ASSERT_TRUE(decodeRewriteRequest(encodeRewriteRequest(R), Out, Err)) << Err;
  EXPECT_EQ(R, Out);
}

TEST(ServerProtocol, RewriteRequestRejectsUnknownSearchStrategy) {
  RewriteRequest R = basicRequest(8);
  R.Search = 4; // only 0 (greedy), 1 (best-of-n), 2 (beam), 3 (auto) exist
  RewriteRequest Out;
  std::string Err;
  EXPECT_FALSE(decodeRewriteRequest(encodeRewriteRequest(R), Out, Err));
}

TEST(ServerProtocol, RewriteReplyRoundTrips) {
  RewriteReply R;
  R.Seq = 7;
  R.Status = ServerStatus::Ok;
  R.EngineCode = 3;
  R.Reason = 1;
  R.Cache = CacheSource::Disk;
  R.FaultsAbsorbed = 2;
  R.Quarantined = {"a", "b"};
  R.Passes = 4;
  R.Fired = 5;
  R.Matches = 6;
  R.LiveNodes = 8;
  R.Message = "diag";
  R.GraphText = "output z\n";
  RewriteReply Out;
  std::string Err;
  ASSERT_TRUE(decodeRewriteReply(encodeRewriteReply(R), Out, Err)) << Err;
  EXPECT_EQ(R, Out);
}

/// Every strict prefix of an encoded body must be rejected — never a
/// short successful parse, never a crash.
TEST(ServerProtocol, EveryBodyPrefixRejected) {
  std::string Body = encodeRewriteRequest(basicRequest());
  for (size_t Len = 0; Len < Body.size(); ++Len) {
    RewriteRequest Out;
    std::string Err;
    EXPECT_FALSE(decodeRewriteRequest(Body.substr(0, Len), Out, Err))
        << "prefix of length " << Len << " parsed";
  }
  // Trailing garbage is rejected too.
  RewriteRequest Out;
  std::string Err;
  EXPECT_FALSE(decodeRewriteRequest(Body + "x", Out, Err));
}

/// Every strict prefix of a full frame, then EOF, reads as Truncated.
TEST(ServerProtocol, EveryFramePrefixIsTruncated) {
  std::string Frame =
      frameBytes(/*Request=*/true, encodeRewriteRequest(basicRequest()));
  for (size_t Len = 0; Len < Frame.size(); ++Len) {
    SocketPair SP;
    SP.send(Frame.substr(0, Len));
    SP.closeWrite();
    std::string Body;
    FrameStatus FS = readFrame(SP.Fds[1], /*Request=*/true, Body);
    if (Len == 0)
      EXPECT_EQ(FS, FrameStatus::Eof);
    else
      EXPECT_EQ(FS, FrameStatus::Truncated) << "prefix length " << Len;
  }
}

//===----------------------------------------------------------------------===//
// Frame corruption taxonomy, end to end through serve()
//===----------------------------------------------------------------------===//

/// Flip every byte of a frame, one at a time, and run the full connection:
/// header-region corruption (offset < 16) must end the connection fatally
/// but cleanly (no replies, no desync, serve reports unclean); body-region
/// corruption (offset >= 16) must produce MalformedRequest and leave the
/// connection alive — the trailing ping is answered.
TEST(ServerServe, EveryByteCorruptionLandsInItsClass) {
  Server Srv(ServerOptions{});
  std::string Frame = frameBytes(true, encodePing(3));
  std::string Trailer = frameBytes(true, encodePing(4));
  for (size_t Off = 0; Off != Frame.size(); ++Off) {
    std::string Bad = Frame;
    Bad[Off] = static_cast<char>(Bad[Off] ^ 0x20);
    std::vector<std::string> Replies;
    bool Clean = scriptConnection(Srv, Bad + Trailer, Replies);
    if (Off < 16) {
      EXPECT_FALSE(Clean) << "offset " << Off;
      EXPECT_TRUE(Replies.empty()) << "offset " << Off;
    } else {
      EXPECT_TRUE(Clean) << "offset " << Off;
      ASSERT_EQ(Replies.size(), 2u) << "offset " << Off;
      RewriteReply Rep = decodeReplyOrDie(Replies[0]);
      EXPECT_EQ(Rep.Status, ServerStatus::MalformedRequest) << "offset "
                                                            << Off;
      uint64_t Seq = 0;
      EXPECT_TRUE(decodeSeqOnly(Replies[1], FrameType::PingReply, Seq));
      EXPECT_EQ(Seq, 4u) << "connection did not survive, offset " << Off;
    }
  }
  Srv.stop();
}

/// Same taxonomy on a rewrite frame (larger body, all field kinds).
TEST(ServerServe, CorruptRewriteBodyIsRejectedNotMisparsed) {
  Server Srv(ServerOptions{});
  std::string Frame =
      frameBytes(true, encodeRewriteRequest(basicRequest(11)));
  // A handful of spread-out body offsets plus the body checksum bytes.
  for (size_t Off : {size_t(16), size_t(17), Frame.size() / 2,
                     Frame.size() - 8, Frame.size() - 1}) {
    std::string Bad = Frame;
    Bad[Off] = static_cast<char>(Bad[Off] ^ 0x01);
    std::vector<std::string> Replies;
    EXPECT_TRUE(scriptConnection(Srv, Bad, Replies));
    ASSERT_EQ(Replies.size(), 1u);
    EXPECT_EQ(decodeReplyOrDie(Replies[0]).Status,
              ServerStatus::MalformedRequest)
        << "offset " << Off;
  }
  Srv.stop();
}

/// A well-framed body that is not a valid request (garbage tag) gets
/// MalformedRequest, and the connection survives.
TEST(ServerServe, GarbageBodyWellFramed) {
  Server Srv(ServerOptions{});
  std::string Wire = frameBytes(true, std::string("\x7fgarbage", 8)) +
                     frameBytes(true, encodePing(2));
  std::vector<std::string> Replies;
  EXPECT_TRUE(scriptConnection(Srv, Wire, Replies));
  ASSERT_EQ(Replies.size(), 2u);
  EXPECT_EQ(decodeReplyOrDie(Replies[0]).Status,
            ServerStatus::MalformedRequest);
  Srv.stop();
}

TEST(ServerServe, MalformedRuleSetAndGraphStatuses) {
  Server Srv(ServerOptions{});
  RewriteRequest BadRules = basicRequest(1);
  BadRules.RuleSet = "op Broken(";
  RewriteRequest BadGraph = basicRequest(2);
  BadGraph.GraphText = "x = Nope(ghost) f32[]\n";
  RewriteRequest Named = basicRequest(3);
  Named.NamedRuleSet = true;
  Named.RuleSet = "no-such-catalog-entry";
  std::string Wire = frameBytes(true, encodeRewriteRequest(BadRules)) +
                     frameBytes(true, encodeRewriteRequest(BadGraph)) +
                     frameBytes(true, encodeRewriteRequest(Named));
  std::vector<std::string> Replies;
  EXPECT_TRUE(scriptConnection(Srv, Wire, Replies));
  ASSERT_EQ(Replies.size(), 3u);
  ServerStatus Got[3];
  uint64_t Seqs = 0;
  for (const std::string &Body : Replies) {
    RewriteReply Rep = decodeReplyOrDie(Body);
    ASSERT_GE(Rep.Seq, 1u);
    ASSERT_LE(Rep.Seq, 3u);
    Got[Rep.Seq - 1] = Rep.Status;
    Seqs |= 1u << Rep.Seq;
  }
  EXPECT_EQ(Seqs, 0b1110u); // all three replied, by Seq
  EXPECT_EQ(Got[0], ServerStatus::RuleSetMalformed);
  EXPECT_EQ(Got[1], ServerStatus::GraphMalformed);
  EXPECT_EQ(Got[2], ServerStatus::RuleSetUnreadable);
  Srv.stop();
}

TEST(ServerServe, SearchRequestRunsAndReachesGreedyFixpoint) {
  Server Srv(ServerOptions{});
  RewriteReply Greedy = Srv.handle(basicRequest(1));
  ASSERT_EQ(Greedy.Status, ServerStatus::Ok);
  ASSERT_GE(Greedy.Fired, 1u);
  RewriteRequest R = basicRequest(2);
  R.Search = 2; // beam
  R.BeamWidth = 2;
  R.Lookahead = 1;
  RewriteReply Beam = Srv.handle(R);
  EXPECT_EQ(Beam.Status, ServerStatus::Ok);
  EXPECT_EQ(static_cast<EngineStatusCode>(Beam.EngineCode),
            EngineStatusCode::Completed);
  // kRules is confluent and conflict-free, so cost-directed commit order
  // lands on the same fixpoint with the same number of fires.
  EXPECT_EQ(Beam.GraphText, Greedy.GraphText);
  EXPECT_EQ(Beam.Fired, Greedy.Fired);
  Srv.stop();
}

//===----------------------------------------------------------------------===//
// Per-request budgets: exhaustion without poisoning
//===----------------------------------------------------------------------===//

TEST(ServerBudget, DeadlineExhaustionDoesNotPoisonNextRequest) {
  Server Srv(ServerOptions{});
  // Reference: an ungoverned run on a fresh server.
  RewriteReply Want = Srv.handle(basicRequest(1));
  ASSERT_EQ(Want.Status, ServerStatus::Ok);
  ASSERT_EQ(static_cast<EngineStatusCode>(Want.EngineCode),
            EngineStatusCode::Completed);
  ASSERT_GE(Want.Fired, 1u);

  // A ~zero deadline trips at the first budget poll, mid-discovery.
  RewriteRequest Doomed = basicRequest(2);
  Doomed.DeadlineMicros = 1;
  RewriteReply Exhausted = Srv.handle(Doomed);
  EXPECT_EQ(Exhausted.Status, ServerStatus::Ok);
  EXPECT_EQ(static_cast<EngineStatusCode>(Exhausted.EngineCode),
            EngineStatusCode::BudgetExhausted);
  EXPECT_EQ(static_cast<BudgetReason>(Exhausted.Reason),
            BudgetReason::Deadline);

  // The very next request on the same server must be indistinguishable
  // from the fresh-server reference (same cache entry, same plan, fresh
  // budget): exhaustion is per-request state, not server state.
  RewriteReply After = Srv.handle(basicRequest(1));
  After.Cache = Want.Cache; // only the cache tier may differ
  EXPECT_EQ(Want, After);
  Srv.stop();
}

TEST(ServerBudget, StepCeilingReportsSteps) {
  Server Srv(ServerOptions{});
  RewriteRequest R = basicRequest(5);
  R.MaxSteps = 1;
  RewriteReply Rep = Srv.handle(R);
  ASSERT_EQ(Rep.Status, ServerStatus::Ok);
  EXPECT_EQ(static_cast<EngineStatusCode>(Rep.EngineCode),
            EngineStatusCode::BudgetExhausted);
  EXPECT_EQ(static_cast<BudgetReason>(Rep.Reason), BudgetReason::Steps);
  Srv.stop();
}

//===----------------------------------------------------------------------===//
// Admission control
//===----------------------------------------------------------------------===//

TEST(ServerQueue, RequestQueueDrainSemantics) {
  RequestQueue<int> Q(2);
  EXPECT_TRUE(Q.tryPush(1));
  EXPECT_TRUE(Q.tryPush(2));
  EXPECT_FALSE(Q.tryPush(3)); // full: shed, never block
  Q.close();
  EXPECT_FALSE(Q.tryPush(4)); // closed: no admission
  EXPECT_EQ(Q.pop(), 1);      // but admitted items drain
  EXPECT_EQ(Q.pop(), 2);
  EXPECT_EQ(Q.pop(), std::nullopt);
}

/// Deterministic shedding: one worker parked on the test hook, capacity-1
/// queue. Request 1 is being processed, request 2 queues, request 3 must
/// shed with Overloaded — and the drain still answers 1 and 2.
TEST(ServerQueue, ShedsAtCapacityDeterministically) {
  std::promise<void> PoppedP, ReleaseP;
  std::shared_future<void> Release(ReleaseP.get_future());
  ServerOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 1;
  std::atomic<bool> First{true};
  SO.BeforeProcess = [&](const RewriteRequest &) {
    if (First.exchange(false)) {
      PoppedP.set_value();
      Release.wait();
    }
  };
  Server Srv(SO);
  SocketPair SP;
  bool Clean = false;
  std::thread ServerThread(
      [&] { Clean = Srv.serve(SP.Fds[1], SP.Fds[1]); });

  SP.send(frameBytes(true, encodeRewriteRequest(basicRequest(1))));
  PoppedP.get_future().wait(); // worker busy on 1; queue empty
  // The serve loop reads this connection's frames strictly in order, so
  // request 2 is admitted (queue now full) before request 3 is even read:
  // no sleep or polling needed for the boundary to be deterministic.
  SP.send(frameBytes(true, encodeRewriteRequest(basicRequest(2))));
  SP.send(frameBytes(true, encodeRewriteRequest(basicRequest(3))));

  // Request 3's Overloaded reply is written synchronously by the serve
  // loop — it is the first reply on the wire.
  std::string Body;
  ASSERT_EQ(readFrame(SP.Fds[0], false, Body), FrameStatus::Ok);
  RewriteReply Shed = decodeReplyOrDie(Body);
  EXPECT_EQ(Shed.Seq, 3u);
  EXPECT_EQ(Shed.Status, ServerStatus::Overloaded);

  ReleaseP.set_value();
  SP.send(frameBytes(true, encodeShutdown(9)));
  unsigned Oks = 0;
  ShutdownReply SR;
  bool GotShutdown = false;
  for (;;) {
    std::string B;
    if (readFrame(SP.Fds[0], false, B) != FrameStatus::Ok)
      break;
    if (frameType(B) == FrameType::ShutdownReply) {
      ASSERT_TRUE(decodeShutdownReply(B, SR));
      GotShutdown = true;
      break;
    }
    RewriteReply Rep = decodeReplyOrDie(B);
    EXPECT_EQ(Rep.Status, ServerStatus::Ok);
    ++Oks;
  }
  ServerThread.join();
  EXPECT_TRUE(Clean);
  EXPECT_EQ(Oks, 2u) << "both admitted requests drained to replies";
  ASSERT_TRUE(GotShutdown);
  EXPECT_EQ(SR.Served, 2u);
  EXPECT_EQ(SR.Shed, 1u);
  Srv.stop();
}

//===----------------------------------------------------------------------===//
// Plan cache
//===----------------------------------------------------------------------===//

TEST(ServerCache, HitRepliesBitIdenticalToMissReplies) {
  Server Srv(ServerOptions{});
  RewriteReply Miss = Srv.handle(basicRequest(1));
  ASSERT_EQ(Miss.Status, ServerStatus::Ok);
  EXPECT_EQ(Miss.Cache, CacheSource::Compiled);
  RewriteReply Hit = Srv.handle(basicRequest(1));
  EXPECT_EQ(Hit.Cache, CacheSource::Memory);
  Hit.Cache = Miss.Cache; // the tier tag is the only allowed difference
  EXPECT_EQ(Miss, Hit);
  EXPECT_EQ(Srv.cache().stats().RawHits, 1u);
  Srv.stop();
}

struct TempDir {
  std::string Path;
  TempDir() {
    char Tmpl[] = "/tmp/pypm_cache_test_XXXXXX";
    Path = ::mkdtemp(Tmpl);
  }
  ~TempDir() {
    std::string Cmd = "rm -rf '" + Path + "'";
    [[maybe_unused]] int RC = std::system(Cmd.c_str());
  }
};

TEST(ServerCache, DiskTierRoundTripsAndVerifiesKey) {
  TempDir Dir;
  PlanCache::Options CO;
  CO.Dir = Dir.Path;
  PlanCache Cache(CO);
  DiagnosticEngine Diags;
  CacheSource Src;
  auto E1 = Cache.acquire(kRules, Diags, Src);
  ASSERT_TRUE(E1) << Diags.renderAll();
  EXPECT_EQ(Src, CacheSource::Compiled);
  Cache.flushMemory();
  auto E2 = Cache.acquire(kRules, Diags, Src);
  ASSERT_TRUE(E2);
  EXPECT_EQ(Src, CacheSource::Disk);
  EXPECT_EQ(E1->Key, E2->Key);
  EXPECT_EQ(E1->LibBytes, E2->LibBytes);
}

/// The crash-safety satellite: an on-disk entry truncated at any point (a
/// torn write that bypassed the temp+rename discipline, or a corrupted
/// filesystem) is a MISS — detected by the hardened loader or the key
/// re-verification — and the subsequent compile repairs the entry.
TEST(ServerCache, TruncatedDiskEntryIsMissAndRepaired) {
  TempDir Dir;
  PlanCache::Options CO;
  CO.Dir = Dir.Path;
  PlanCache Cache(CO);
  DiagnosticEngine Diags;
  CacheSource Src;
  auto E = Cache.acquire(kRules, Diags, Src);
  ASSERT_TRUE(E);
  std::string Path = Dir.Path + "/";
  {
    char Name[32];
    std::snprintf(Name, sizeof(Name), "%016llx.pypmplan",
                  (unsigned long long)E->Key);
    Path += Name;
  }
  std::string Artifact;
  {
    std::ifstream In(Path, std::ios::binary);
    ASSERT_TRUE(In.good());
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Artifact = Buf.str();
  }
  ASSERT_GT(Artifact.size(), 16u);

  // Spread truncation points across the artifact, including 0 (empty
  // file: a writer killed right after open) and every byte of the header.
  std::vector<size_t> Cuts;
  for (size_t I = 0; I <= 16 && I < Artifact.size(); ++I)
    Cuts.push_back(I);
  for (size_t I = 17; I < Artifact.size(); I += Artifact.size() / 37 + 1)
    Cuts.push_back(I);
  for (size_t Cut : Cuts) {
    SCOPED_TRACE("truncated to " + std::to_string(Cut) + " bytes");
    {
      std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
      Out.write(Artifact.data(), static_cast<std::streamsize>(Cut));
    }
    Cache.flushMemory();
    uint64_t CorruptBefore = Cache.stats().CorruptDiskEntries;
    auto R = Cache.acquire(kRules, Diags, Src);
    ASSERT_TRUE(R) << Diags.renderAll();
    EXPECT_EQ(Src, CacheSource::Compiled) << "truncated entry served";
    EXPECT_EQ(Cache.stats().CorruptDiskEntries, CorruptBefore + 1);
    EXPECT_EQ(R->LibBytes, E->LibBytes);
    // The recompile repaired the entry: next cold read is a disk hit.
    Cache.flushMemory();
    auto R2 = Cache.acquire(kRules, Diags, Src);
    ASSERT_TRUE(R2);
    EXPECT_EQ(Src, CacheSource::Disk) << "entry was not repaired";
  }
}

/// A valid artifact filed under the wrong name (or a key collision) must
/// not be served: the key is re-derived from the content on load.
TEST(ServerCache, WrongNameArtifactIsMiss) {
  TempDir Dir;
  PlanCache::Options CO;
  CO.Dir = Dir.Path;
  PlanCache Cache(CO);
  DiagnosticEngine Diags;
  CacheSource Src;
  auto E = Cache.acquire(kRules, Diags, Src);
  ASSERT_TRUE(E);
  // File the artifact under a different rule set's key.
  std::string Other = std::string(kRules) +
                      "pattern ZZ(x) { return Neg(Zero()); }\n";
  auto EO = Cache.acquire(Other, Diags, Src);
  ASSERT_TRUE(EO);
  char A[32], B[32];
  std::snprintf(A, sizeof(A), "%016llx.pypmplan", (unsigned long long)E->Key);
  std::snprintf(B, sizeof(B), "%016llx.pypmplan",
                (unsigned long long)EO->Key);
  ASSERT_EQ(::rename((Dir.Path + "/" + A).c_str(),
                     (Dir.Path + "/" + B).c_str()),
            0);
  Cache.flushMemory();
  uint64_t CorruptBefore = Cache.stats().CorruptDiskEntries;
  auto R = Cache.acquire(Other, Diags, Src);
  ASSERT_TRUE(R);
  EXPECT_EQ(Src, CacheSource::Compiled);
  EXPECT_EQ(Cache.stats().CorruptDiskEntries, CorruptBefore + 1);
}

static std::vector<std::string> listFiles(const std::string &Dir,
                                          const std::string &Suffix) {
  std::vector<std::string> Out;
  if (DIR *D = ::opendir(Dir.c_str())) {
    while (dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (Name.size() > Suffix.size() &&
          Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) ==
              0)
        Out.push_back(Dir + "/" + Name);
    }
    ::closedir(D);
  }
  return Out;
}

static std::string slurpFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// The sidecar raw-index (.pypmreq) contract. A fresh PlanCache over a
/// warm directory — a restarted daemon — resolves the raw request bytes
/// straight to the artifact: Src is Disk and Stats.Compiles stays 0. Then
/// the degradation ladder: a DELETED index falls back to the content tier
/// (still a disk hit, no corruption counted) and is re-written; a
/// DANGLING index (artifact gone) is a clean miss that the recompile
/// repairs; and EVERY single-byte corruption of the index is detected by
/// its checksum, counted, degraded to a content-tier hit, and the index
/// file restored byte-for-byte.
TEST(ServerCache, SidecarIndexColdStartAndCorruptionLadder) {
  TempDir Dir;
  PlanCache::Options CO;
  CO.Dir = Dir.Path;
  DiagnosticEngine Diags;
  CacheSource Src;
  {
    PlanCache Warm(CO);
    auto E = Warm.acquire(kRules, Diags, Src);
    ASSERT_TRUE(E) << Diags.renderAll();
    EXPECT_EQ(Src, CacheSource::Compiled);
  }
  auto Artifacts = listFiles(Dir.Path, ".pypmplan");
  auto Indexes = listFiles(Dir.Path, ".pypmreq");
  ASSERT_EQ(Artifacts.size(), 1u);
  ASSERT_EQ(Indexes.size(), 1u);
  const std::string IndexPath = Indexes[0];
  const std::string Pristine = slurpFile(IndexPath);
  ASSERT_GT(Pristine.size(), 28u); // magic + keys + raw bytes + checksum

  { // Cold start, both files intact: disk hit, zero compiles.
    PlanCache Cold(CO);
    auto E = Cold.acquire(kRules, Diags, Src);
    ASSERT_TRUE(E);
    EXPECT_EQ(Src, CacheSource::Disk);
    EXPECT_EQ(Cold.stats().Compiles, 0u);
    EXPECT_EQ(Cold.stats().DiskHits, 1u);
    EXPECT_EQ(Cold.stats().CorruptDiskEntries, 0u);
  }

  { // Deleted index: content tier still hits, and the index comes back.
    ASSERT_EQ(::unlink(IndexPath.c_str()), 0);
    PlanCache Cold(CO);
    auto E = Cold.acquire(kRules, Diags, Src);
    ASSERT_TRUE(E);
    EXPECT_EQ(Src, CacheSource::Disk);
    EXPECT_EQ(Cold.stats().Compiles, 0u);
    EXPECT_EQ(Cold.stats().CorruptDiskEntries, 0u);
    EXPECT_EQ(slurpFile(IndexPath), Pristine) << "index not re-written";
  }

  { // Dangling index: valid mapping, artifact gone. A clean miss (no
    // corruption anywhere) that the recompile repairs.
    ASSERT_EQ(::unlink(Artifacts[0].c_str()), 0);
    PlanCache Cold(CO);
    auto E = Cold.acquire(kRules, Diags, Src);
    ASSERT_TRUE(E);
    EXPECT_EQ(Src, CacheSource::Compiled);
    EXPECT_EQ(Cold.stats().CorruptDiskEntries, 0u);
    ASSERT_FALSE(slurpFile(Artifacts[0]).empty()) << "artifact not repaired";
  }

  // Single-byte corruption sweep: the checksum covers every byte before
  // itself, and a flipped checksum byte mismatches the recomputation, so
  // every flip is detected. Sampled stride keeps the sweep fast; offsets
  // 0..3 (magic) and the final 8 (checksum) are always included.
  std::vector<size_t> Offsets = {0, 1, 2, 3};
  for (size_t I = 4; I < Pristine.size(); I += Pristine.size() / 13 + 1)
    Offsets.push_back(I);
  for (size_t I = Pristine.size() - 8; I < Pristine.size(); ++I)
    Offsets.push_back(I);
  for (size_t Off : Offsets) {
    SCOPED_TRACE("index byte " + std::to_string(Off) + " flipped");
    std::string Bad = Pristine;
    Bad[Off] = static_cast<char>(Bad[Off] ^ 0x5a);
    {
      std::ofstream Out(IndexPath, std::ios::binary | std::ios::trunc);
      Out.write(Bad.data(), static_cast<std::streamsize>(Bad.size()));
    }
    PlanCache Cold(CO);
    auto E = Cold.acquire(kRules, Diags, Src);
    ASSERT_TRUE(E) << Diags.renderAll();
    EXPECT_EQ(Src, CacheSource::Disk) << "content tier should still hit";
    EXPECT_EQ(Cold.stats().Compiles, 0u);
    EXPECT_EQ(Cold.stats().CorruptDiskEntries, 1u);
    EXPECT_EQ(slurpFile(IndexPath), Pristine) << "index not repaired";
  }
}

/// Fourth cache tier (Options::Aot): the acquired entry carries a
/// validated emitted-plan library, the artifact persists as <key>.pypmso
/// next to the .pypmplan, a cold start serves it without rebuilding, and
/// a corrupted artifact is a miss (caught by the pre-dlopen marker scan)
/// repaired by an atomic rebuild. Gated on a host C++ compiler like every
/// emitted-tier test; the tier itself degrades to "absent" without one.
TEST(ServerCache, AotTierBuildsServesAndRepairs) {
  if (plan::aot::AotEmitter::findCompiler().empty())
    GTEST_SKIP() << "no C++ compiler available; emitted tier not buildable";
  TempDir Dir;
  PlanCache::Options CO;
  CO.Dir = Dir.Path;
  CO.Aot = true;
  DiagnosticEngine Diags;
  CacheSource Src;
  {
    PlanCache Warm(CO);
    auto E = Warm.acquire(kRules, Diags, Src);
    ASSERT_TRUE(E) << Diags.renderAll();
    ASSERT_NE(E->aotLib(), nullptr);
    EXPECT_TRUE(E->aotLib()->matches(E->prog()));
    EXPECT_EQ(Warm.stats().AotBuilds, 1u);
    EXPECT_EQ(Warm.stats().AotHits, 0u);
    EXPECT_EQ(Warm.stats().AotFailures, 0u);
  }
  auto Sos = listFiles(Dir.Path, ".pypmso");
  ASSERT_EQ(Sos.size(), 1u);

  { // Cold start over a warm directory: served, not rebuilt.
    PlanCache Cold(CO);
    auto E = Cold.acquire(kRules, Diags, Src);
    ASSERT_TRUE(E);
    EXPECT_EQ(Src, CacheSource::Disk);
    ASSERT_NE(E->aotLib(), nullptr);
    EXPECT_EQ(Cold.stats().AotHits, 1u);
    EXPECT_EQ(Cold.stats().AotBuilds, 0u);
  }

  { // Corrupt artifact: rejected before any dlopen, rebuilt in place; the
    // entry is still served, with a once-again-valid library.
    std::ofstream(Sos[0], std::ios::binary | std::ios::trunc) << "garbage";
    PlanCache Cold(CO);
    auto E = Cold.acquire(kRules, Diags, Src);
    ASSERT_TRUE(E);
    ASSERT_NE(E->aotLib(), nullptr);
    EXPECT_EQ(Cold.stats().AotHits, 0u);
    EXPECT_EQ(Cold.stats().AotBuilds, 1u);
  }

  { // ...and the repair is durable.
    PlanCache Cold(CO);
    auto E = Cold.acquire(kRules, Diags, Src);
    ASSERT_TRUE(E);
    EXPECT_EQ(Cold.stats().AotHits, 1u);
  }
}

//===----------------------------------------------------------------------===//
// Sticky quarantine (opt-in)
//===----------------------------------------------------------------------===//

TEST(ServerQuarantine, PreQuarantinedEntriesAreSilentlyDisabled) {
  // Engine-level contract for the carry-over: a pre-quarantined pattern
  // never fires and never appears in this run's status.
  term::Signature Sig;
  DiagnosticEngine D;
  auto Lib = dsl::compileOrDie(kRules, Sig);
  rewrite::RuleSet RS;
  RS.addLibrary(*Lib);
  graph::Graph G(Sig);
  DiagnosticEngine GD;
  auto GP = graph::parseGraphText(kGraph, Sig, GD);
  ASSERT_TRUE(GP);
  std::vector<std::string> Pre = {"AddZero"}; // pattern entry name
  rewrite::RewriteOptions O;
  O.PreQuarantined = &Pre;
  rewrite::RewriteStats S =
      rewrite::rewriteToFixpoint(*GP, RS, graph::ShapeInference(), O);
  EXPECT_EQ(S.Status.Code, EngineStatusCode::Completed);
  EXPECT_TRUE(S.Status.QuarantinedPatterns.empty());
  // Only the Neg(Neg(x)) rule ran: Add(z, Zero) survives.
  std::string Out = graph::writeGraphText(*GP);
  EXPECT_NE(Out.find("Add"), std::string::npos);
  EXPECT_EQ(Out.find("Neg"), std::string::npos);
}

} // namespace

//===----------------------------------------------------------------------===//
// ServerStress: 50-seed concurrent framed clients vs single-shot
//===----------------------------------------------------------------------===//

namespace {

std::string stressOps() {
  return "op Relu(1);\nop Tanh(1);\nop Sigmoid(1);\nop Neg(1);\n"
         "op Gelu(1);\nop Add(2);\nop Mul(2);\n";
}

std::string stressGraphText(uint64_t Seed) {
  term::Signature Sig;
  models::declareModelOps(Sig);
  graph::Graph G(Sig);
  pypm::testing::buildStressGraph(Seed, G, Sig);
  graph::ShapeInference SI;
  SI.inferAll(G);
  return graph::writeGraphText(G);
}

/// Derives the seed's request: rules + graph from the StressHarness
/// generators, engine knobs varied deterministically by seed.
RewriteRequest stressRequest(uint64_t Seed) {
  RewriteRequest R;
  R.Seq = Seed;
  R.RuleSet = stressOps() + pypm::testing::stressRuleSource(Seed);
  R.GraphText = stressGraphText(Seed);
  R.Matcher = static_cast<uint8_t>(Seed % 4); // default/machine/fast/plan
  R.Threads = static_cast<uint32_t>(Seed % 3);
  R.Incremental = (Seed % 5) == 0;
  R.Batch = (Seed % 7) == 0;
  // Seeds drawing the ping-pong template pair only terminate via the
  // rewrite limit (StressHarness.h); cap every request identically so the
  // sweep is bounded and the cap itself is part of the compared outcome.
  R.MaxRewrites = 8000;
  if (Seed % 11 == 0)
    R.MaxSteps = 50 + Seed; // deterministic mid-run exhaustion
  return R;
}

/// What a single-shot `pypmc rewrite` of the same request does: fresh
/// signature, fresh compile, fresh budget — no daemon, no cache.
struct SingleShot {
  std::string GraphText;
  rewrite::RewriteStats Stats;
  size_t LiveNodes = 0;
};

SingleShot singleShot(const RewriteRequest &R) {
  SingleShot Out;
  term::Signature Sig;
  DiagnosticEngine D;
  auto Lib = dsl::compile(R.RuleSet, Sig, D);
  EXPECT_TRUE(Lib) << D.renderAll();
  if (!Lib)
    return Out;
  rewrite::RuleSet RS;
  RS.addLibrary(*Lib);
  auto G = graph::parseGraphText(R.GraphText, Sig, D);
  EXPECT_TRUE(G) << D.renderAll();
  if (!G)
    return Out;
  rewrite::RewriteOptions O;
  O.NumThreads = R.Threads;
  O.Matcher = R.Matcher == 1   ? rewrite::MatcherKind::Machine
              : R.Matcher == 2 ? rewrite::MatcherKind::Fast
                               : rewrite::MatcherKind::Plan;
  O.Incremental = R.Incremental;
  O.Batch = R.Batch;
  if (R.MaxRewrites)
    O.MaxRewrites = R.MaxRewrites;
  O.Diags = &D;
  CancellationToken Cancel;
  BudgetLimits Limits;
  Limits.DeadlineSeconds = static_cast<double>(R.DeadlineMicros) / 1e6;
  Limits.MaxTotalSteps = R.MaxSteps;
  Limits.MaxTotalMuUnfolds = R.MaxMuUnfolds;
  Limits.Cancel = &Cancel;
  Budget Bgt(Limits);
  O.EngineBudget = &Bgt;
  FaultInjector::Config FC;
  FC.SiteSeed = R.FaultSiteSeed;
  FC.SitePeriod = R.FaultSitePeriod;
  FaultInjector FI(FC);
  if (R.FaultSitePeriod != 0)
    O.Faults = &FI;
  Out.Stats = rewrite::rewriteToFixpoint(*G, RS, graph::ShapeInference(), O);
  Out.GraphText = graph::writeGraphText(*G);
  Out.LiveNodes = G->numLiveNodes();
  return Out;
}

void expectReplyMatchesSingleShot(const RewriteReply &Rep,
                                  const SingleShot &Want,
                                  const std::string &Repro) {
  SCOPED_TRACE(Repro);
  ASSERT_EQ(Rep.Status, ServerStatus::Ok) << Rep.Message;
  EXPECT_EQ(Rep.GraphText, Want.GraphText);
  EXPECT_EQ(static_cast<EngineStatusCode>(Rep.EngineCode),
            Want.Stats.Status.Code);
  EXPECT_EQ(static_cast<BudgetReason>(Rep.Reason), Want.Stats.Status.Reason);
  EXPECT_EQ(Rep.Quarantined, Want.Stats.Status.QuarantinedPatterns);
  EXPECT_EQ(Rep.FaultsAbsorbed, Want.Stats.Status.FaultsAbsorbed);
  EXPECT_EQ(Rep.Passes, Want.Stats.Passes);
  EXPECT_EQ(Rep.Fired, Want.Stats.TotalFired);
  EXPECT_EQ(Rep.Matches, Want.Stats.TotalMatches);
  EXPECT_EQ(Rep.LiveNodes, Want.LiveNodes);
}

/// 50 seeds, 8 concurrent framed connections against ONE daemon (shared
/// worker pool, shared plan cache), every request pipelined. Every reply
/// must be bit-identical to the single-shot run of the same seed:
/// concurrency, the shared cache, and reply reordering are not allowed to
/// be observable in any accepted reply.
TEST(ServerStress, FiftySeedConcurrentClientsMatchSingleShot) {
  constexpr uint64_t NumSeeds = 50;
  constexpr unsigned NumClients = 8;

  // Single-shot references, computed serially up front.
  std::vector<RewriteRequest> Requests;
  std::vector<SingleShot> Want;
  for (uint64_t Seed = 1; Seed <= NumSeeds; ++Seed) {
    Requests.push_back(stressRequest(Seed));
    Want.push_back(singleShot(Requests.back()));
  }

  ServerOptions SO;
  SO.Workers = 4;
  SO.QueueCapacity = NumSeeds; // admission is exercised elsewhere;
                               // here every request must be accepted
  Server Srv(SO);
  Srv.start();

  std::vector<std::thread> Clients;
  std::mutex FailMu;
  for (unsigned C = 0; C != NumClients; ++C) {
    Clients.emplace_back([&, C] {
      SocketPair SP;
      std::thread ServerThread([&] {
        Srv.serve(SP.Fds[1], SP.Fds[1]);
        SP.closeServer();
      });
      // This client's slice of the seeds, pipelined in one burst.
      std::vector<uint64_t> Mine;
      for (uint64_t Seed = 1 + C; Seed <= NumSeeds; Seed += NumClients)
        Mine.push_back(Seed);
      std::string Burst;
      for (uint64_t Seed : Mine)
        Burst += frameBytes(true, encodeRewriteRequest(Requests[Seed - 1]));
      SP.send(Burst);
      SP.closeWrite();
      size_t Got = 0;
      for (;;) {
        std::string Body;
        FrameStatus FS = readFrame(SP.Fds[0], false, Body);
        if (FS != FrameStatus::Ok)
          break;
        RewriteReply Rep;
        std::string Err;
        {
          std::lock_guard<std::mutex> Lock(FailMu);
          ASSERT_TRUE(decodeRewriteReply(Body, Rep, Err)) << Err;
          uint64_t Seed = Rep.Seq; // Seq encodes the seed
          ASSERT_GE(Seed, 1u);
          ASSERT_LE(Seed, NumSeeds);
          expectReplyMatchesSingleShot(
              Rep, Want[Seed - 1],
              pypm::testing::stressRepro(
                  Seed, "client=" + std::to_string(C) + " matcher=" +
                            std::to_string(Requests[Seed - 1].Matcher) +
                            " threads=" +
                            std::to_string(Requests[Seed - 1].Threads)));
        }
        ++Got;
      }
      ServerThread.join();
      std::lock_guard<std::mutex> Lock(FailMu);
      EXPECT_EQ(Got, Mine.size()) << "client " << C << " lost replies";
    });
  }
  for (std::thread &T : Clients)
    T.join();
  EXPECT_EQ(Srv.served(), NumSeeds);
  EXPECT_EQ(Srv.shed(), 0u);
  Srv.stop();
}

/// Deterministic per-request fault injection through the daemon: the
/// site-scheduled injector must land at the identical committed attempt
/// as the single-shot run — absorbed-fault counts and quarantine lists
/// agree exactly.
TEST(ServerStress, PerRequestFaultInjectionMatchesSingleShot) {
  Server Srv(ServerOptions{});
  for (uint64_t Seed : {3u, 7u, 19u, 23u, 41u}) {
    RewriteRequest R = stressRequest(Seed);
    R.FaultSiteSeed = Seed * 17 + 1;
    R.FaultSitePeriod = 5;
    SingleShot Want = singleShot(R);
    RewriteReply Rep = Srv.handle(R);
    expectReplyMatchesSingleShot(Rep, Want,
                                 pypm::testing::stressRepro(Seed, "faulty"));
  }
  Srv.stop();
}

} // namespace
