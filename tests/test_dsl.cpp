//===- tests/test_dsl.cpp - Lexer, parser, and lowering ------------------------===//

#include "TestHelpers.h"

#include "dsl/Sema.h"

using namespace pypm;
using namespace pypm::dsl;
using namespace pypm::pattern;

namespace {

class DslTest : public pypm::testing::CoreFixture {
protected:
  std::unique_ptr<Library> compileOk(std::string_view Src) {
    DiagnosticEngine Diags;
    auto Lib = dsl::compile(Src, Sig, Diags);
    EXPECT_TRUE(Lib != nullptr) << Diags.renderAll();
    return Lib;
  }
  std::string compileErr(std::string_view Src) {
    DiagnosticEngine Diags;
    auto Lib = dsl::compile(Src, Sig, Diags);
    EXPECT_EQ(Lib, nullptr) << "compilation unexpectedly succeeded";
    return Diags.renderAll();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, TokenizesPunctuationAndKeywords) {
  DiagnosticEngine Diags;
  auto Toks = tokenize("pattern P(x) { assert x.rank <= 2; }", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  std::vector<TokKind> Kinds;
  for (const Token &T : Toks)
    Kinds.push_back(T.Kind);
  std::vector<TokKind> Expected = {
      TokKind::KwPattern, TokKind::Ident,  TokKind::LParen, TokKind::Ident,
      TokKind::RParen,    TokKind::LBrace, TokKind::KwAssert, TokKind::Ident,
      TokKind::Dot,       TokKind::Ident,  TokKind::LessEq, TokKind::IntLit,
      TokKind::Semi,      TokKind::RBrace, TokKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, FloatLiteralsAreMicroScaled) {
  DiagnosticEngine Diags;
  auto Toks = tokenize("0.5 1.414214 2.0", Diags);
  EXPECT_EQ(Toks[0].IntValue, 500000);
  EXPECT_EQ(Toks[1].IntValue, 1414214);
  EXPECT_EQ(Toks[2].IntValue, 2000000);
}

TEST(Lexer, CommentsAreSkipped) {
  DiagnosticEngine Diags;
  auto Toks = tokenize("x // comment\n# another\ny", Diags);
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Text, "x");
  EXPECT_EQ(Toks[1].Text, "y");
}

TEST(Lexer, TracksLineAndColumn) {
  DiagnosticEngine Diags;
  auto Toks = tokenize("a\n  b", Diags);
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[1].Loc.Col, 3u);
}

TEST(Lexer, ReportsBadCharacters) {
  DiagnosticEngine Diags;
  tokenize("a @ b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, ReportsUnterminatedString) {
  DiagnosticEngine Diags;
  tokenize("class(\"oops", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, StringsAndArrows) {
  DiagnosticEngine Diags;
  auto Toks = tokenize("op F(2) -> 1 class(\"conv\");", Diags);
  EXPECT_EQ(Toks[5].Kind, TokKind::Arrow);
  EXPECT_EQ(Toks[9].Kind, TokKind::StringLit);
  EXPECT_EQ(Toks[9].Text, "conv");
}

//===----------------------------------------------------------------------===//
// Figures from the paper
//===----------------------------------------------------------------------===//

TEST_F(DslTest, Figure1CublasCompilesAndDispatches) {
  auto Lib = compileOk(R"(
    op MatMul(2); op Trans(1);
    op cublasMM_xyT_f32(2); op cublasMM_xyT_i8(2);
    pattern MMxyT(x, y) {
      assert x.shape.rank == 2;
      assert y.shape.rank == 2;
      yt = Trans(y);
      return MatMul(x, yt);
    }
    rule cublasrule for MMxyT(x, y) {
      assert (x.eltType == f32 && y.eltType == f32)
          || (x.eltType == i8 && y.eltType == i8);
      if x.eltType == f32 && y.eltType == f32 {
        return cublasMM_xyT_f32(x, y);
      } elif x.eltType == i8 && y.eltType == i8 {
        return cublasMM_xyT_i8(x, y);
      }
    }
  )");
  ASSERT_EQ(Lib->PatternDefs.size(), 1u);
  // if/elif lowered to one rule per path, in order.
  ASSERT_EQ(Lib->Rules.size(), 2u);
  EXPECT_NE(Lib->Rules[0].Guard, nullptr);
  EXPECT_NE(Lib->Rules[1].Guard, nullptr);
  EXPECT_EQ(Lib->Rules[0].Rhs->op(), Sig.lookup("cublasMM_xyT_f32"));
  EXPECT_EQ(Lib->Rules[1].Rhs->op(), Sig.lookup("cublasMM_xyT_i8"));
  // The else-path guard includes the negated then-condition.
  EXPECT_NE(Lib->Rules[1].Guard->toString().find("!("), std::string::npos);

  // Matching behavior: only rank-2 × rank-2.
  const NamedPattern *NP = Lib->findPattern("MMxyT");
  EXPECT_TRUE(
      matchP(NP->Pat, t("MatMul(A[rank=2], Trans(B[rank=2]))")).matched());
  EXPECT_FALSE(
      matchP(NP->Pat, t("MatMul(A[rank=3], Trans(B[rank=2]))")).matched());
  EXPECT_FALSE(matchP(NP->Pat, t("MatMul(A[rank=2], B[rank=2])")).matched());
}

TEST_F(DslTest, Figure2GeluAlternates) {
  auto Lib = compileOk(R"(
    op Div(2); op Mul(2); op Add(2); op Erf(1);
    pattern Half(x) { return Div(x, 2); }
    pattern Half(x) { return Mul(x, 0.5); }
    pattern Gelu(x) { return Mul(Half(x), Add(1, Erf(Div(x, 1.414214)))); }
  )");
  const NamedPattern *NP = Lib->findPattern("Gelu");
  ASSERT_NE(NP, nullptr);
  // Both Half spellings are accepted for the same x.
  auto TD = t("Mul(Div(X, Const[value_u6=2000000]), "
              "Add(Const[value_u6=1000000], Erf(Div(X, "
              "Const[value_u6=1414214]))))");
  auto TM = t("Mul(Mul(X, Const[value_u6=500000]), "
              "Add(Const[value_u6=1000000], Erf(Div(X, "
              "Const[value_u6=1414214]))))");
  EXPECT_TRUE(matchP(NP->Pat, TD).matched());
  EXPECT_TRUE(matchP(NP->Pat, TM).matched());
  // A wrong constant must not match.
  auto TWrong = t("Mul(Div(X, Const[value_u6=3000000]), "
                  "Add(Const[value_u6=1000000], Erf(Div(X, "
                  "Const[value_u6=1414214]))))");
  EXPECT_FALSE(matchP(NP->Pat, TWrong).matched());
  // Nonlinearity: both x occurrences must be the same subgraph.
  auto TMixed = t("Mul(Div(X, Const[value_u6=2000000]), "
                  "Add(Const[value_u6=1000000], Erf(Div(Y, "
                  "Const[value_u6=1414214]))))");
  EXPECT_FALSE(matchP(NP->Pat, TMixed).matched());
}

TEST_F(DslTest, Figure3UnaryChainRecursion) {
  auto Lib = compileOk(R"(
    pattern UnaryChain(x, f) { return f(UnaryChain(x, f)); }
    pattern UnaryChain(x, f) { return f(x); }
  )");
  const NamedPattern *NP = Lib->findPattern("UnaryChain");
  ASSERT_NE(NP, nullptr);
  EXPECT_EQ(NP->FunParams.size(), 1u); // f classified by use
  EXPECT_EQ(NP->Pat->kind(), PatternKind::Mu);
  auto R = matchP(NP->Pat, t("Relu(Relu(Relu(Relu(C))))"));
  ASSERT_TRUE(R.matched());
  EXPECT_EQ(bound(R.W, "x"), t("C"));
}

TEST_F(DslTest, Figure4LocalVarsAndConstraints) {
  auto Lib = compileOk(R"(
    pattern P(x, f, g) {
      y = var();
      x <= f(P(y, f, g));
      return x;
    }
    pattern P(x, f, g) {
      y = var();
      z = var();
      x <= g(P(y, f, g), P(z, f, g));
      return x;
    }
    pattern P(x, f, g) { return x; }
  )");
  const NamedPattern *NP = Lib->findPattern("P");
  ASSERT_NE(NP, nullptr);
  EXPECT_EQ(NP->FunParams.size(), 2u);
  auto R = matchP(NP->Pat, t("Add(Relu(C), Add(Relu(D), C))"));
  ASSERT_TRUE(R.matched());
  EXPECT_EQ(bound(R.W, "x"), t("Add(Relu(C), Add(Relu(D), C))"));
}

TEST_F(DslTest, Figure14PartitionPatterns) {
  auto Lib = compileOk(R"(
    op MatMul(2);
    op Relu(1) class("unary_pointwise");
    op Gelu(1) class("unary_pointwise");
    op Trans(1) class("movement");
    pattern PwSubgraph(x) {
      UnaryOp = opvar(1);
      assert UnaryOp.op_class == opclass("unary_pointwise");
      return UnaryOp(PwSubgraph(x));
    }
    pattern PwSubgraph(x) { return x; }
    pattern MatMulEpilog(x) {
      a = var();
      b = var();
      x <= PwSubgraph(MatMul(a, b));
      return x;
    }
  )");
  const NamedPattern *NP = Lib->findPattern("MatMulEpilog");
  // Towers of *different* unary pointwise ops over a matmul.
  auto R = matchP(NP->Pat, t("Gelu(Relu(MatMul(A, B)))"));
  ASSERT_TRUE(R.matched());
  EXPECT_EQ(bound(R.W, "a"), t("A"));
  EXPECT_EQ(bound(R.W, "b"), t("B"));
  EXPECT_EQ(bound(R.W, "x"), t("Gelu(Relu(MatMul(A, B)))"));
  // Bare matmul (height-0 tower) also matches.
  EXPECT_TRUE(matchP(NP->Pat, t("MatMul(A, B)")).matched());
  // A movement op breaks the tower.
  EXPECT_FALSE(matchP(NP->Pat, t("Gelu(Trans(MatMul(A, B)))")).matched());
}

//===----------------------------------------------------------------------===//
// Lowering details
//===----------------------------------------------------------------------===//

TEST_F(DslTest, AliasesExpandPerUse) {
  auto Lib = compileOk(R"(
    op Pair(2); op Trans(1);
    pattern Both(y) {
      yt = Trans(y);
      return Pair(yt, yt);
    }
  )");
  const NamedPattern *NP = Lib->findPattern("Both");
  EXPECT_TRUE(matchP(NP->Pat, t("Pair(Trans(B), Trans(B))")).matched());
  EXPECT_FALSE(matchP(NP->Pat, t("Pair(Trans(B), Trans(C))")).matched());
}

TEST_F(DslTest, PatternCallWithComplexArgument) {
  auto Lib = compileOk(R"(
    op Trans(1); op Wrap(1);
    pattern TransOf(x) { return Trans(x); }
    pattern Outer(y) { return Wrap(TransOf(Wrap(y))); }
  )");
  const NamedPattern *NP = Lib->findPattern("Outer");
  auto R = matchP(NP->Pat, t("Wrap(Trans(Wrap(C)))"));
  ASSERT_TRUE(R.matched());
  EXPECT_EQ(bound(R.W, "y"), t("C"));
  EXPECT_FALSE(matchP(NP->Pat, t("Wrap(Trans(Trans(C)))")).matched());
}

TEST_F(DslTest, ConcreteOpForFunParamPinsOperator) {
  auto Lib = compileOk(R"(
    op Relu(1); op Tanh(1);
    pattern Twice(x, f) { return f(f(x)); }
    pattern ReluTwice(x) { return Twice(x, Relu); }
  )");
  const NamedPattern *NP = Lib->findPattern("ReluTwice");
  EXPECT_TRUE(matchP(NP->Pat, t("Relu(Relu(C))")).matched());
  EXPECT_FALSE(matchP(NP->Pat, t("Tanh(Tanh(C))")).matched());
}

TEST_F(DslTest, ZeroArityOperatorsAsBareRefs) {
  auto Lib = compileOk(R"(
    op Zero(0); op Wrap(1);
    pattern IsZero(x) {
      x <= Wrap(Zero);
      return x;
    }
  )");
  EXPECT_TRUE(
      matchP(Lib->findPattern("IsZero")->Pat, t("Wrap(Zero)")).matched());
  EXPECT_FALSE(
      matchP(Lib->findPattern("IsZero")->Pat, t("Wrap(C)")).matched());
}

TEST_F(DslTest, AssertOrderIsPreserved) {
  auto Lib = compileOk(R"(
    pattern Guarded(x) {
      assert x.rank == 2;
      assert x.size == 1;
      return x;
    }
  )");
  std::string S = Lib->findPattern("Guarded")->Pat->toString(Sig);
  // Earlier statements wrap outermost (so ∃ binders enclose later uses);
  // guard nesting order is irrelevant to the conjunction's meaning.
  EXPECT_EQ(S, "((x ; guard((x.size == 1))) ; guard((x.rank == 2)))");
}

TEST_F(DslTest, RuleWithoutGuardHasNullGuard) {
  auto Lib = compileOk(R"(
    op F(1); op G(1);
    pattern P(x) { return F(x); }
    rule r for P(x) { return G(x); }
  )");
  ASSERT_EQ(Lib->Rules.size(), 1u);
  EXPECT_EQ(Lib->Rules[0].Guard, nullptr);
}

TEST_F(DslTest, RuleAttrTemplates) {
  auto Lib = compileOk(R"(
    op F(1); op Fused(1) attrs(act);
    pattern P(x, f) { return f(F(x)); }
    rule r for P(x, f) { return Fused[act = f.op_id](x); }
  )");
  ASSERT_EQ(Lib->Rules.size(), 1u);
  const RhsExpr *Rhs = Lib->Rules[0].Rhs;
  ASSERT_EQ(Rhs->attrTemplates().size(), 1u);
  EXPECT_EQ(Rhs->attrTemplates()[0].Key.str(), "act");
  EXPECT_EQ(Rhs->attrTemplates()[0].Value->kind(), GuardKind::FunAttr);
}

TEST_F(DslTest, RuleRhsFunVarApplication) {
  auto Lib = compileOk(R"(
    pattern Chain(x, f) { return f(Chain(x, f)); }
    pattern Chain(x, f) { return f(x); }
    rule collapse for Chain(x, f) { return f(x); }
  )");
  ASSERT_EQ(Lib->Rules.size(), 1u);
  EXPECT_EQ(Lib->Rules[0].Rhs->kind(), RhsKind::FunVarApp);
}

TEST_F(DslTest, AttrPathNormalization) {
  auto Lib = compileOk(R"(
    pattern P(x) {
      assert x.shape.rank == 2 && x.shape.dim0 == 64 && x.eltType == f32;
      return x;
    }
  )");
  std::string S = Lib->findPattern("P")->Pat->toString(Sig);
  EXPECT_NE(S.find("x.rank"), std::string::npos);
  EXPECT_NE(S.find("x.dim0"), std::string::npos);
  EXPECT_NE(S.find("x.elt_type == 3"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST_F(DslTest, RejectsUnknownIdentifier) {
  std::string E = compileErr("pattern P(x) { return nosuch; }");
  EXPECT_NE(E.find("unknown identifier 'nosuch'"), std::string::npos);
}

TEST_F(DslTest, RejectsOperatorArityMismatch) {
  std::string E = compileErr(R"(
    op F(2);
    pattern P(x) { return F(x); }
  )");
  EXPECT_NE(E.find("expects 2 arguments"), std::string::npos);
}

TEST_F(DslTest, RejectsMutualRecursion) {
  std::string E = compileErr(R"(
    op F(1);
    pattern A(x) { return F(B(x)); }
    pattern B(x) { return F(A(x)); }
  )");
  EXPECT_NE(E.find("mutual recursion"), std::string::npos);
}

TEST_F(DslTest, RejectsAlternateParamMismatch) {
  std::string E = compileErr(R"(
    pattern P(x) { return x; }
    pattern P(y) { return y; }
  )");
  EXPECT_NE(E.find("different parameter list"), std::string::npos);
}

TEST_F(DslTest, RejectsRuleParamMismatch) {
  std::string E = compileErr(R"(
    op F(1); op G(1);
    pattern P(x) { return F(x); }
    rule r for P(y) { return G(y); }
  )");
  EXPECT_NE(E.find("must bind exactly"), std::string::npos);
}

TEST_F(DslTest, RejectsRuleForUnknownPattern) {
  std::string E = compileErr(R"(
    op G(1);
    rule r for Nothing(x) { return G(x); }
  )");
  EXPECT_NE(E.find("unknown pattern"), std::string::npos);
}

TEST_F(DslTest, RejectsRuleWithNoReturn) {
  std::string E = compileErr(R"(
    op F(1);
    pattern P(x) { return F(x); }
    rule r for P(x) { assert x.rank == 2; }
  )");
  EXPECT_NE(E.find("no reachable 'return'"), std::string::npos);
}

TEST_F(DslTest, RejectsIfInPatternBody) {
  std::string E = compileErr(R"(
    pattern P(x) {
      if x.rank == 2 { return x; }
      return x;
    }
  )");
  EXPECT_NE(E.find("only allowed in rule bodies"), std::string::npos);
}

TEST_F(DslTest, RejectsRecursiveCallWithComplexArgument) {
  std::string E = compileErr(R"(
    op F(1);
    pattern P(x) { return F(P(F(x))); }
    pattern P(x) { return x; }
  )");
  EXPECT_NE(E.find("must be variables"), std::string::npos);
}

TEST_F(DslTest, RejectsPatternShadowingOperator) {
  std::string E = compileErr(R"(
    op F(1);
    pattern F(x) { return x; }
  )");
  EXPECT_NE(E.find("shadows an operator"), std::string::npos);
}

TEST_F(DslTest, RejectsStatementAfterReturn) {
  std::string E = compileErr(R"(
    pattern P(x) {
      return x;
      assert x.rank == 2;
    }
  )");
  EXPECT_NE(E.find("after 'return'"), std::string::npos);
}

TEST_F(DslTest, RejectsFunVarInTermPosition) {
  std::string E = compileErr(R"(
    op Pair(2);
    pattern P(x, f) { return Pair(f(x), f); }
  )");
  EXPECT_NE(E.find("term position"), std::string::npos);
}

TEST_F(DslTest, RejectsRedeclaredLocal) {
  std::string E = compileErr(R"(
    pattern P(x) {
      y = var();
      y = var();
      return x;
    }
  )");
  EXPECT_NE(E.find("redeclaration"), std::string::npos);
}

TEST_F(DslTest, IncludeMergesLibraries) {
  CompileOptions Opts;
  Opts.Resolver = [](const std::string &Path)
      -> std::optional<std::string> {
    if (Path == "half.pypm")
      return std::string(R"(
        op Div(2); op Mul(2);
        pattern Half(x) { return Div(x, 2); }
        pattern Half(x) { return Mul(x, 0.5); }
      )");
    return std::nullopt;
  };
  DiagnosticEngine Diags;
  auto Lib = dsl::compile(R"(
    include "half.pypm";
    op Add(2); op Erf(1);
    pattern Gelu(x) { return Mul(Half(x), Add(1, Erf(Div(x, 1.414214)))); }
  )",
                          Sig, Diags, Opts);
  ASSERT_TRUE(Lib != nullptr) << Diags.renderAll();
  EXPECT_NE(Lib->findPattern("Half"), nullptr);
  EXPECT_NE(Lib->findPattern("Gelu"), nullptr);
  EXPECT_TRUE(matchP(Lib->findPattern("Gelu")->Pat,
                     t("Mul(Div(X, Const[value_u6=2000000]), "
                       "Add(Const[value_u6=1000000], Erf(Div(X, "
                       "Const[value_u6=1414214]))))"))
                  .matched());
}

TEST_F(DslTest, IncludeOnceAndCycleSafe) {
  CompileOptions Opts;
  Opts.Resolver = [](const std::string &Path)
      -> std::optional<std::string> {
    if (Path == "a.pypm")
      return std::string("include \"b.pypm\";\n"
                         "pattern PA(x) { return FOp(x); }\n");
    if (Path == "b.pypm")
      return std::string("include \"a.pypm\";\n"
                         "op FOp(1);\n"
                         "pattern PB(x) { return FOp(x); }\n");
    return std::nullopt;
  };
  Opts.RootName = "a.pypm";
  DiagnosticEngine Diags;
  auto Lib = dsl::compile(*Opts.Resolver("a.pypm"), Sig, Diags, Opts);
  ASSERT_TRUE(Lib != nullptr) << Diags.renderAll();
  EXPECT_NE(Lib->findPattern("PA"), nullptr);
  EXPECT_NE(Lib->findPattern("PB"), nullptr);
  EXPECT_EQ(Lib->PatternDefs.size(), 2u); // no duplicates from the cycle
}

TEST_F(DslTest, IncludeWithoutResolverErrors) {
  DiagnosticEngine Diags;
  auto Lib = dsl::compile("include \"x.pypm\";", Sig, Diags);
  EXPECT_EQ(Lib, nullptr);
  EXPECT_NE(Diags.renderAll().find("no resolver"), std::string::npos);
}

TEST_F(DslTest, IncludeUnresolvedErrors) {
  CompileOptions Opts;
  Opts.Resolver = [](const std::string &) -> std::optional<std::string> {
    return std::nullopt;
  };
  DiagnosticEngine Diags;
  auto Lib = dsl::compile("include \"missing.pypm\";", Sig, Diags, Opts);
  EXPECT_EQ(Lib, nullptr);
  EXPECT_NE(Diags.renderAll().find("cannot resolve"), std::string::npos);
}

TEST_F(DslTest, SyntaxErrorsAreReportedWithLocations) {
  DiagnosticEngine Diags;
  auto Lib = dsl::compile("pattern P(x { return x; }", Sig, Diags);
  EXPECT_EQ(Lib, nullptr);
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics()[0].Loc.isValid());
}
