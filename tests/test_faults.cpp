//===- tests/test_faults.cpp - Deterministic fault injection -------------------===//
///
/// The fault-tolerance half of the robustness layer, proven rather than
/// assumed: injected exceptions at guard evaluations, RHS builds, and
/// discovery tasks must never crash, never leave a partially built
/// replacement behind (transactional commit), and — under the pure
/// site-scheduled injector — produce bit-identical results at every
/// thread count. With HaltOnFault the surviving graph is exactly a prefix
/// of the fault-free run.
///
//===----------------------------------------------------------------------===//

#include "StressHarness.h"

#include "support/Budget.h"
#include "support/Diagnostics.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <set>

using namespace pypm;
using pypm::testing::expectOutcomesEqual;
using pypm::testing::runStressCase;
using pypm::testing::StressOutcome;

namespace {

//===----------------------------------------------------------------------===//
// PYPM_FAULT spec parsing
//===----------------------------------------------------------------------===//

TEST(FaultSpec, ParsesEveryKey) {
  std::string Err;
  auto C = FaultInjector::parse(
      "guard=3,task=4,rhs=5,budget=6,site-seed=42,site-period=97", Err);
  ASSERT_TRUE(C.has_value()) << Err;
  EXPECT_EQ(C->NthGuardEval, 3u);
  EXPECT_EQ(C->NthWorkerTask, 4u);
  EXPECT_EQ(C->NthRhsBuild, 5u);
  EXPECT_EQ(C->NthBudgetCharge, 6u);
  EXPECT_EQ(C->SiteSeed, 42u);
  EXPECT_EQ(C->SitePeriod, 97u);
}

TEST(FaultSpec, EmptySpecArmsNothing) {
  std::string Err;
  auto C = FaultInjector::parse("", Err);
  ASSERT_TRUE(C.has_value());
  EXPECT_EQ(C->NthGuardEval, 0u);
  EXPECT_EQ(C->SitePeriod, 0u);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  for (const char *Bad : {"bogus=1", "guard", "guard=", "guard=x",
                          "guard=1,=2", "site-period=1x"}) {
    SCOPED_TRACE(Bad);
    std::string Err;
    EXPECT_FALSE(FaultInjector::parse(Bad, Err).has_value());
    EXPECT_FALSE(Err.empty());
  }
}

TEST(FaultSpec, SiteScheduleIsPureAndSeedSensitive) {
  FaultInjector::Config C;
  C.SiteSeed = 7;
  C.SitePeriod = 13;
  FaultInjector A(C), B(C);
  size_t Hits = 0;
  for (uint64_t Pass = 0; Pass != 4; ++Pass)
    for (uint64_t Node = 0; Node != 64; ++Node)
      for (uint64_t Entry = 0; Entry != 4; ++Entry) {
        bool Hit = A.atAttemptSite(Pass, Node, Entry);
        // Pure: independent instances and repeated calls agree.
        EXPECT_EQ(Hit, B.atAttemptSite(Pass, Node, Entry));
        EXPECT_EQ(Hit, A.atAttemptSite(Pass, Node, Entry));
        Hits += Hit;
      }
  // Roughly 1/13 of 1024 sites; wide tolerance, zero would mean broken.
  EXPECT_GT(Hits, 20u);
  EXPECT_LT(Hits, 240u);

  C.SiteSeed = 8;
  FaultInjector D(C);
  bool Differs = false;
  for (uint64_t Node = 0; Node != 64 && !Differs; ++Node)
    Differs = A.atAttemptSite(0, Node, 0) != D.atAttemptSite(0, Node, 0);
  EXPECT_TRUE(Differs);
}

TEST(FaultSpec, CounterHooksFireExactlyOnce) {
  FaultInjector::Config C;
  C.NthGuardEval = 3;
  FaultInjector F(C);
  F.onGuardEval();
  F.onGuardEval();
  EXPECT_THROW(F.onGuardEval(), InjectedFault);
  F.onGuardEval(); // past the Nth: never again
  F.reset();
  F.onGuardEval();
  F.onGuardEval();
  EXPECT_THROW(F.onGuardEval(), InjectedFault);
}

//===----------------------------------------------------------------------===//
// Single-fault transactional behaviour (serial engine, counter modes)
//===----------------------------------------------------------------------===//

/// A guarded pattern plus a plain collapse, over a graph that matches
/// both, so every fault site (guard, RHS build) is reachable on demand.
class SingleFaultTest : public ::testing::Test {
protected:
  SingleFaultTest() : G(Sig) {
    models::declareModelOps(Sig);
    // The assert sits in the RULE body so it lowers to a rule-level
    // guard — the engine's onGuardEval fault site (pattern-level asserts
    // are evaluated inside the match machine instead).
    Lib = dsl::compileOrDie(
        "pattern AG(x, y) { return Add(Relu(x), Relu(y)); }\n"
        "rule ag for AG(x, y) {\n"
        "  assert x.shape.rank == 2;\n"
        "  return Relu(Add(x, y));\n"
        "}\n"
        "pattern RR(x) { return Relu(Relu(x)); }\n"
        "rule rr for RR(x) { return Relu(x); }\n",
        Sig);
    graph::NodeId A = G.addLeaf(
        "Input", graph::TensorType::make(term::DType::F32, {8, 8}));
    graph::NodeId B = G.addLeaf(
        "Input", graph::TensorType::make(term::DType::F32, {8, 8}));
    graph::NodeId Root =
        G.addNode(Sig.lookup("Add"), {G.addNode(Sig.lookup("Relu"), {A}),
                                      G.addNode(Sig.lookup("Relu"), {B})});
    G.addOutput(Root);
    SI.inferAll(G);
    RS.addLibrary(*Lib);
    PreText = graph::writeGraphText(G);
  }

  rewrite::RewriteStats run(FaultInjector &F,
                            DiagnosticEngine *Diags = nullptr) {
    rewrite::RewriteOptions Opts;
    Opts.Faults = &F;
    Opts.Diags = Diags;
    return rewrite::rewriteToFixpoint(G, RS, SI, Opts);
  }

  term::Signature Sig;
  graph::Graph G;
  graph::ShapeInference SI;
  std::unique_ptr<pattern::Library> Lib;
  rewrite::RuleSet RS;
  std::string PreText;
};

TEST_F(SingleFaultTest, FaultFreeBaselineFires) {
  FaultInjector F; // nothing armed
  rewrite::RewriteStats S = run(F);
  EXPECT_TRUE(S.Status.ok());
  EXPECT_GT(S.TotalFired, 0u);
}

TEST_F(SingleFaultTest, GuardFaultQuarantinesAndKeepsGraphIntact) {
  FaultInjector::Config C;
  C.NthGuardEval = 1;
  FaultInjector F(C);
  DiagnosticEngine Diags;
  rewrite::RewriteStats S = run(F, &Diags);
  EXPECT_EQ(S.Status.Code, EngineStatusCode::FaultInjected);
  EXPECT_EQ(S.Status.FaultsAbsorbed, 1u);
  // The faulting pattern was quarantined; the run then completed, so the
  // plain RR collapse was still free to fire had it matched.
  ASSERT_EQ(S.Status.QuarantinedPatterns.size(), 1u);
  EXPECT_EQ(S.Status.QuarantinedPatterns[0], "AG");
  EXPECT_NE(Diags.renderAll().find("fault absorbed in pattern 'AG'"),
            std::string::npos)
      << Diags.renderAll();
  // No partial replacement: the AG fire was rolled back whole.
  EXPECT_EQ(graph::writeGraphText(G), PreText);
}

TEST_F(SingleFaultTest, RhsFaultAfterFirstNodeRollsBackOrphans) {
  // Fault at the SECOND replacement node: the first (the Add) has already
  // been appended when the injector throws, so the rollback sweep must
  // collect it — the committed graph shows no trace of the attempt.
  FaultInjector::Config C;
  C.NthRhsBuild = 2;
  FaultInjector F(C);
  rewrite::RewriteStats S = run(F);
  EXPECT_EQ(S.Status.Code, EngineStatusCode::FaultInjected);
  EXPECT_EQ(S.Status.FaultsAbsorbed, 1u);
  EXPECT_EQ(S.Status.QuarantinedPatterns,
            std::vector<std::string>{"AG"});
  EXPECT_GE(S.NodesSwept, 1u); // the orphaned Add
  EXPECT_EQ(graph::writeGraphText(G), PreText);
}

TEST_F(SingleFaultTest, HaltOnFaultStopsRunAtFault) {
  FaultInjector::Config C;
  C.NthGuardEval = 1;
  FaultInjector F(C);
  rewrite::RewriteOptions Opts;
  Opts.Faults = &F;
  Opts.HaltOnFault = true;
  rewrite::RewriteStats S = rewrite::rewriteToFixpoint(G, RS, SI, Opts);
  EXPECT_EQ(S.Status.Code, EngineStatusCode::FaultInjected);
  EXPECT_EQ(S.Status.Reason, BudgetReason::Fault);
  // Halted, not quarantined: nothing was disabled, the run just stopped.
  EXPECT_TRUE(S.Status.QuarantinedPatterns.empty());
  EXPECT_EQ(S.TotalFired, 0u);
  EXPECT_EQ(graph::writeGraphText(G), PreText);
}

//===----------------------------------------------------------------------===//
// Worker-task faults (parallel discovery)
//===----------------------------------------------------------------------===//

TEST(WorkerFault, DiscoveryTaskFaultIsInvisibleInTheResult) {
  // Kill the Nth discovery task outright. The truncated discovery record
  // is !Complete, so the commit phase recovers that node serially — the
  // final graph and fire counts equal the fault-free run exactly; only
  // the status betrays that anything happened.
  for (uint64_t Seed : {0u, 5u, 9u}) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    rewrite::RewriteOptions Plain;
    Plain.MaxRewrites = 100;
    StressOutcome FaultFree = runStressCase(Seed, Plain);

    FaultInjector::Config C;
    C.NthWorkerTask = 3;
    FaultInjector F(C);
    rewrite::RewriteOptions Opts;
    Opts.MaxRewrites = 100;
    Opts.NumThreads = 4;
    Opts.Faults = &F;
    StressOutcome Faulted = runStressCase(Seed, Opts);

    EXPECT_EQ(Faulted.GraphText, FaultFree.GraphText);
    EXPECT_EQ(Faulted.Stats.TotalFired, FaultFree.Stats.TotalFired);
    EXPECT_EQ(Faulted.Stats.TotalMatches, FaultFree.Stats.TotalMatches);
    EXPECT_EQ(Faulted.Stats.Status.Code, EngineStatusCode::FaultInjected);
    EXPECT_GE(Faulted.Stats.Status.FaultsAbsorbed, 1u);
  }
}

//===----------------------------------------------------------------------===//
// Simulated budget exhaustion (counter mode, commit-order deterministic)
//===----------------------------------------------------------------------===//

TEST(BudgetFault, NthChargeTripsIdenticallyAcrossThreads) {
  // onBudgetCharge is consulted only from commit-order accounting, so
  // even this counter mode is scheduling-independent.
  for (uint64_t Seed : {2u, 6u}) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    auto Run = [&](unsigned Threads) {
      FaultInjector::Config C;
      C.NthBudgetCharge = 5;
      FaultInjector F(C);
      rewrite::RewriteOptions Opts;
      Opts.MaxRewrites = 100;
      Opts.NumThreads = Threads;
      Opts.Faults = &F;
      return runStressCase(Seed, Opts);
    };
    StressOutcome Serial = Run(0);
    EXPECT_EQ(Serial.Stats.Status.Code, EngineStatusCode::BudgetExhausted);
    EXPECT_EQ(Serial.Stats.Status.Reason, BudgetReason::Steps);
    EXPECT_EQ(Serial.Stats.Status.FaultsAbsorbed, 1u);
    for (unsigned Threads : {1u, 4u}) {
      SCOPED_TRACE("threads=" + std::to_string(Threads));
      expectOutcomesEqual(Serial, Run(Threads),
                          pypm::testing::stressRepro(Seed, 0, Threads));
    }
  }
}

//===----------------------------------------------------------------------===//
// Site-scheduled chaos: ≥50 seeds, bit-identical at every thread count
//===----------------------------------------------------------------------===//

class SiteFaultStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SiteFaultStressTest, FaultedRunsIdenticalAcrossThreads) {
  uint64_t Seed = GetParam();
  FaultInjector::Config C;
  C.SiteSeed = Seed * 1000 + 7;
  C.SitePeriod = 23;
  // Site mode is stateless, so one injector serves every run.
  FaultInjector F(C);

  auto Run = [&](unsigned Threads) {
    rewrite::RewriteOptions Opts;
    Opts.MaxRewrites = 100;
    Opts.NumThreads = Threads;
    Opts.Faults = &F;
    return runStressCase(Seed, Opts);
  };

  StressOutcome Serial = Run(0);
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(Threads));
    StressOutcome Parallel = Run(Threads);
    // expectOutcomesEqual compares Status wholesale: the same faults were
    // absorbed, the same patterns quarantined, in the same order.
    expectOutcomesEqual(Serial, Parallel,
                        pypm::testing::stressRepro(Seed, 0, Threads));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SiteFaultStressTest,
                         ::testing::Range<uint64_t>(0, 50));

TEST(SiteFaultStress, ScheduleActuallyInjects) {
  // Guard against a silently disarmed harness: across the stress seeds,
  // a 1/23 site schedule must absorb faults in plenty of runs.
  size_t RunsWithFaults = 0;
  for (uint64_t Seed = 0; Seed != 50; ++Seed) {
    FaultInjector::Config C;
    C.SiteSeed = Seed * 1000 + 7;
    C.SitePeriod = 23;
    FaultInjector F(C);
    rewrite::RewriteOptions Opts;
    Opts.MaxRewrites = 100;
    Opts.Faults = &F;
    RunsWithFaults += runStressCase(Seed, Opts).Stats.Status.FaultsAbsorbed > 0;
  }
  EXPECT_GT(RunsWithFaults, 10u);
}

//===----------------------------------------------------------------------===//
// HaltOnFault prefix property: the survivor is a prefix of the clean run
//===----------------------------------------------------------------------===//

TEST(SiteFaultStress, HaltedGraphIsPrefixOfFaultFreeRun) {
  size_t Verified = 0;
  for (uint64_t Seed = 0; Seed != 50; ++Seed) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    FaultInjector::Config C;
    C.SiteSeed = Seed * 77 + 13;
    C.SitePeriod = 17;
    FaultInjector F(C);

    rewrite::RewriteOptions Opts;
    Opts.MaxRewrites = 100;
    Opts.Faults = &F;
    Opts.HaltOnFault = true;
    StressOutcome Halted = runStressCase(Seed, Opts);
    if (Halted.Stats.Status.Code != EngineStatusCode::FaultInjected)
      continue; // no site armed on this run's attempts
    EXPECT_EQ(Halted.Stats.Status.Reason, BudgetReason::Fault);

    // The same halted state is reached at any thread count.
    rewrite::RewriteOptions Par = Opts;
    Par.NumThreads = 4;
    StressOutcome HaltedPar = runStressCase(Seed, Par);
    EXPECT_EQ(Halted.GraphText, HaltedPar.GraphText);
    EXPECT_EQ(Halted.Stats.Status, HaltedPar.Stats.Status);

    if (Halted.Stats.TotalFired == 0)
      continue; // prefix of length zero: nothing further to replay
    // Transactional commit: the surviving graph equals the fault-free
    // run truncated to the same number of fires.
    rewrite::RewriteOptions Prefix;
    Prefix.MaxRewrites = Halted.Stats.TotalFired;
    StressOutcome Clean = runStressCase(Seed, Prefix);
    EXPECT_EQ(Halted.GraphText, Clean.GraphText);
    ++Verified;
  }
  // The property must have been exercised, not vacuously skipped.
  EXPECT_GT(Verified, 5u);
}

//===----------------------------------------------------------------------===//
// No std::terminate, ever: chaos sweep over every counter mode
//===----------------------------------------------------------------------===//

TEST(FaultChaos, EveryCounterModeAbsorbsWithoutCrashing) {
  for (uint64_t Nth : {1u, 2u, 7u}) {
    for (int Mode = 0; Mode != 4; ++Mode) {
      for (unsigned Threads : {0u, 4u}) {
        SCOPED_TRACE("mode=" + std::to_string(Mode) +
                     " nth=" + std::to_string(Nth) +
                     " threads=" + std::to_string(Threads));
        FaultInjector::Config C;
        (Mode == 0   ? C.NthGuardEval
         : Mode == 1 ? C.NthWorkerTask
         : Mode == 2 ? C.NthRhsBuild
                     : C.NthBudgetCharge) = Nth;
        FaultInjector F(C);
        rewrite::RewriteOptions Opts;
        Opts.MaxRewrites = 100;
        Opts.NumThreads = Threads;
        Opts.Faults = &F;
        StressOutcome Out = runStressCase(8, Opts);
        // The run returned normally and its graph is still serializable.
        EXPECT_FALSE(Out.GraphText.empty());
      }
    }
  }
}

} // namespace
