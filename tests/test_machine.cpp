//===- tests/test_machine.cpp - Algorithmic semantics (backtracking VM) -------===//
///
/// One test per transition rule of Figs. 17–18, plus feature-level tests
/// for every construct of §2 (alternates, recursion, function patterns,
/// local variables, match constraints) and the soundness-relevant corner
/// cases (fuel, multi-solution resume, deterministic left-eager order).
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

using namespace pypm;
using namespace pypm::match;
using namespace pypm::pattern;
using pypm::testing::CoreFixture;

class MachineTest : public CoreFixture {};

//===----------------------------------------------------------------------===//
// Variable rules
//===----------------------------------------------------------------------===//

TEST_F(MachineTest, VarBindsUnboundVariable) {
  // ST-Match-Var-Bind.
  auto R = matchP(v("x"), t("F(C, D)"));
  ASSERT_TRUE(R.matched());
  EXPECT_EQ(bound(R.W, "x"), t("F(C, D)"));
  EXPECT_EQ(R.Stats.VarBinds, 1u);
}

TEST_F(MachineTest, NonlinearVarRequiresEqualTerms) {
  // ST-Match-Var-Bound: MatMul(x, x) matches only equal operands.
  const Pattern *P = app("MatMul", {v("x"), v("x")});
  EXPECT_TRUE(matchP(P, t("MatMul(G(C), G(C))")).matched());
  EXPECT_FALSE(matchP(P, t("MatMul(G(C), G(D))")).matched());
}

TEST_F(MachineTest, VarConflictBacktracksToFailure) {
  // ST-Match-Var-Conflict with an empty stack.
  const Pattern *P = app("Pair", {v("x"), v("x")});
  auto R = matchP(P, t("Pair(C, D)"));
  EXPECT_EQ(R.Status, MachineStatus::Failure);
  EXPECT_GE(R.Stats.Backtracks, 1u);
}

//===----------------------------------------------------------------------===//
// Function (operator) rules
//===----------------------------------------------------------------------===//

TEST_F(MachineTest, FunMatchesStructurally) {
  // ST-Match-Fun.
  const Pattern *P = app("MatMul", {v("x"), app("Trans", {v("y")})});
  auto R = matchP(P, t("MatMul(A, Trans(B))"));
  ASSERT_TRUE(R.matched());
  EXPECT_EQ(bound(R.W, "x"), t("A"));
  EXPECT_EQ(bound(R.W, "y"), t("B"));
}

TEST_F(MachineTest, FunConflictOnDifferentOperator) {
  // ST-Match-Fun-Conflict (f ≠ g).
  const Pattern *P = app("Trans", {v("x")});
  EXPECT_FALSE(matchP(P, t("Softmax1(A)")).matched());
}

TEST_F(MachineTest, ChildrenMatchLeftToRight) {
  // The continuation order makes the leftmost child bind first, so the
  // left occurrence of a nonlinear variable decides the binding.
  const Pattern *P = app("Pair", {v("x"), v("y")});
  auto R = matchP(P, t("Pair(C, D)"));
  ASSERT_TRUE(R.matched());
  EXPECT_EQ(bound(R.W, "x"), t("C"));
  EXPECT_EQ(bound(R.W, "y"), t("D"));
}

//===----------------------------------------------------------------------===//
// Alternates
//===----------------------------------------------------------------------===//

TEST_F(MachineTest, AltTriesLeftFirst) {
  // ST-Match-Alt: left-eager.
  const Pattern *P = PA.alt(v("l"), v("r"));
  auto R = matchP(P, t("C"));
  ASSERT_TRUE(R.matched());
  EXPECT_EQ(bound(R.W, "l"), t("C"));
  EXPECT_EQ(bound(R.W, "r"), nullptr);
}

TEST_F(MachineTest, AltBacktracksToRightOnLeftFailure) {
  const Pattern *P =
      PA.alt(app("Trans", {v("x")}), app("Softmax1", {v("y")}));
  auto R = matchP(P, t("Softmax1(A)"));
  ASSERT_TRUE(R.matched());
  EXPECT_EQ(bound(R.W, "y"), t("A"));
  EXPECT_GE(R.Stats.Backtracks, 1u);
}

TEST_F(MachineTest, BacktrackingRestoresSubstitution) {
  // The left alternate binds x before failing; the right alternate must
  // not see that binding (the frame snapshot restores θ).
  op("G", 1);
  const Pattern *Left = app("Pair", {v("x"), app("G", {v("x")})});
  const Pattern *Right = app("Pair", {v("x"), v("y")});
  const Pattern *P = PA.alt(Left, Right);
  auto R = matchP(P, t("Pair(C, G(D))"));
  ASSERT_TRUE(R.matched());
  // Left failed at G(x) vs G(D) with x=C; right bound x=C fresh and y=G(D).
  EXPECT_EQ(bound(R.W, "x"), t("C"));
  EXPECT_EQ(bound(R.W, "y"), t("G(D)"));
}

TEST_F(MachineTest, NestedAlternatesSearchInOrder) {
  // ((a ; guard(false)) || b) || c — reaches b.
  const GuardExpr *False =
      PA.binary(GuardKind::Eq, PA.intLit(0), PA.intLit(1));
  const Pattern *P = PA.alt(PA.alt(PA.guarded(v("a"), False), v("b")),
                            v("c"));
  auto R = matchP(P, t("C"));
  ASSERT_TRUE(R.matched());
  EXPECT_EQ(bound(R.W, "b"), t("C"));
  EXPECT_EQ(bound(R.W, "c"), nullptr);
}

//===----------------------------------------------------------------------===//
// Guards
//===----------------------------------------------------------------------===//

TEST_F(MachineTest, GuardPassAndFail) {
  const GuardExpr *RankIs2 = PA.binary(
      GuardKind::Eq, PA.attr(Symbol::intern("x"), Symbol::intern("rank")),
      PA.intLit(2));
  const Pattern *P = PA.guarded(v("x"), RankIs2);
  EXPECT_TRUE(matchP(P, t("A[rank=2]")).matched());
  EXPECT_FALSE(matchP(P, t("A[rank=3]")).matched());
}

TEST_F(MachineTest, StuckGuardBacktracks) {
  // Guard over a variable the pattern never binds: stuck → backtrack.
  const GuardExpr *G = PA.binary(
      GuardKind::Eq, PA.attr(Symbol::intern("ghost"), Symbol::intern("rank")),
      PA.intLit(2));
  const Pattern *P = PA.alt(PA.guarded(v("x"), G), v("y"));
  auto R = matchP(P, t("C"));
  ASSERT_TRUE(R.matched());
  EXPECT_EQ(bound(R.W, "y"), t("C"));
  EXPECT_EQ(R.Stats.GuardStuck, 1u);
}

TEST_F(MachineTest, GuardRunsAfterStructuralMatch) {
  // The guard sees bindings made while matching the subpattern.
  const GuardExpr *G = PA.binary(
      GuardKind::Lt, PA.attr(Symbol::intern("x"), Symbol::intern("size")),
      PA.attr(Symbol::intern("y"), Symbol::intern("size")));
  const Pattern *P =
      PA.guarded(app("Pair", {v("x"), v("y")}), G);
  EXPECT_TRUE(matchP(P, t("Pair(C, G1(C))")).matched());
  EXPECT_FALSE(matchP(P, t("Pair(G1(C), C)")).matched());
}

TEST_F(MachineTest, NestedGuardsEvaluateInnermostFirst) {
  MachineStats S1;
  const GuardExpr *G1 = PA.binary(GuardKind::Eq, PA.intLit(1), PA.intLit(1));
  const GuardExpr *G2 = PA.binary(GuardKind::Eq, PA.intLit(0), PA.intLit(1));
  const Pattern *P = PA.guarded(PA.guarded(v("x"), G1), G2);
  auto R = matchP(P, t("C"));
  EXPECT_FALSE(R.matched());
  EXPECT_EQ(R.Stats.GuardEvals, 2u); // both guards ran (inner passed first)
}

//===----------------------------------------------------------------------===//
// Existentials and match constraints
//===----------------------------------------------------------------------===//

TEST_F(MachineTest, ExistsBindsThroughBody) {
  // ∃y. Pair(y, y) matches Pair(C, C).
  Symbol Y = Symbol::intern("y");
  const Pattern *P = PA.exists(Y, app("Pair", {PA.var(Y), PA.var(Y)}));
  EXPECT_TRUE(matchP(P, t("Pair(C, C)")).matched());
  EXPECT_FALSE(matchP(P, t("Pair(C, D)")).matched());
}

TEST_F(MachineTest, ExistsUnboundVariableBacktracks) {
  // ∃y. x — y is never bound; checkName fails (§2.3: every fresh variable
  // must be bound to some subterm).
  Symbol Y = Symbol::intern("y");
  const Pattern *P = PA.exists(Y, v("x"));
  EXPECT_FALSE(matchP(P, t("C")).matched());
}

TEST_F(MachineTest, MatchConstraintChecksBoundTerm) {
  // x ; (Trans(y) ≈ x): Fig. 4-style root binding.
  Symbol X = Symbol::intern("x");
  const Pattern *P =
      PA.matchConstraint(v("x"), app("Trans", {v("y")}), X);
  auto R = matchP(P, t("Trans(B)"));
  ASSERT_TRUE(R.matched());
  EXPECT_EQ(bound(R.W, "x"), t("Trans(B)"));
  EXPECT_EQ(bound(R.W, "y"), t("B"));
  EXPECT_FALSE(matchP(P, t("Softmax1(B)")).matched());
}

TEST_F(MachineTest, MatchConstraintOnUnboundVariableBacktracks) {
  // x ; (p ≈ ghost): ghost never bound → matchConstr backtracks.
  const Pattern *P = PA.matchConstraint(v("x"), v("y"),
                                        Symbol::intern("ghost"));
  EXPECT_FALSE(matchP(P, t("C")).matched());
}

TEST_F(MachineTest, ChainedConstraintsComposeLikeFig4Root) {
  // ∃a. ∃b. (x ; (Pair(a, b) ≈ x)) ; (Trans(c) ≈ a)
  Symbol X = Symbol::intern("x"), A = Symbol::intern("a"),
         B = Symbol::intern("b");
  const Pattern *Inner =
      PA.matchConstraint(v("x"), app("Pair", {PA.var(A), PA.var(B)}), X);
  const Pattern *P = PA.exists(
      A, PA.exists(B, PA.matchConstraint(Inner, app("Trans", {v("c")}), A)));
  auto R = matchP(P, t("Pair(Trans(C), D)"));
  ASSERT_TRUE(R.matched());
  EXPECT_EQ(bound(R.W, "c"), t("C"));
  EXPECT_EQ(bound(R.W, "b"), t("D"));
}

//===----------------------------------------------------------------------===//
// Function variables
//===----------------------------------------------------------------------===//

TEST_F(MachineTest, FunVarBindsOperator) {
  // F(x, y) matches any binary application.
  Symbol F = Symbol::intern("F");
  const Pattern *P = PA.funVarApp(F, {v("x"), v("y")});
  auto R = matchP(P, t("MatMul(A, B)"));
  ASSERT_TRUE(R.matched());
  EXPECT_EQ(R.W.Phi.lookup(F), Sig.lookup("MatMul"));
}

TEST_F(MachineTest, FunVarArityConflict) {
  Symbol F = Symbol::intern("F");
  const Pattern *P = PA.funVarApp(F, {v("x"), v("y")});
  EXPECT_FALSE(matchP(P, t("Trans(A)")).matched());
}

TEST_F(MachineTest, NonlinearFunVarRequiresSameOperator) {
  // F(F(x)) — a unary operator applied to itself twice (§3.4).
  Symbol F = Symbol::intern("F");
  const Pattern *P = PA.funVarApp(F, {PA.funVarApp(F, {v("x")})});
  EXPECT_TRUE(matchP(P, t("Relu(Relu(C))")).matched());
  EXPECT_FALSE(matchP(P, t("Relu(Tanh(C))")).matched());
}

TEST_F(MachineTest, ExistsFunRequiresBinding) {
  Symbol F = Symbol::intern("F");
  const Pattern *Bound = PA.existsFun(F, PA.funVarApp(F, {v("x")}));
  EXPECT_TRUE(matchP(Bound, t("Relu(C)")).matched());
  const Pattern *Unused = PA.existsFun(F, v("x"));
  EXPECT_FALSE(matchP(Unused, t("C")).matched());
}

//===----------------------------------------------------------------------===//
// Recursive patterns
//===----------------------------------------------------------------------===//

class RecursiveMachineTest : public MachineTest {
protected:
  /// μU(x, f)[x, f]. f(U(x, f)) ‖ f(x) — Fig. 3's UnaryChain.
  const Pattern *unaryChain() {
    Symbol U = Symbol::intern("U"), X = Symbol::intern("x"),
           F = Symbol::intern("f");
    const Pattern *Rec = PA.funVarApp(F, {PA.recCall(U, {X, F})});
    const Pattern *Base = PA.funVarApp(F, {PA.var(X)});
    return PA.mu(U, {X, F}, {X, F}, PA.alt(Rec, Base));
  }
};

TEST_F(RecursiveMachineTest, MatchesChainsOfAnyDepth) {
  const Pattern *P = unaryChain();
  for (std::string Term = "Relu(C)"; Term.size() < 60;
       Term = "Relu(" + Term + ")") {
    auto R = matchP(P, t(Term));
    ASSERT_TRUE(R.matched()) << Term;
    EXPECT_EQ(bound(R.W, "x"), t("C"));
    EXPECT_EQ(R.W.Phi.lookup(Symbol::intern("f")), Sig.lookup("Relu"));
  }
}

TEST_F(RecursiveMachineTest, MixedChainStopsAtOperatorChange) {
  // Relu(Tanh(C)) is not a *Relu* chain down to C: the nonlinear function
  // variable forces every level to use the same operator, so the match
  // degrades to the 1-level chain with x = Tanh(C).
  auto R = matchP(unaryChain(), t("Relu(Tanh(C))"));
  ASSERT_TRUE(R.matched());
  EXPECT_EQ(bound(R.W, "x"), t("Tanh(C)"));
  EXPECT_EQ(R.W.Phi.lookup(Symbol::intern("f")), Sig.lookup("Relu"));
}

TEST_F(RecursiveMachineTest, NonChainFails) {
  EXPECT_FALSE(matchP(unaryChain(), t("C")).matched());
}

TEST_F(RecursiveMachineTest, DivergentMuRunsOutOfFuel) {
  // μP(x)[x]. P(x) never consumes the term (§3.5).
  Symbol P = Symbol::intern("P"), X = Symbol::intern("x");
  const Pattern *Mu = PA.mu(P, {X}, {X}, PA.recCall(P, {X}));
  Machine::Options Opts;
  Opts.MaxMuUnfolds = 100;
  auto R = matchPattern(Mu, t("C"), Arena, Opts);
  EXPECT_EQ(R.Status, MachineStatus::OutOfFuel);
  EXPECT_EQ(R.Stats.MuUnfolds, 100u);
}

TEST_F(RecursiveMachineTest, Figure4RootBindingWithFreshLocals) {
  // μP(x,f,g)[…]: alternates
  //   ∃y. (x ; (f(P(y,f,g)) ≈ x))
  //   ∃y.∃z. (x ; (g(P(y,f,g), P(z,f,g)) ≈ x))
  //   x
  // matches any f/g tree and binds x to the *root* (§2.3 / Fig. 4).
  Symbol P = Symbol::intern("P"), X = Symbol::intern("x"),
         F = Symbol::intern("f"), G = Symbol::intern("g"),
         Y = Symbol::intern("y"), Z = Symbol::intern("z");
  const Pattern *Alt1 = PA.exists(
      Y, PA.matchConstraint(PA.var(X),
                            PA.funVarApp(F, {PA.recCall(P, {Y, F, G})}), X));
  const Pattern *Alt2 = PA.exists(
      Y, PA.exists(Z, PA.matchConstraint(
                          PA.var(X),
                          PA.funVarApp(G, {PA.recCall(P, {Y, F, G}),
                                           PA.recCall(P, {Z, F, G})}),
                          X)));
  const Pattern *Base = PA.var(X);
  const Pattern *Mu = PA.mu(P, {X, F, G}, {X, F, G},
                            PA.altList(std::vector<const Pattern *>{
                                Alt1, Alt2, Base}));
  auto R = matchP(Mu, t("Add(Relu(C), Add(C, D))"));
  ASSERT_TRUE(R.matched());
  // Root bound to the whole tree; f=Relu, g=Add.
  EXPECT_EQ(bound(R.W, "x"), t("Add(Relu(C), Add(C, D))"));
  EXPECT_EQ(R.W.Phi.lookup(G), Sig.lookup("Add"));
  EXPECT_EQ(R.W.Phi.lookup(F), Sig.lookup("Relu"));
}

//===----------------------------------------------------------------------===//
// Multiple solutions & determinism
//===----------------------------------------------------------------------===//

TEST_F(MachineTest, LeftEagerIncompletenessExample) {
  // §3.1.2: matching f(c1, c2) against f(x,y) ‖ f(y,x): the machine's
  // FIRST answer is always {x↦c1, y↦c2} even though the declarative
  // relation also contains the swapped witness.
  const Pattern *P = PA.alt(app("Pair", {v("x"), v("y")}),
                            app("Pair", {v("y"), v("x")}));
  auto R = matchP(P, t("Pair(C1, C2)"));
  ASSERT_TRUE(R.matched());
  EXPECT_EQ(bound(R.W, "x"), t("C1"));
  EXPECT_EQ(bound(R.W, "y"), t("C2"));
  // resume() then finds the second witness.
  auto All = allSolutions(P, t("Pair(C1, C2)"), Arena);
  ASSERT_EQ(All.size(), 2u);
  EXPECT_EQ(All[1].Theta.lookup(Symbol::intern("x")), t("C2"));
}

TEST_F(MachineTest, AllSolutionsRespectsLimit) {
  const Pattern *P =
      PA.altList(std::vector<const Pattern *>{v("a"), v("b"), v("c")});
  EXPECT_EQ(allSolutions(P, t("C"), Arena, 2).size(), 2u);
  EXPECT_EQ(allSolutions(P, t("C"), Arena).size(), 3u);
}

TEST_F(MachineTest, ResumeAfterFailureStaysFailed) {
  Machine M(Arena);
  M.start(app("Trans", {v("x")}), t("C"));
  EXPECT_EQ(M.run(), MachineStatus::Failure);
  EXPECT_EQ(M.resume(), MachineStatus::Failure);
}

TEST_F(MachineTest, DeterministicAcrossRuns) {
  const Pattern *P = PA.alt(app("Pair", {v("x"), v("y")}),
                            app("Pair", {v("y"), v("x")}));
  auto R1 = matchP(P, t("Pair(C1, C2)"));
  auto R2 = matchP(P, t("Pair(C1, C2)"));
  EXPECT_EQ(R1.W, R2.W);
  EXPECT_EQ(R1.Stats.Steps, R2.Stats.Steps);
}

//===----------------------------------------------------------------------===//
// Machine mechanics
//===----------------------------------------------------------------------===//

TEST_F(MachineTest, SingleStepObservable) {
  Machine M(Arena);
  M.start(app("Trans", {v("x")}), t("Trans(A)"));
  EXPECT_EQ(M.status(), MachineStatus::Running);
  EXPECT_EQ(M.step(), MachineStatus::Running); // consume match(Trans(x),…)
  EXPECT_EQ(M.step(), MachineStatus::Running); // consume match(x, A)
  EXPECT_EQ(M.step(), MachineStatus::Success); // empty continuation
  EXPECT_EQ(M.theta().size(), 1u);
}

TEST_F(MachineTest, DescribeStateShowsPaperNotation) {
  Machine M(Arena);
  M.start(app("Trans", {v("x")}), t("Trans(A)"));
  std::string S0 = M.describeState(Sig);
  EXPECT_NE(S0.find("running"), std::string::npos);
  EXPECT_NE(S0.find("match(Trans(x), Trans(A))"), std::string::npos);
  M.run();
  EXPECT_NE(M.describeState(Sig).find("success"), std::string::npos);
}

TEST_F(MachineTest, StepBudgetTerminates) {
  Symbol P = Symbol::intern("P"), X = Symbol::intern("x");
  const Pattern *Mu = PA.mu(P, {X}, {X}, PA.recCall(P, {X}));
  Machine::Options Opts;
  Opts.MaxSteps = 50;
  Opts.MaxMuUnfolds = 1'000'000;
  auto R = matchPattern(Mu, t("C"), Arena, Opts);
  EXPECT_EQ(R.Status, MachineStatus::OutOfFuel);
}

TEST_F(MachineTest, StatsTrackDepths) {
  const Pattern *P = PA.alt(app("Pair", {v("x"), v("x")}),
                            app("Pair", {v("x"), v("y")}));
  auto R = matchP(P, t("Pair(C, D)"));
  ASSERT_TRUE(R.matched());
  EXPECT_GE(R.Stats.MaxStackDepth, 1u);
  EXPECT_GE(R.Stats.MaxContDepth, 2u);
  EXPECT_GE(R.Stats.Steps, 4u);
}

TEST_F(MachineTest, AttrsDoNotAffectStructuralMatch) {
  // Structural matching ignores attributes (they only feed guards and
  // identity): F(x) matches F[extra=1](C).
  const Pattern *P = app("F1", {v("x")});
  EXPECT_TRUE(matchP(P, t("F1[extra=1](C)")).matched());
}
