//===- tests/test_planprofile.cpp - Profiled plans ≡ unprofiled plans ----------===//
///
/// Profile-guided MatchPlan ordering (PlanBuilder::applyProfile) is a
/// layout-only optimization: it permutes the discrimination tree's edge
/// lists, group lists, accept lists, and the wildcard list by recorded
/// heat, but the candidate mask is positional — a *set* — so no
/// permutation can change what the tree emits, and with it nothing the
/// matchers or the engine observe. This suite is the differential proof:
///
///  - per-attempt: candidate masks and full match results (status, first
///    witness, step counters) are bit-identical between a profiled and an
///    unprofiled plan — and still agree with FastMatcher and the reference
///    Machine — on a feature corpus, under real, adversarially inverted,
///    and random-garbage (but bound) profiles;
///  - engine: rewriteToFixpoint over the model zoo and the 50-seed stress
///    zoo commits bit-identical outcomes with profiled plans at threads
///    0/1/2/4/8, including self-profiled runs (recording while running a
///    profiled plan) and runs whose profile is inverted;
///  - recording: profiles themselves are committed-order artifacts — the
///    per-worker counters merged at commit time reproduce the serial
///    profile bit-for-bit at every thread count, and recording never
///    perturbs the run it observes;
///  - staleness: a profile recorded against a different rule set is
///    rejected by applyProfile and ignored (with a warning) by the engine,
///    never half-applied;
///  - artifact: a .pypmprof round-trips, embeds into a .pypmplan, and the
///    loaded profile-ordered program drives the engine identically;
///  - caveat regression (DESIGN.md §"MatchPlan"): attempt-shaped counters
///    differ *between matcher kinds* (the tree prefilter skips attempts
///    the root-op index would start) while Attempts + RootSkips, and every
///    committed observable, stay invariant.
///
//===----------------------------------------------------------------------===//

#include "StressHarness.h"
#include "TestHelpers.h"

#include "graph/GraphIO.h"
#include "match/FastMatcher.h"
#include "models/Transformers.h"
#include "models/Zoo.h"
#include "opt/StdPatterns.h"
#include "plan/Interpreter.h"
#include "plan/PlanBuilder.h"
#include "plan/PlanSerializer.h"
#include "plan/Profile.h"
#include "rewrite/RewriteEngine.h"
#include "support/Random.h"

#include <algorithm>
#include <deque>

using namespace pypm;
using namespace pypm::match;
using namespace pypm::pattern;
using pypm::testing::CoreFixture;
using pypm::testing::expectOutcomesEqual;
using pypm::testing::StressOutcome;
using pypm::testing::stressRepro;

namespace {

//===----------------------------------------------------------------------===//
// Profile transformations
//===----------------------------------------------------------------------===//

/// The adversarial inversion: hottest becomes coldest (per counter array,
/// v -> max - v). Still bound to the same plan, so applyProfile accepts it
/// and produces the pessimal ordering — which must change nothing.
plan::Profile invertProfile(const plan::Profile &P) {
  plan::Profile Inv = P;
  auto Flip = [](std::vector<uint64_t> &V) {
    uint64_t Max = 0;
    for (uint64_t X : V)
      Max = std::max(Max, X);
    for (uint64_t &X : V)
      X = Max - X;
  };
  Flip(Inv.GroupVisits);
  Flip(Inv.EdgeHits);
  Flip(Inv.EntryAttempts);
  Flip(Inv.EntryMatches);
  return Inv;
}

/// A profile of pure garbage counters, correctly bound to \p P: soundness
/// may not depend on the counters meaning anything.
plan::Profile garbageProfile(const plan::Program &P, uint64_t Seed) {
  plan::Profile G;
  EXPECT_TRUE(G.bindTo(P));
  Rng R(Seed * 0x2545f491u + 17);
  for (uint64_t &X : G.GroupVisits)
    X = R.below(1000);
  for (uint64_t &X : G.EdgeHits)
    X = R.below(1000);
  for (uint64_t &X : G.EntryAttempts)
    X = R.below(1000);
  for (uint64_t &X : G.EntryMatches)
    X = R.below(1000);
  G.Traversals = 1 + R.below(1000);
  return G;
}

//===----------------------------------------------------------------------===//
// Attempt-level differential corpus
//===----------------------------------------------------------------------===//

void expectStatsEqual(const MachineStats &A, const MachineStats &B) {
  EXPECT_EQ(A.Steps, B.Steps);
  EXPECT_EQ(A.Backtracks, B.Backtracks);
  EXPECT_EQ(A.MuUnfolds, B.MuUnfolds);
  EXPECT_EQ(A.VarBinds, B.VarBinds);
  EXPECT_EQ(A.GuardEvals, B.GuardEvals);
  EXPECT_EQ(A.GuardStuck, B.GuardStuck);
}

class PlanProfileAttemptTest : public CoreFixture {
protected:
  void addPattern(const char *Name, const Pattern *P) {
    Defs.push_back(NamedPattern{Symbol::intern(Name), {}, {}, P});
    RS.addPattern(Defs.back());
  }

  /// The feature rule set: shared prefixes (three Relu/Tanh chains fan out
  /// of common tests), a nonlinear pattern, a deep binary shape, and a
  /// bare-variable wildcard entry (exercises the hoisted wildcard base and
  /// the hot/cold wildcard partition).
  void buildCorpus() {
    addPattern("RR", app("Relu", {app("Relu", {v("x")})}));
    addPattern("RT", app("Relu", {app("Tanh", {v("x")})}));
    addPattern("TT", app("Tanh", {app("Tanh", {v("x")})}));
    addPattern("Pair", app("Pair", {v("x"), v("x")}));
    addPattern("AMC", app("Add", {app("Mul", {v("a"), v("b")}), v("c")}));
    addPattern("Wild", v("w"));
    Terms = {t("Relu(Relu(C))"),  t("Relu(Tanh(C))"), t("Tanh(Tanh(C))"),
             t("Tanh(Relu(C))"),  t("Pair(C, C)"),    t("Pair(C, D)"),
             t("Add(Mul(C, D), E)"), t("Add(C, D)"),  t("Mul(C, D)"),
             t("C"),              t("Relu(C)"),       t("Relu(Relu(Relu(C)))")};
  }

  plan::Program compile() { return plan::PlanBuilder::compile(RS, Sig); }

  /// Records a real profile over the whole corpus against \p Prog.
  plan::Profile recordCorpus(const plan::Program &Prog) {
    plan::Profile Prof;
    EXPECT_TRUE(Prof.bindTo(Prog));
    plan::TraversalTrace Tr;
    std::vector<uint8_t> Mask;
    for (term::TermRef T : Terms) {
      Prog.candidates(T, Mask, &Tr);
      Prof.addTrace(Tr);
      for (size_t I = 0; I != Prog.numEntries(); ++I)
        if (Mask[I])
          plan::Interpreter::run(Prog, I, T, Arena, {}, &Prof);
    }
    return Prof;
  }

  /// The differential core: \p Profiled must be indistinguishable from
  /// \p Base per attempt, and both must agree with FastMatcher and the
  /// reference Machine.
  void expectPlansEquivalent(const plan::Program &Base,
                             const plan::Program &Profiled) {
    std::vector<uint8_t> MaskA, MaskB;
    for (term::TermRef T : Terms) {
      SCOPED_TRACE(Arena.toString(T));
      Base.candidates(T, MaskA);
      Profiled.candidates(T, MaskB);
      // The mask is positional: profile-guided ordering must leave it
      // byte-for-byte identical, not merely set-equal.
      EXPECT_EQ(MaskA, MaskB);
      for (size_t I = 0; I != Defs.size(); ++I) {
        SCOPED_TRACE(std::string(Defs[I].Name.str()));
        MatchResult A = plan::Interpreter::run(Base, I, T, Arena);
        MatchResult B = plan::Interpreter::run(Profiled, I, T, Arena);
        ASSERT_EQ(A.Status, B.Status);
        EXPECT_EQ(A.W, B.W);
        expectStatsEqual(A.Stats, B.Stats);
        MatchResult Fast = FastMatcher::run(Defs[I].Pat, T, Arena);
        MatchResult Ref = matchPattern(Defs[I].Pat, T, Arena);
        ASSERT_EQ(B.Status, Fast.Status);
        ASSERT_EQ(B.Status, Ref.Status);
        if (Fast.matched()) {
          EXPECT_EQ(B.W, Fast.W);
        }
        expectStatsEqual(B.Stats, Fast.Stats);
      }
    }
  }

  std::deque<NamedPattern> Defs;
  rewrite::RuleSet RS;
  std::vector<term::TermRef> Terms;
};

} // namespace

TEST_F(PlanProfileAttemptTest, RealProfileIsInvisiblePerAttempt) {
  buildCorpus();
  plan::Program Base = compile();
  plan::Program Prog = compile();
  plan::Profile Prof = recordCorpus(Base);
  EXPECT_GT(Prof.Traversals, 0u);
  ASSERT_TRUE(plan::PlanBuilder::applyProfile(Prog, Prof));
  EXPECT_TRUE(Prog.ProfileApplied);
  EXPECT_FALSE(Base.ProfileApplied);
  expectPlansEquivalent(Base, Prog);
}

TEST_F(PlanProfileAttemptTest, InvertedProfileIsInvisiblePerAttempt) {
  buildCorpus();
  plan::Program Base = compile();
  plan::Program Prog = compile();
  plan::Profile Inv = invertProfile(recordCorpus(Base));
  ASSERT_TRUE(plan::PlanBuilder::applyProfile(Prog, Inv));
  expectPlansEquivalent(Base, Prog);
}

TEST_F(PlanProfileAttemptTest, GarbageProfilesAreInvisiblePerAttempt) {
  buildCorpus();
  plan::Program Base = compile();
  for (uint64_t Seed = 0; Seed != 10; ++Seed) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    plan::Program Prog = compile();
    ASSERT_TRUE(
        plan::PlanBuilder::applyProfile(Prog, garbageProfile(Base, Seed)));
    expectPlansEquivalent(Base, Prog);
  }
}

TEST_F(PlanProfileAttemptTest, ApplyProfileSortsByRecordedHeat) {
  // The ordering invariant applyProfile promises: within every edge list,
  // descending recorded hits; groups within a node by descending summed
  // heat; accepted entries by descending matches; hot wildcards before
  // never-hit ones. (Which concrete permutation that yields is layout —
  // pinned only up to this invariant, so the test survives tree-shape
  // refactors.)
  buildCorpus();
  plan::Program Prog = compile();
  plan::Profile Prof = recordCorpus(Prog);
  ASSERT_TRUE(plan::PlanBuilder::applyProfile(Prog, Prof));

  auto Heat = [&](const plan::TreeEdge &E) { return Prof.EdgeHits[E.Id]; };
  auto GroupHeat = [&](const plan::TreeGroup &G) {
    uint64_t H = 0;
    for (const plan::TreeEdge &E : G.OpEdges)
      H += Heat(E);
    for (const plan::TreeEdge &E : G.ArityEdges)
      H += Heat(E);
    return H;
  };
  for (const plan::TreeNode &N : Prog.Tree) {
    for (size_t I = 1; I < N.Accept.size(); ++I)
      EXPECT_GE(Prof.EntryMatches[N.Accept[I - 1]],
                Prof.EntryMatches[N.Accept[I]]);
    for (size_t I = 1; I < N.Groups.size(); ++I)
      EXPECT_GE(GroupHeat(N.Groups[I - 1]), GroupHeat(N.Groups[I]));
    for (const plan::TreeGroup &G : N.Groups) {
      for (size_t I = 1; I < G.OpEdges.size(); ++I)
        EXPECT_GE(Heat(G.OpEdges[I - 1]), Heat(G.OpEdges[I]));
      for (size_t I = 1; I < G.ArityEdges.size(); ++I)
        EXPECT_GE(Heat(G.ArityEdges[I - 1]), Heat(G.ArityEdges[I]));
    }
  }
  bool SeenCold = false;
  for (uint32_t W : Prog.Wildcards) {
    if (Prof.EntryMatches[W] == 0)
      SeenCold = true;
    else
      EXPECT_FALSE(SeenCold) << "hot wildcard after a cold one";
  }
  // The wildcard base mask must still mark exactly the wildcard entries.
  ASSERT_EQ(Prog.WildcardBase.size(), Prog.numEntries());
  for (size_t I = 0; I != Prog.numEntries(); ++I) {
    bool IsWild = std::find(Prog.Wildcards.begin(), Prog.Wildcards.end(),
                            static_cast<uint32_t>(I)) != Prog.Wildcards.end();
    EXPECT_EQ(Prog.WildcardBase[I] != 0, IsWild);
  }
}

TEST_F(PlanProfileAttemptTest, SignatureIsStableAndProfileInvariant) {
  buildCorpus();
  plan::Program A = compile();
  plan::Program B = compile();
  // Deterministic across compiles — a recorded profile binds to any later
  // recompile of the same rule set.
  EXPECT_EQ(A.CanonicalSig, B.CanonicalSig);
  plan::Profile Prof = recordCorpus(A);
  ASSERT_TRUE(plan::PlanBuilder::applyProfile(B, Prof));
  // Invariant under applyProfile — profiles compose across generations
  // (a re-recorded profile still binds to the already-ordered plan).
  EXPECT_EQ(plan::PlanBuilder::signature(B), A.CanonicalSig);
  EXPECT_TRUE(Prof.boundTo(B));
}

TEST_F(PlanProfileAttemptTest, StaleProfileRejectedWithoutSideEffects) {
  buildCorpus();
  plan::Program Prog = compile();
  plan::Profile Prof = recordCorpus(Prog);

  // A different rule set: the profile must not bind, applyProfile must
  // refuse, and the program must be left untouched.
  rewrite::RuleSet Other;
  std::deque<NamedPattern> OtherDefs;
  OtherDefs.push_back(
      NamedPattern{Symbol::intern("NN"),
                   {},
                   {},
                   app("Neg", {app("Neg", {v("x")})})});
  Other.addPattern(OtherDefs.back());
  plan::Program OtherProg = plan::PlanBuilder::compile(Other, Sig);
  EXPECT_NE(OtherProg.CanonicalSig, Prog.CanonicalSig);
  EXPECT_FALSE(Prof.boundTo(OtherProg));
  EXPECT_FALSE(plan::PlanBuilder::applyProfile(OtherProg, Prof));
  EXPECT_FALSE(OtherProg.ProfileApplied);
}

TEST_F(PlanProfileAttemptTest, ProfileMergeSumsAndChecks) {
  buildCorpus();
  plan::Program Prog = compile();
  plan::Profile A = recordCorpus(Prog);
  plan::Profile B = recordCorpus(Prog);
  EXPECT_EQ(A, B); // recording is deterministic

  plan::Profile Sum = A;
  ASSERT_TRUE(Sum.merge(B));
  EXPECT_EQ(Sum.Traversals, 2 * A.Traversals);
  for (size_t I = 0; I != Sum.EdgeHits.size(); ++I)
    EXPECT_EQ(Sum.EdgeHits[I], 2 * A.EdgeHits[I]);
  for (size_t I = 0; I != Sum.EntryAttempts.size(); ++I) {
    EXPECT_EQ(Sum.EntryAttempts[I], 2 * A.EntryAttempts[I]);
    EXPECT_EQ(Sum.EntryMatches[I], 2 * A.EntryMatches[I]);
  }
  // A doubled profile orders exactly like the original (same ranking).
  plan::Program P1 = compile(), P2 = compile();
  ASSERT_TRUE(plan::PlanBuilder::applyProfile(P1, A));
  ASSERT_TRUE(plan::PlanBuilder::applyProfile(P2, Sum));
  expectPlansEquivalent(P1, P2);

  // Empty adopts; mismatched shapes refuse.
  plan::Profile Empty;
  ASSERT_TRUE(Empty.merge(A));
  EXPECT_EQ(Empty, A);
  plan::Profile Foreign;
  Foreign.PlanSignature = A.PlanSignature + 1;
  Foreign.Traversals = 1;
  Foreign.EdgeHits.assign(3, 7);
  plan::Profile Before = A;
  EXPECT_FALSE(A.merge(Foreign));
  EXPECT_EQ(A, Before);
}

//===----------------------------------------------------------------------===//
// Engine-level equivalence over the model zoo
//===----------------------------------------------------------------------===//

// Zoo-differential scaffolding shared with test_matchplan.cpp and
// test_incremental.cpp.
using pypm::testing::expectFullyEqual;
using pypm::testing::expectSameRewrites;
using pypm::testing::runModel;
using pypm::testing::RunResult;

namespace {

/// Runs \p Model under the plan matcher with \p Order applied to the plan
/// first (when non-null) and committed-order recording into \p RecordInto
/// (when non-null).
RunResult runModelProfiled(const models::ModelEntry &Model, unsigned Threads,
                           const plan::Profile *Order,
                           plan::Profile *RecordInto,
                           DiagnosticEngine *Diags = nullptr) {
  term::Signature Sig;
  auto G = Model.Build(Sig);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
  plan::Program Prog = plan::PlanBuilder::compile(Pipe.Rules, Sig);
  if (Order) {
    EXPECT_TRUE(plan::PlanBuilder::applyProfile(Prog, *Order));
  }
  rewrite::RewriteOptions Opts;
  Opts.Matcher = rewrite::MatcherKind::Plan;
  Opts.NumThreads = Threads;
  Opts.PrecompiledPlan = &Prog;
  Opts.PlanProfile = RecordInto;
  Opts.Diags = Diags;
  RunResult R;
  R.Stats = rewrite::rewriteToFixpoint(*G, Pipe.Rules,
                                       graph::ShapeInference(), Opts);
  R.GraphText = graph::writeGraphText(*G);
  return R;
}

/// Records the zoo model's profile with a serial unprofiled plan run.
plan::Profile recordModelProfile(const models::ModelEntry &Model) {
  plan::Profile Prof;
  runModelProfiled(Model, 0, nullptr, &Prof);
  EXPECT_FALSE(Prof.empty());
  return Prof;
}

} // namespace

TEST(PlanProfileEngine, ZooProfiledRunsBitIdenticalAtEveryThreadCount) {
  for (const auto &Suite : {models::hfSuite(), models::tvSuite()}) {
    for (const models::ModelEntry &Model : Suite) {
      RunResult Fast = runModel(Model, {});
      plan::Profile Prof;
      RunResult Recording = runModelProfiled(Model, 0, nullptr, &Prof);
      RunResult Base = runModelProfiled(Model, 0, nullptr, nullptr);
      // Recording is observation-only.
      expectFullyEqual(Base, Recording, Model.Name + " recording vs plain");
      expectSameRewrites(Fast, Base, Model.Name + " fast vs plan");
      EXPECT_GT(Prof.Traversals, 0u) << Model.Name;
      for (unsigned Threads : {0u, 1u, 2u, 4u, 8u}) {
        RunResult Profiled =
            runModelProfiled(Model, Threads, &Prof, nullptr);
        expectFullyEqual(Base, Profiled,
                         Model.Name + " profiled@" + std::to_string(Threads));
      }
      plan::Profile Inv = invertProfile(Prof);
      RunResult Inverted = runModelProfiled(Model, 0, &Inv, nullptr);
      expectFullyEqual(Base, Inverted, Model.Name + " inverted profile");
    }
  }
}

TEST(PlanProfileEngine, SelfProfilingReproducesTheOriginalProfile) {
  // Recording while running a *profiled* plan must produce the identical
  // profile: traces are keyed by canonical ids (permutation-stable) and
  // the committed sequence is unchanged. This is what makes iterative
  // re-profiling (profile -> order -> re-profile -> re-order) a fixpoint
  // rather than a drift.
  auto Suite = models::hfSuite();
  ASSERT_GE(Suite.size(), 3u);
  for (size_t I = 0; I != 3; ++I) {
    SCOPED_TRACE(Suite[I].Name);
    plan::Profile First = recordModelProfile(Suite[I]);
    plan::Profile Second;
    RunResult Base = runModelProfiled(Suite[I], 0, nullptr, nullptr);
    RunResult SelfProf = runModelProfiled(Suite[I], 0, &First, &Second);
    expectFullyEqual(Base, SelfProf, Suite[I].Name + " self-profiled");
    EXPECT_EQ(First, Second);
    // And a second generation of ordering changes nothing either.
    RunResult Gen2 = runModelProfiled(Suite[I], 0, &Second, nullptr);
    expectFullyEqual(Base, Gen2, Suite[I].Name + " second-generation");
  }
}

TEST(PlanProfileEngine, StaleProfileIsIgnoredWithAWarning) {
  // A populated profile recorded against a different rule set: the engine
  // must warn, skip recording, leave the profile untouched, and commit
  // exactly the unprofiled outcome.
  term::Signature Sig;
  models::declareModelOps(Sig);
  auto Lib = dsl::compileOrDie("pattern RR(x) { return Relu(Relu(x)); }\n"
                               "rule rr for RR(x) { return Relu(x); }\n",
                               Sig);
  rewrite::RuleSet RS;
  RS.addLibrary(*Lib);
  plan::Program Small = plan::PlanBuilder::compile(RS, Sig);
  plan::Profile Stale = garbageProfile(Small, 1);
  plan::Profile Untouched = Stale;

  auto Suite = models::hfSuite();
  ASSERT_FALSE(Suite.empty());
  RunResult Base = runModelProfiled(Suite.front(), 0, nullptr, nullptr);
  DiagnosticEngine Diags;
  RunResult WithStale =
      runModelProfiled(Suite.front(), 0, nullptr, &Stale, &Diags);
  expectFullyEqual(Base, WithStale, "stale profile run");
  EXPECT_EQ(Stale, Untouched);
  bool Warned = false;
  for (const Diagnostic &D : Diags.diagnostics())
    Warned |= D.Sev == Severity::Warning &&
              D.Message.find("plan profile ignored") != std::string::npos;
  EXPECT_TRUE(Warned) << Diags.renderAll();
}

TEST(PlanProfileEngine, AttemptCounterCaveatAcrossMatcherKinds) {
  // Regression pin for the DESIGN.md caveat: attempt-shaped counters are
  // comparable within a matcher kind (any thread count, profiled or not)
  // but NOT across kinds — the discrimination tree prefilters attempts the
  // fast matcher's root-op index would have started. What IS invariant
  // across kinds is the committed sequence and, per pattern, the sum
  // Attempts + RootSkips (every entry at every visited node is counted
  // exactly once, as one or the other).
  auto Suite = models::hfSuite();
  ASSERT_FALSE(Suite.empty());
  const models::ModelEntry &Model = Suite.front();
  RunResult Fast = runModel(Model, {});
  RunResult Plan = runModelProfiled(Model, 0, nullptr, nullptr);
  expectSameRewrites(Fast, Plan, "fast vs plan committed sequence");

  uint64_t FastAttempts = 0, PlanAttempts = 0;
  for (const auto &[Name, SP] : Fast.Stats.PerPattern) {
    SCOPED_TRACE(Name);
    auto It = Plan.Stats.PerPattern.find(Name);
    ASSERT_NE(It, Plan.Stats.PerPattern.end());
    EXPECT_EQ(SP.Attempts + SP.RootSkips,
              It->second.Attempts + It->second.RootSkips);
    EXPECT_LE(It->second.Attempts, SP.Attempts);
    FastAttempts += SP.Attempts;
    PlanAttempts += It->second.Attempts;
  }
  // The caveat is real on this model: the tree prunes strictly more.
  EXPECT_LT(PlanAttempts, FastAttempts);

  // Within the plan kind, a profiled run's attempt counters are
  // bit-identical (expectFullyEqual compares full PatternStats).
  plan::Profile Prof = recordModelProfile(Model);
  RunResult Profiled = runModelProfiled(Model, 0, &Prof, nullptr);
  expectFullyEqual(Plan, Profiled, "plan vs profiled plan, full stats");
}

//===----------------------------------------------------------------------===//
// Stress zoo: 50 seeds, real + inverted profiles, every thread count
//===----------------------------------------------------------------------===//

namespace {

StressOutcome runStressProfiled(uint64_t Seed, unsigned Threads,
                                const plan::Profile *Order,
                                plan::Profile *RecordInto) {
  term::Signature Sig;
  models::declareModelOps(Sig);
  auto Lib = dsl::compileOrDie(pypm::testing::stressRuleSource(Seed), Sig);
  graph::Graph G(Sig);
  pypm::testing::buildStressGraph(Seed, G, Sig);
  graph::ShapeInference SI;
  SI.inferAll(G);
  rewrite::RuleSet RS;
  RS.addLibrary(*Lib);
  plan::Program Prog = plan::PlanBuilder::compile(RS, Sig);
  if (Order) {
    EXPECT_TRUE(plan::PlanBuilder::applyProfile(Prog, *Order));
  }
  rewrite::RewriteOptions Opts;
  Opts.Matcher = rewrite::MatcherKind::Plan;
  Opts.NumThreads = Threads;
  Opts.PrecompiledPlan = &Prog;
  Opts.PlanProfile = RecordInto;
  // The stress templates include a ping-pong pair with no fixpoint.
  Opts.MaxRewrites = 300;
  StressOutcome Out;
  Out.Stats = rewrite::rewriteToFixpoint(G, RS, SI, Opts);
  Out.GraphText = graph::writeGraphText(G);
  return Out;
}

class PlanProfileStressTest : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(PlanProfileStressTest, ProfiledStressRunsBitIdenticalAcrossSeeds) {
  unsigned Threads = GetParam();
  for (uint64_t Seed = 0; Seed != 50; ++Seed) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    plan::Profile Prof;
    StressOutcome Base = runStressProfiled(Seed, 0, nullptr, &Prof);
    StressOutcome Profiled0 = runStressProfiled(Seed, 0, &Prof, nullptr);
    expectOutcomesEqual(Base, Profiled0,
                        stressRepro(Seed, "base vs profiled@0"));
    plan::Profile Inv = invertProfile(Prof);
    StressOutcome Inverted = runStressProfiled(Seed, 0, &Inv, nullptr);
    expectOutcomesEqual(Base, Inverted,
                        stressRepro(Seed, "base vs inverted-profile@0"));
    StressOutcome ProfiledN = runStressProfiled(Seed, Threads, &Prof, nullptr);
    expectOutcomesEqual(Base, ProfiledN,
                        stressRepro(Seed, 0, Threads, "profiled"));
  }
}

TEST_P(PlanProfileStressTest, RecordedProfilesIdenticalAcrossThreadCounts) {
  // The committed-order merge rule, proven: per-worker traversal traces
  // merged at commit time yield byte-for-byte the serial profile — at this
  // thread count, over 25 stress seeds, recording even while the plan is
  // itself profile-ordered.
  unsigned Threads = GetParam();
  for (uint64_t Seed = 0; Seed != 25; ++Seed) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    plan::Profile Serial, Parallel;
    runStressProfiled(Seed, 0, nullptr, &Serial);
    runStressProfiled(Seed, Threads, nullptr, &Parallel);
    EXPECT_EQ(Serial, Parallel);
    plan::Profile SerialSelf, ParallelSelf;
    runStressProfiled(Seed, 0, &Serial, &SerialSelf);
    runStressProfiled(Seed, Threads, &Serial, &ParallelSelf);
    EXPECT_EQ(SerialSelf, ParallelSelf);
    EXPECT_EQ(Serial, SerialSelf);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, PlanProfileStressTest,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto &Info) {
                           return "T" + std::to_string(Info.param);
                         });

TEST(PlanProfileEngine, ZooRecordedProfilesIdenticalAcrossThreadCounts) {
  auto Suite = models::hfSuite();
  ASSERT_GE(Suite.size(), 2u);
  for (size_t I = 0; I != 2; ++I) {
    SCOPED_TRACE(Suite[I].Name);
    plan::Profile Serial;
    runModelProfiled(Suite[I], 0, nullptr, &Serial);
    for (unsigned Threads : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(Threads));
      plan::Profile Parallel;
      runModelProfiled(Suite[I], Threads, nullptr, &Parallel);
      EXPECT_EQ(Serial, Parallel);
    }
  }
}

//===----------------------------------------------------------------------===//
// Profiled .pypmplan artifacts end-to-end
//===----------------------------------------------------------------------===//

TEST(PlanProfileArtifact, ProfiledArtifactDrivesTheEngineIdentically) {
  // Record a profile against a *loaded* plan (so its signature matches
  // what serializePlan's internal round-trip compiles), embed it, reload,
  // and drive the engine: identical to the unprofiled artifact run.
  term::Signature SigA;
  models::declareModelOps(SigA);
  auto LibA = opt::compileEpilog(SigA);
  DiagnosticEngine Diags;
  std::string Plain =
      plan::serializePlan(*LibA, SigA, /*RulesOnly=*/true, Diags);
  ASSERT_FALSE(Plain.empty()) << Diags.renderAll();

  term::Signature SigB;
  models::declareModelOps(SigB);
  DiagnosticEngine LoadDiags;
  auto LP = plan::deserializePlan(Plain, SigB, LoadDiags);
  ASSERT_NE(LP, nullptr) << LoadDiags.renderAll();

  auto Suite = models::hfSuite();
  ASSERT_FALSE(Suite.empty());
  auto RunWith = [&](term::Signature &Sig, plan::LoadedPlan &P,
                     plan::Profile *RecordInto) {
    auto G = Suite.front().Build(Sig);
    rewrite::RewriteOptions Opts;
    Opts.Matcher = rewrite::MatcherKind::Plan;
    Opts.PrecompiledPlan = &P.Prog;
    Opts.PlanProfile = RecordInto;
    RunResult R;
    R.Stats = rewrite::rewriteToFixpoint(*G, P.Rules,
                                         graph::ShapeInference(), Opts);
    R.GraphText = graph::writeGraphText(*G);
    return R;
  };

  plan::Profile Prof;
  RunResult Base = RunWith(SigB, *LP, &Prof);
  ASSERT_FALSE(Prof.empty());
  EXPECT_TRUE(Prof.boundTo(LP->Prog));

  // The .pypmprof artifact round-trips losslessly.
  DiagnosticEngine ProfDiags;
  auto Reloaded =
      plan::deserializeProfile(plan::serializeProfile(Prof), ProfDiags);
  ASSERT_NE(Reloaded, nullptr) << ProfDiags.renderAll();
  EXPECT_EQ(*Reloaded, Prof);

  DiagnosticEngine EmbedDiags;
  std::string Profiled = plan::serializePlan(*LibA, SigA, /*RulesOnly=*/true,
                                             EmbedDiags, &Prof);
  ASSERT_FALSE(Profiled.empty()) << EmbedDiags.renderAll();
  EXPECT_GT(Profiled.size(), Plain.size());

  term::Signature SigC;
  models::declareModelOps(SigC);
  DiagnosticEngine Load2Diags;
  auto LP2 = plan::deserializePlan(Profiled, SigC, Load2Diags);
  ASSERT_NE(LP2, nullptr) << Load2Diags.renderAll();
  ASSERT_NE(LP2->Prof, nullptr);
  EXPECT_EQ(*LP2->Prof, Prof);
  EXPECT_TRUE(LP2->Prog.ProfileApplied);

  RunResult FromProfiled = RunWith(SigC, *LP2, nullptr);
  expectFullyEqual(Base, FromProfiled, "plain vs profiled artifact");
}
