//===- tests/test_parallel_rewrite.cpp - Serial/parallel equivalence ------===//
///
/// Differential proof that the parallel match-discovery engine is
/// observationally identical to the serial legacy engine: every model in
/// the zoo, rewritten by the full pipeline, must produce a byte-identical
/// serialized graph and identical per-pattern counters at every thread
/// count (see DESIGN.md §"Parallel discovery, serial commit").
///
//===----------------------------------------------------------------------===//

#include "graph/GraphIO.h"
#include "models/Zoo.h"
#include "opt/StdPatterns.h"
#include "rewrite/RewriteEngine.h"

#include <gtest/gtest.h>

using namespace pypm;
using rewrite::PatternStats;
using rewrite::RewriteOptions;
using rewrite::RewriteStats;

namespace {

struct RunResult {
  std::string GraphText;
  RewriteStats Stats;
};

RunResult runModel(const models::ModelEntry &Model, RewriteOptions Opts) {
  term::Signature Sig;
  auto G = Model.Build(Sig);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
  RunResult R;
  R.Stats = rewrite::rewriteToFixpoint(*G, Pipe.Rules,
                                       graph::ShapeInference(), Opts);
  R.GraphText = graph::writeGraphText(*G);
  return R;
}

// Everything observable must agree except wall-clock fields and the
// Discovery map (which only the parallel engine populates).
void expectEquivalent(const RunResult &Serial, const RunResult &Parallel,
                      const std::string &Label) {
  SCOPED_TRACE(Label);
  EXPECT_EQ(Serial.GraphText, Parallel.GraphText);
  const RewriteStats &S = Serial.Stats;
  const RewriteStats &P = Parallel.Stats;
  EXPECT_EQ(S.Passes, P.Passes);
  EXPECT_EQ(S.NodesVisited, P.NodesVisited);
  EXPECT_EQ(S.TotalMatches, P.TotalMatches);
  EXPECT_EQ(S.TotalFired, P.TotalFired);
  EXPECT_EQ(S.NodesSwept, P.NodesSwept);
  EXPECT_EQ(S.Status, P.Status);
  ASSERT_EQ(S.PerPattern.size(), P.PerPattern.size());
  for (const auto &[Name, SP] : S.PerPattern) {
    SCOPED_TRACE(Name);
    auto It = P.PerPattern.find(Name);
    ASSERT_NE(It, P.PerPattern.end());
    const PatternStats &PP = It->second;
    EXPECT_EQ(SP.Attempts, PP.Attempts);
    EXPECT_EQ(SP.RootSkips, PP.RootSkips);
    EXPECT_EQ(SP.Matches, PP.Matches);
    EXPECT_EQ(SP.RulesFired, PP.RulesFired);
    EXPECT_EQ(SP.GuardRejects, PP.GuardRejects);
    EXPECT_EQ(SP.MachineSteps, PP.MachineSteps);
    EXPECT_EQ(SP.Backtracks, PP.Backtracks);
  }
}

class ParallelDifferentialTest
    : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelDifferentialTest, HfSuiteMatchesSerial) {
  unsigned Threads = GetParam();
  for (const models::ModelEntry &Model : models::hfSuite()) {
    RunResult Serial = runModel(Model, {});
    RewriteOptions Par;
    Par.NumThreads = Threads;
    RunResult Parallel = runModel(Model, Par);
    expectEquivalent(Serial, Parallel,
                     Model.Name + " @" + std::to_string(Threads));
  }
}

TEST_P(ParallelDifferentialTest, TvSuiteMatchesSerial) {
  unsigned Threads = GetParam();
  for (const models::ModelEntry &Model : models::tvSuite()) {
    RunResult Serial = runModel(Model, {});
    RewriteOptions Par;
    Par.NumThreads = Threads;
    RunResult Parallel = runModel(Model, Par);
    expectEquivalent(Serial, Parallel,
                     Model.Name + " @" + std::to_string(Threads));
  }
}

// RootsFirst snapshots a reverse-topological order per pass; the parallel
// engine must preserve that traversal too. A few models suffice — the
// commit machinery is order-agnostic, only the work list differs.
TEST_P(ParallelDifferentialTest, RootsFirstMatchesSerial) {
  unsigned Threads = GetParam();
  auto Suite = models::hfSuite();
  size_t Checked = 0;
  for (const models::ModelEntry &Model : Suite) {
    if (Checked == 4)
      break;
    ++Checked;
    RewriteOptions SerialOpts;
    SerialOpts.Order = rewrite::Traversal::RootsFirst;
    RunResult Serial = runModel(Model, SerialOpts);
    RewriteOptions Par = SerialOpts;
    Par.NumThreads = Threads;
    RunResult Parallel = runModel(Model, Par);
    expectEquivalent(Serial, Parallel,
                     Model.Name + " roots-first @" + std::to_string(Threads));
  }
}

// Ablation configs: the parallel engine must compose with the prefilter
// and memoization toggles, not just the default configuration.
TEST_P(ParallelDifferentialTest, AblationTogglesMatchSerial) {
  unsigned Threads = GetParam();
  auto Suite = models::tvSuite();
  ASSERT_FALSE(Suite.empty());
  const models::ModelEntry &Model = Suite.front();
  for (bool RootIndex : {false, true}) {
    for (bool Memoize : {false, true}) {
      RewriteOptions SerialOpts;
      SerialOpts.UseRootIndex = RootIndex;
      SerialOpts.MemoizeTermView = Memoize;
      RunResult Serial = runModel(Model, SerialOpts);
      RewriteOptions Par = SerialOpts;
      Par.NumThreads = Threads;
      RunResult Parallel = runModel(Model, Par);
      expectEquivalent(Serial, Parallel,
                       Model.Name + " idx=" + std::to_string(RootIndex) +
                           " memo=" + std::to_string(Memoize) + " @" +
                           std::to_string(Threads));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelDifferentialTest,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto &Info) {
                           return "T" + std::to_string(Info.param);
                         });

// The Discovery map records the workers' speculative matcher work. It is
// populated for every pattern entry, and on a single-pass match-only run
// (no fires, so nothing is invalidated and nothing is appended) it agrees
// exactly with the committed per-pattern counters.
TEST(ParallelDiscoveryStats, MatchOnlyDiscoveryEqualsCommitted) {
  auto Suite = models::hfSuite();
  ASSERT_FALSE(Suite.empty());
  const models::ModelEntry &Model = Suite.front();
  term::Signature Sig;
  auto G = Model.Build(Sig);
  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
  RewriteOptions Par;
  Par.NumThreads = 4;
  RewriteStats Stats = rewrite::matchAll(*G, Pipe.Rules, Par);
  EXPECT_FALSE(Stats.Discovery.empty());
  for (const auto &[Name, PS] : Stats.PerPattern) {
    SCOPED_TRACE(Name);
    auto It = Stats.Discovery.find(Name);
    ASSERT_NE(It, Stats.Discovery.end());
    EXPECT_EQ(It->second.Attempts, PS.Attempts);
    EXPECT_EQ(It->second.RootSkips, PS.RootSkips);
    EXPECT_EQ(It->second.Matches, PS.Matches);
    EXPECT_EQ(It->second.MachineSteps, PS.MachineSteps);
    EXPECT_EQ(It->second.Backtracks, PS.Backtracks);
  }
}

TEST(ParallelDiscoveryStats, SerialEngineLeavesDiscoveryEmpty) {
  auto Suite = models::hfSuite();
  ASSERT_FALSE(Suite.empty());
  RunResult R = runModel(Suite.front(), {});
  EXPECT_TRUE(R.Stats.Discovery.empty());
  EXPECT_DOUBLE_EQ(R.Stats.DiscoverySeconds, R.Stats.MatchSeconds);
}

} // namespace
