//===- tests/test_declarative.cpp - Declarative semantics ---------------------===//
///
/// Hand-picked derivations and counter-derivations for each rule of
/// Fig. 16, exercised through both the derivation checker (Strict engine)
/// and the witness enumerator (Free engine).
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

using namespace pypm;
using namespace pypm::match;
using namespace pypm::pattern;
using pypm::testing::CoreFixture;

class DeclarativeTest : public CoreFixture {
protected:
  bool derivable(const Pattern *P, term::TermRef T, const Subst &Theta,
                 const FunSubst &Phi = {}) {
    return checkDerivable(P, T, Theta, Phi, Arena);
  }
  EnumResult enumerate(const Pattern *P, term::TermRef T) {
    return enumerateWitnesses(P, T, Arena);
  }
  Subst theta(std::initializer_list<std::pair<const char *, term::TermRef>>
                  Bindings) {
    Subst S;
    for (auto &[Name, T] : Bindings)
      S.bind(Symbol::intern(Name), T);
    return S;
  }
};

//===----------------------------------------------------------------------===//
// P-Var
//===----------------------------------------------------------------------===//

TEST_F(DeclarativeTest, PVarRequiresExactBinding) {
  EXPECT_TRUE(derivable(v("x"), t("C"), theta({{"x", t("C")}})));
  EXPECT_FALSE(derivable(v("x"), t("C"), theta({{"x", t("D")}})));
  EXPECT_FALSE(derivable(v("x"), t("C"), Subst())); // θ(x) undefined
}

TEST_F(DeclarativeTest, WeakeningExtraBindingsAreHarmless) {
  // Theorem 1 on a concrete instance.
  Subst Big = theta({{"x", t("C")}, {"unused", t("D")}});
  EXPECT_TRUE(derivable(v("x"), t("C"), Big));
}

//===----------------------------------------------------------------------===//
// P-Fun
//===----------------------------------------------------------------------===//

TEST_F(DeclarativeTest, PFunStructural) {
  const Pattern *P = app("Pair", {v("x"), v("y")});
  Subst Th = theta({{"x", t("C")}, {"y", t("D")}});
  EXPECT_TRUE(derivable(P, t("Pair(C, D)"), Th));
  EXPECT_FALSE(derivable(P, t("Pair(D, C)"), Th));
  EXPECT_FALSE(derivable(P, t("Trans(C)"), Th));
}

//===----------------------------------------------------------------------===//
// P-Alt
//===----------------------------------------------------------------------===//

TEST_F(DeclarativeTest, PAltEitherSideDerives) {
  const Pattern *P = PA.alt(app("Trans", {v("x")}), v("x"));
  EXPECT_TRUE(derivable(P, t("Trans(C)"), theta({{"x", t("C")}})));
  EXPECT_TRUE(derivable(P, t("Trans(C)"), theta({{"x", t("Trans(C)")}})));
  EXPECT_FALSE(derivable(P, t("Trans(C)"), theta({{"x", t("D")}})));
}

TEST_F(DeclarativeTest, EnumeratorFindsBothAltWitnesses) {
  // The declarative relation for f(x,y) ‖ f(y,x) on f(c1,c2) has two
  // witnesses — the non-completeness example of §3.1.2.
  const Pattern *P = PA.alt(app("Pair", {v("x"), v("y")}),
                            app("Pair", {v("y"), v("x")}));
  EnumResult R = enumerate(P, t("Pair(C1, C2)"));
  EXPECT_FALSE(R.Incomplete);
  EXPECT_EQ(R.Witnesses.size(), 2u);
}

TEST_F(DeclarativeTest, EnumeratorDeduplicatesIdenticalBranches) {
  const Pattern *P = PA.alt(v("x"), v("x"));
  EnumResult R = enumerate(P, t("C"));
  EXPECT_EQ(R.Witnesses.size(), 1u);
}

TEST_F(DeclarativeTest, SymmetricTermCollapsesAltWitnesses) {
  const Pattern *P = PA.alt(app("Pair", {v("x"), v("y")}),
                            app("Pair", {v("y"), v("x")}));
  EnumResult R = enumerate(P, t("Pair(C, C)"));
  EXPECT_EQ(R.Witnesses.size(), 1u); // both alternates give the same θ
}

//===----------------------------------------------------------------------===//
// P-Guard
//===----------------------------------------------------------------------===//

TEST_F(DeclarativeTest, PGuardFiltersWitnesses) {
  const GuardExpr *RankIs2 = PA.binary(
      GuardKind::Eq, PA.attr(Symbol::intern("x"), Symbol::intern("rank")),
      PA.intLit(2));
  const Pattern *P = PA.guarded(v("x"), RankIs2);
  EXPECT_TRUE(derivable(P, t("A[rank=2]"), theta({{"x", t("A[rank=2]")}})));
  EXPECT_FALSE(derivable(P, t("A[rank=3]"), theta({{"x", t("A[rank=3]")}})));
  EXPECT_TRUE(enumerate(P, t("A[rank=3]")).Witnesses.empty());
}

//===----------------------------------------------------------------------===//
// P-Exists
//===----------------------------------------------------------------------===//

TEST_F(DeclarativeTest, PExistsChecksWithProvidedWitness) {
  Symbol Y = Symbol::intern("y");
  const Pattern *P = PA.exists(Y, app("Pair", {PA.var(Y), PA.var(Y)}));
  // The machine's final θ includes y; checking uses it as the witness t′.
  EXPECT_TRUE(
      derivable(P, t("Pair(C, C)"), theta({{"y", t("C")}})));
  EXPECT_FALSE(
      derivable(P, t("Pair(C, C)"), theta({{"y", t("D")}})));
}

TEST_F(DeclarativeTest, PExistsOpenVariableSearchedWhenAbsent) {
  // With y absent from θ, the checker may invent the witness (the ∃ opens
  // the variable for binding) — the judgment is still ∃-derivable.
  Symbol Y = Symbol::intern("y");
  const Pattern *P = PA.exists(Y, app("Pair", {PA.var(Y), PA.var(Y)}));
  EXPECT_TRUE(derivable(P, t("Pair(C, C)"), Subst()));
  EXPECT_FALSE(derivable(P, t("Pair(C, D)"), Subst()));
}

TEST_F(DeclarativeTest, UnusedExistsVariableNotDerivable) {
  // Following §2.3's requirement (and the machine's checkName), an ∃
  // variable that never binds makes the match fail.
  Symbol Y = Symbol::intern("y");
  const Pattern *P = PA.exists(Y, v("x"));
  EXPECT_TRUE(enumerate(P, t("C")).Witnesses.empty());
  EXPECT_FALSE(derivable(P, t("C"), theta({{"x", t("C")}})));
}

//===----------------------------------------------------------------------===//
// P-MatchConstr
//===----------------------------------------------------------------------===//

TEST_F(DeclarativeTest, PMatchConstrPremises) {
  Symbol X = Symbol::intern("x");
  const Pattern *P =
      PA.matchConstraint(v("x"), app("Trans", {v("y")}), X);
  EXPECT_TRUE(derivable(P, t("Trans(B)"),
                        theta({{"x", t("Trans(B)")}, {"y", t("B")}})));
  // Wrong inner binding.
  EXPECT_FALSE(derivable(P, t("Trans(B)"),
                         theta({{"x", t("Trans(B)")}, {"y", t("C")}})));
  // Constraint shape mismatch.
  EXPECT_TRUE(enumerate(P, t("Softmax1(B)")).Witnesses.empty());
}

//===----------------------------------------------------------------------===//
// P-Fun-Var
//===----------------------------------------------------------------------===//

TEST_F(DeclarativeTest, PFunVarRequiresPhiBinding) {
  Symbol F = Symbol::intern("F");
  const Pattern *P = PA.funVarApp(F, {v("x")});
  FunSubst Phi;
  Phi.bind(F, Sig.getOrAddOp("Relu", 1));
  EXPECT_TRUE(derivable(P, t("Relu(C)"), theta({{"x", t("C")}}), Phi));
  FunSubst Wrong;
  Wrong.bind(F, Sig.getOrAddOp("Tanh", 1));
  EXPECT_FALSE(derivable(P, t("Relu(C)"), theta({{"x", t("C")}}), Wrong));
  // Unbound φ(F) fails the strict premise.
  EXPECT_FALSE(derivable(P, t("Relu(C)"), theta({{"x", t("C")}})));
}

TEST_F(DeclarativeTest, EnumeratorBindsFunVars) {
  Symbol F = Symbol::intern("F");
  const Pattern *P = PA.funVarApp(F, {PA.funVarApp(F, {v("x")})});
  EnumResult R = enumerate(P, t("Relu(Relu(C))"));
  ASSERT_EQ(R.Witnesses.size(), 1u);
  EXPECT_EQ(R.Witnesses[0].Phi.lookup(F), Sig.lookup("Relu"));
  EXPECT_TRUE(enumerate(P, t("Relu(Tanh(C))")).Witnesses.empty());
}

TEST_F(DeclarativeTest, ExistsFunOpensPhi) {
  Symbol F = Symbol::intern("F");
  const Pattern *P = PA.existsFun(F, PA.funVarApp(F, {v("x")}));
  // Strict mode: the ∃F opens F even though the seed φ is empty.
  EXPECT_TRUE(derivable(P, t("Relu(C)"), theta({{"x", t("C")}})));
  EnumResult R = enumerate(P, t("Relu(C)"));
  EXPECT_EQ(R.Witnesses.size(), 1u);
}

//===----------------------------------------------------------------------===//
// P-Mu
//===----------------------------------------------------------------------===//

TEST_F(DeclarativeTest, PMuUnfoldsAndDerives) {
  Symbol U = Symbol::intern("U"), X = Symbol::intern("x"),
         F = Symbol::intern("f");
  const Pattern *Body = PA.alt(PA.funVarApp(F, {PA.recCall(U, {X, F})}),
                               PA.funVarApp(F, {PA.var(X)}));
  const Pattern *Mu = PA.mu(U, {X, F}, {X, F}, Body);
  FunSubst Phi;
  Phi.bind(F, Sig.getOrAddOp("Relu", 1));
  EXPECT_TRUE(
      derivable(Mu, t("Relu(Relu(Relu(C)))"), theta({{"x", t("C")}}), Phi));
  EXPECT_FALSE(derivable(Mu, t("C"), theta({{"x", t("C")}}), Phi));
}

TEST_F(DeclarativeTest, EnumeratorFindsAllChainSuffixWitnesses) {
  // UnaryChain on Relu(Relu(C)) has exactly one witness per unfolding
  // depth: x↦Relu(C) (depth 1) and x↦C (depth 2).
  Symbol U = Symbol::intern("U"), X = Symbol::intern("x"),
         F = Symbol::intern("f");
  const Pattern *Body = PA.alt(PA.funVarApp(F, {PA.recCall(U, {X, F})}),
                               PA.funVarApp(F, {PA.var(X)}));
  const Pattern *Mu = PA.mu(U, {X, F}, {X, F}, Body);
  EnumResult R = enumerate(Mu, t("Relu(Relu(C))"));
  EXPECT_FALSE(R.Incomplete);
  EXPECT_EQ(R.Witnesses.size(), 2u);
}

TEST_F(DeclarativeTest, DivergentMuReportsIncomplete) {
  Symbol P = Symbol::intern("P"), X = Symbol::intern("x");
  const Pattern *Mu = PA.mu(P, {X}, {X}, PA.recCall(P, {X}));
  DeclOptions Opts;
  Opts.MuFuel = 8;
  EnumResult R = enumerateWitnesses(Mu, t("C"), Arena, Opts);
  EXPECT_TRUE(R.Witnesses.empty());
  EXPECT_TRUE(R.Incomplete);
}

TEST_F(DeclarativeTest, SeededEnumerationRestrictsWitnesses) {
  const Pattern *P = PA.alt(app("Pair", {v("x"), v("y")}),
                            app("Pair", {v("y"), v("x")}));
  Subst Seed;
  Seed.bind(Symbol::intern("x"), t("C2"));
  EnumResult R =
      enumerateWitnesses(P, t("Pair(C1, C2)"), Arena, DeclOptions(), Seed);
  ASSERT_EQ(R.Witnesses.size(), 1u);
  EXPECT_EQ(R.Witnesses[0].Theta.lookup(Symbol::intern("y")), t("C1"));
}

//===----------------------------------------------------------------------===//
// Substitution utilities
//===----------------------------------------------------------------------===//

TEST_F(DeclarativeTest, SubstSubsetOf) {
  Subst Small = theta({{"x", t("C")}});
  Subst Big = theta({{"x", t("C")}, {"y", t("D")}});
  EXPECT_TRUE(Small.subsetOf(Big));
  EXPECT_FALSE(Big.subsetOf(Small));
  Subst Conflict = theta({{"x", t("D")}});
  EXPECT_FALSE(Small.subsetOf(Conflict));
}

TEST_F(DeclarativeTest, SubstRestriction) {
  Subst Big = theta({{"x", t("C")}, {"y", t("D")}, {"z", t("C")}});
  Symbol Keys[2] = {Symbol::intern("x"), Symbol::intern("z")};
  Subst R = Big.restrictedTo(Keys);
  EXPECT_EQ(R.size(), 2u);
  EXPECT_FALSE(R.contains(Symbol::intern("y")));
}

TEST_F(DeclarativeTest, SubstEraseAndToString) {
  Subst S = theta({{"x", t("C")}});
  S.erase(Symbol::intern("x"));
  EXPECT_TRUE(S.empty());
  S.bind(Symbol::intern("x"), t("Trans(B)"));
  EXPECT_EQ(toString(S, Sig), "{x -> Trans(B)}");
}
