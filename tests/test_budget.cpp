//===- tests/test_budget.cpp - Budgets, cancellation, quarantine ---------------===//
///
/// The resource-governance half of the robustness layer:
///  - Budget / CancellationToken / EngineStatus unit semantics;
///  - the matchers' cooperative deadline/cancel poll;
///  - engine runs stopped by every ceiling, always leaving a valid graph;
///  - the determinism contract: step/μ ceilings and quarantine decisions
///    are charged in committed order only, so a governed run is
///    bit-identical at every thread count (DESIGN.md §"Failure taxonomy,
///    budgets, and transactional commit").
///
//===----------------------------------------------------------------------===//

#include "StressHarness.h"
#include "TestHelpers.h"

#include "models/Zoo.h"
#include "opt/StdPatterns.h"
#include "rewrite/Partition.h"
#include "support/Budget.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace pypm;
using pypm::testing::expectOutcomesEqual;
using pypm::testing::runStressCase;
using pypm::testing::StressOutcome;

namespace {

//===----------------------------------------------------------------------===//
// Budget / CancellationToken units
//===----------------------------------------------------------------------===//

TEST(BudgetUnit, UnlimitedByDefault) {
  Budget B;
  B.chargeSteps(1'000'000'000);
  B.chargeMuUnfolds(1'000'000'000);
  EXPECT_EQ(B.exceededCeiling(), BudgetReason::None);
  EXPECT_EQ(B.poll(1ull << 40), BudgetReason::None);
  EXPECT_FALSE(B.interrupted());
}

TEST(BudgetUnit, StepCeilingIsExclusive) {
  BudgetLimits L;
  L.MaxTotalSteps = 100;
  Budget B(L);
  B.chargeSteps(100);
  EXPECT_EQ(B.exceededCeiling(), BudgetReason::None); // at the ceiling: ok
  B.chargeSteps(1);
  EXPECT_EQ(B.exceededCeiling(), BudgetReason::Steps);
  EXPECT_EQ(B.poll(), BudgetReason::Steps);
}

TEST(BudgetUnit, MuUnfoldCeiling) {
  BudgetLimits L;
  L.MaxTotalMuUnfolds = 10;
  Budget B(L);
  B.chargeMuUnfolds(11);
  EXPECT_EQ(B.exceededCeiling(), BudgetReason::MuUnfolds);
  EXPECT_EQ(B.stepsUsed(), 0u);
  EXPECT_EQ(B.muUnfoldsUsed(), 11u);
}

TEST(BudgetUnit, CancellationWinsOverEveryCeiling) {
  CancellationToken Tok;
  BudgetLimits L;
  L.MaxTotalSteps = 1;
  L.MaxMemoryBytes = 1;
  L.Cancel = &Tok;
  Budget B(L);
  B.chargeSteps(50);
  EXPECT_EQ(B.poll(1000), BudgetReason::Memory); // memory before counters
  EXPECT_FALSE(B.interrupted());
  Tok.requestCancel();
  EXPECT_TRUE(Tok.isCancelled());
  EXPECT_TRUE(B.interrupted());
  EXPECT_EQ(B.poll(1000), BudgetReason::Cancelled);
}

TEST(BudgetUnit, MemoryCeilingOnlyWhenOverEstimate) {
  BudgetLimits L;
  L.MaxMemoryBytes = 4096;
  Budget B(L);
  EXPECT_EQ(B.poll(4096), BudgetReason::None);
  EXPECT_EQ(B.poll(4097), BudgetReason::Memory);
}

TEST(BudgetUnit, DeadlineRequiresStartAndIsSticky) {
  BudgetLimits L;
  L.DeadlineSeconds = 1e-9;
  Budget B(L);
  // Never started: the deadline is not armed.
  EXPECT_FALSE(B.interrupted());
  B.start();
  while (!B.interrupted()) {
  }
  EXPECT_EQ(B.poll(), BudgetReason::Deadline);
  // start() is idempotent — a second call must not push the deadline out.
  B.start();
  EXPECT_TRUE(B.interrupted());
}

//===----------------------------------------------------------------------===//
// EngineStatus taxonomy
//===----------------------------------------------------------------------===//

TEST(EngineStatusUnit, RaiseOnlyEscalates) {
  EngineStatus S;
  EXPECT_TRUE(S.ok());
  S.raise(EngineStatusCode::PatternQuarantined);
  EXPECT_EQ(S.Code, EngineStatusCode::PatternQuarantined);
  S.raise(EngineStatusCode::BudgetExhausted, BudgetReason::Steps);
  EXPECT_EQ(S.Code, EngineStatusCode::BudgetExhausted);
  EXPECT_EQ(S.Reason, BudgetReason::Steps);
  // A later, less severe event cannot downgrade the outcome.
  S.raise(EngineStatusCode::FaultInjected, BudgetReason::Fault);
  EXPECT_EQ(S.Code, EngineStatusCode::BudgetExhausted);
  EXPECT_EQ(S.Reason, BudgetReason::Steps);
  S.raise(EngineStatusCode::Cancelled, BudgetReason::Cancelled);
  EXPECT_EQ(S.Code, EngineStatusCode::Cancelled);
  EXPECT_EQ(S.Reason, BudgetReason::Cancelled);
}

TEST(EngineStatusUnit, RaiseBackfillsMissingReason) {
  EngineStatus S;
  S.raise(EngineStatusCode::BudgetExhausted);
  EXPECT_EQ(S.Reason, BudgetReason::None);
  S.raise(EngineStatusCode::BudgetExhausted, BudgetReason::MuUnfolds);
  EXPECT_EQ(S.Reason, BudgetReason::MuUnfolds);
}

TEST(EngineStatusUnit, StrFormat) {
  EngineStatus S;
  EXPECT_EQ(S.str(), "completed");
  S.raise(EngineStatusCode::BudgetExhausted, BudgetReason::Steps);
  EXPECT_EQ(S.str(), "budget-exhausted(steps)");
}

TEST(EngineStatusUnit, JsonFormatAndEscaping) {
  EngineStatus S;
  EXPECT_EQ(S.json(), "{\"status\":\"completed\",\"reason\":\"none\","
                      "\"quarantined\":[],\"faults\":0}");
  S.raise(EngineStatusCode::PatternQuarantined);
  S.QuarantinedPatterns = {"Epilog", "odd\"name"};
  S.FaultsAbsorbed = 2;
  EXPECT_EQ(S.json(),
            "{\"status\":\"pattern-quarantined\",\"reason\":\"none\","
            "\"quarantined\":[\"Epilog\",\"odd\\\"name\"],\"faults\":2}");
}

//===----------------------------------------------------------------------===//
// Matcher-level cooperative poll
//===----------------------------------------------------------------------===//

using BudgetMachineTest = pypm::testing::CoreFixture;

TEST_F(BudgetMachineTest, CancelledBudgetStopsDivergentMatch) {
  // μP(x)[x]. P(x) never consumes the term; per-attempt fuel would allow
  // ten million steps, but the budget poll (every 1024 steps) sees the
  // cancelled token and stops the machine as OutOfFuel almost at once.
  Symbol P = Symbol::intern("P"), X = Symbol::intern("x");
  const pattern::Pattern *Mu = PA.mu(P, {X}, {X}, PA.recCall(P, {X}));
  CancellationToken Tok;
  Tok.requestCancel();
  BudgetLimits L;
  L.Cancel = &Tok;
  Budget B(L);
  match::Machine::Options Opts;
  Opts.MaxSteps = 10'000'000;
  Opts.MaxMuUnfolds = 10'000'000;
  Opts.EngineBudget = &B;
  auto R = match::matchPattern(Mu, t("C"), Arena, Opts);
  EXPECT_EQ(R.Status, match::MachineStatus::OutOfFuel);
  EXPECT_LE(R.Stats.Steps, 2048u);
}

TEST_F(BudgetMachineTest, NullBudgetLimitsMatchUnchanged) {
  Symbol P = Symbol::intern("P"), X = Symbol::intern("x");
  const pattern::Pattern *Mu = PA.mu(P, {X}, {X}, PA.recCall(P, {X}));
  Budget B; // no limits, no token: the poll must never trip
  match::Machine::Options Opts;
  Opts.MaxMuUnfolds = 100;
  Opts.EngineBudget = &B;
  auto R = match::matchPattern(Mu, t("C"), Arena, Opts);
  EXPECT_EQ(R.Status, match::MachineStatus::OutOfFuel);
  EXPECT_EQ(R.Stats.MuUnfolds, 100u);
}

//===----------------------------------------------------------------------===//
// Engine-level governance
//===----------------------------------------------------------------------===//

TEST(EngineBudget, PreCancelledRunFiresNothing) {
  CancellationToken Tok;
  Tok.requestCancel();
  BudgetLimits L;
  L.Cancel = &Tok;
  Budget B(L);
  rewrite::RewriteOptions Opts;
  Opts.EngineBudget = &B;
  StressOutcome Out = runStressCase(1, Opts);
  EXPECT_EQ(Out.Stats.Status.Code, EngineStatusCode::Cancelled);
  EXPECT_EQ(Out.Stats.Status.Reason, BudgetReason::Cancelled);
  EXPECT_EQ(Out.Stats.TotalFired, 0u);

  // The graph is untouched: identical to a run that does no passes.
  rewrite::RewriteOptions NoPasses;
  NoPasses.MaxPasses = 0;
  EXPECT_EQ(Out.GraphText, runStressCase(1, NoPasses).GraphText);
}

TEST(EngineBudget, ExpiredDeadlineStopsRun) {
  BudgetLimits L;
  L.DeadlineSeconds = 1e-9; // expires before the first per-node poll
  Budget B(L);
  rewrite::RewriteOptions Opts;
  Opts.EngineBudget = &B;
  StressOutcome Out = runStressCase(2, Opts);
  EXPECT_EQ(Out.Stats.Status.Code, EngineStatusCode::BudgetExhausted);
  EXPECT_EQ(Out.Stats.Status.Reason, BudgetReason::Deadline);
}

TEST(EngineBudget, MemoryCeilingStopsRunImmediately) {
  BudgetLimits L;
  L.MaxMemoryBytes = 1; // any non-empty graph estimate exceeds this
  Budget B(L);
  rewrite::RewriteOptions Opts;
  Opts.EngineBudget = &B;
  StressOutcome Out = runStressCase(3, Opts);
  EXPECT_EQ(Out.Stats.Status.Code, EngineStatusCode::BudgetExhausted);
  EXPECT_EQ(Out.Stats.Status.Reason, BudgetReason::Memory);
  EXPECT_EQ(Out.Stats.TotalFired, 0u);
}

TEST(EngineBudget, StepCeilingLeavesValidGraph) {
  BudgetLimits L;
  L.MaxTotalSteps = 10;
  Budget B(L);
  rewrite::RewriteOptions Opts;
  Opts.EngineBudget = &B;
  StressOutcome Out = runStressCase(3, Opts);
  EXPECT_EQ(Out.Stats.Status.Code, EngineStatusCode::BudgetExhausted);
  EXPECT_EQ(Out.Stats.Status.Reason, BudgetReason::Steps);
  EXPECT_GT(B.stepsUsed(), 10u);

  // Whatever prefix committed, the result is a well-formed graph: it
  // parses back through the textual format without diagnostics. (Ids are
  // renumbered densely on reparse, so compare structure, not text.)
  term::Signature Sig;
  models::declareModelOps(Sig);
  DiagnosticEngine Diags;
  auto G = graph::parseGraphText(Out.GraphText, Sig, Diags);
  ASSERT_NE(G, nullptr);
  EXPECT_FALSE(Diags.hasErrors());
  std::string Rewritten = graph::writeGraphText(*G);
  EXPECT_EQ(std::count(Rewritten.begin(), Rewritten.end(), '\n'),
            std::count(Out.GraphText.begin(), Out.GraphText.end(), '\n'));
}

/// The determinism contract: a step-ceiling run — including where it
/// stops, what was quarantined, and every per-pattern counter — is
/// bit-identical at every thread count, because charging happens only in
/// committed attempt order.
class BudgetDifferentialTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BudgetDifferentialTest, StepCeilingIdenticalAcrossThreads) {
  unsigned Threads = GetParam();
  for (uint64_t Seed : {3u, 11u, 27u}) {
    for (uint64_t MaxSteps : {50u, 500u, 5000u}) {
      SCOPED_TRACE("seed=" + std::to_string(Seed) +
                   " maxSteps=" + std::to_string(MaxSteps));
      BudgetLimits L;
      L.MaxTotalSteps = MaxSteps;

      Budget SerialB(L);
      rewrite::RewriteOptions SerialOpts;
      SerialOpts.EngineBudget = &SerialB;
      StressOutcome Serial = runStressCase(Seed, SerialOpts);

      Budget ParB(L);
      rewrite::RewriteOptions ParOpts;
      ParOpts.EngineBudget = &ParB;
      ParOpts.NumThreads = Threads;
      StressOutcome Parallel = runStressCase(Seed, ParOpts);

      expectOutcomesEqual(Serial, Parallel,
                          pypm::testing::stressRepro(Seed, 0, Threads));
      EXPECT_EQ(SerialB.stepsUsed(), ParB.stepsUsed());
      EXPECT_EQ(SerialB.muUnfoldsUsed(), ParB.muUnfoldsUsed());
    }
  }
}

TEST_P(BudgetDifferentialTest, QuarantineIdenticalAcrossThreads) {
  // Starve every attempt (3 machine steps) so fuel exhaustion — and the
  // quarantine decisions it feeds — happens constantly; the quarantine
  // set and order must still be a pure function of committed state.
  unsigned Threads = GetParam();
  bool SawQuarantine = false;
  for (uint64_t Seed = 0; Seed != 10; ++Seed) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    rewrite::RewriteOptions SerialOpts;
    SerialOpts.MachineOpts.MaxSteps = 3;
    SerialOpts.QuarantineThreshold = 2;
    StressOutcome Serial = runStressCase(Seed, SerialOpts);

    rewrite::RewriteOptions ParOpts = SerialOpts;
    ParOpts.NumThreads = Threads;
    StressOutcome Parallel = runStressCase(Seed, ParOpts);

    expectOutcomesEqual(Serial, Parallel,
                        pypm::testing::stressRepro(Seed, 0, Threads));
    SawQuarantine |= Serial.Stats.Status.quarantined();
  }
  // The starved configuration must actually have exercised quarantine.
  EXPECT_TRUE(SawQuarantine);
}

INSTANTIATE_TEST_SUITE_P(Threads, BudgetDifferentialTest,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto &Info) {
                           return "T" + std::to_string(Info.param);
                         });

TEST(EngineQuarantine, StarvedRunQuarantinesAndCompletes) {
  DiagnosticEngine Diags;
  rewrite::RewriteOptions Opts;
  Opts.MachineOpts.MaxSteps = 3;
  Opts.QuarantineThreshold = 2;
  Opts.Diags = &Diags;
  StressOutcome Out = runStressCase(0, Opts);
  // The run finished (it did not wedge retrying the starved patterns),
  // reported the quarantine, and warned about each disabled pattern.
  ASSERT_TRUE(Out.Stats.Status.quarantined());
  EXPECT_EQ(Out.Stats.Status.Code, EngineStatusCode::PatternQuarantined);
  EXPECT_FALSE(Diags.hasErrors());
  std::string Rendered = Diags.renderAll();
  for (const std::string &Name : Out.Stats.Status.QuarantinedPatterns)
    EXPECT_NE(Rendered.find("pattern '" + Name + "' quarantined"),
              std::string::npos)
        << Rendered;
}

TEST(EngineQuarantine, ThresholdZeroDisablesQuarantine) {
  rewrite::RewriteOptions Opts;
  Opts.MachineOpts.MaxSteps = 3;
  Opts.QuarantineThreshold = 0;
  StressOutcome Out = runStressCase(0, Opts);
  EXPECT_FALSE(Out.Stats.Status.quarantined());
}

TEST(EngineBudget, MaxRewritesReportsAsBudgetExhausted) {
  // The legacy rewrite cap is part of the taxonomy now:
  // BudgetExhausted(rewrites), with hitRewriteLimit() as the bridge.
  rewrite::RewriteOptions Opts;
  Opts.MaxRewrites = 1;
  StressOutcome Out = runStressCase(4, Opts);
  if (Out.Stats.TotalFired >= 1) {
    EXPECT_TRUE(Out.Stats.hitRewriteLimit());
    EXPECT_EQ(Out.Stats.Status.str(), "budget-exhausted(rewrites)");
  }
}

TEST(EngineBudget, SummaryLeadsWithStatus) {
  BudgetLimits L;
  L.MaxTotalSteps = 10;
  Budget B(L);
  rewrite::RewriteOptions Opts;
  Opts.EngineBudget = &B;
  StressOutcome Out = runStressCase(3, Opts);
  EXPECT_NE(Out.Stats.summary().find("status=budget-exhausted(steps)"),
            std::string::npos)
      << Out.Stats.summary();
}

//===----------------------------------------------------------------------===//
// Partitioner governance
//===----------------------------------------------------------------------===//

class PartitionBudgetTest : public ::testing::Test {
protected:
  PartitionBudgetTest() : G(Sig) {
    models::declareModelOps(Sig);
    Lib = opt::compilePartition(Sig);
    // A stack of epilog regions: enough match attempts that a small step
    // ceiling stops the scan partway.
    graph::NodeId X = G.addLeaf(
        "Input", graph::TensorType::make(term::DType::F32, {8, 8}));
    for (int I = 0; I != 8; ++I) {
      graph::NodeId W = G.addLeaf(
          "Input", graph::TensorType::make(term::DType::F32, {8, 8}));
      graph::NodeId M = G.addNode(Sig.lookup("MatMul"), {X, W});
      SI.inferNode(G, M);
      X = G.addNode(Sig.lookup("Relu"), {M});
      SI.inferNode(G, X);
    }
    G.addOutput(X);
  }

  rewrite::PartitionResult partition(rewrite::PartitionOptions Opts = {}) {
    std::vector<Symbol> Frontier = {Symbol::intern("a"),
                                    Symbol::intern("b")};
    return rewrite::partitionGraph(G, *Lib->findPattern("MatMulEpilog"),
                                   Frontier, Opts);
  }

  term::Signature Sig;
  graph::Graph G;
  graph::ShapeInference SI;
  std::unique_ptr<pattern::Library> Lib;
};

TEST_F(PartitionBudgetTest, UnbudgetedScanCompletes) {
  rewrite::PartitionResult Full = partition();
  EXPECT_TRUE(Full.Status.ok());
  EXPECT_FALSE(Full.Regions.empty());
}

TEST_F(PartitionBudgetTest, StepCeilingStopsScanWithPrefix) {
  rewrite::PartitionResult Full = partition();

  BudgetLimits L;
  L.MaxTotalSteps = 20;
  Budget B(L);
  rewrite::PartitionOptions Opts;
  Opts.EngineBudget = &B;
  rewrite::PartitionResult P = partition(Opts);
  EXPECT_EQ(P.Status.Code, EngineStatusCode::BudgetExhausted);
  EXPECT_EQ(P.Status.Reason, BudgetReason::Steps);
  // The scan stopped early but everything found so far is intact — a
  // prefix of the full scan's regions (same outputs-downward order).
  EXPECT_LT(P.Regions.size(), Full.Regions.size());
  for (size_t I = 0; I != P.Regions.size(); ++I)
    EXPECT_EQ(P.Regions[I].Root, Full.Regions[I].Root);
}

TEST_F(PartitionBudgetTest, CancelledScanReportsCancelled) {
  CancellationToken Tok;
  Tok.requestCancel();
  BudgetLimits L;
  L.Cancel = &Tok;
  Budget B(L);
  rewrite::PartitionOptions Opts;
  Opts.EngineBudget = &B;
  rewrite::PartitionResult P = partition(Opts);
  EXPECT_EQ(P.Status.Code, EngineStatusCode::Cancelled);
  EXPECT_TRUE(P.Regions.empty());
}

//===----------------------------------------------------------------------===//
// Zoo differential under budget (real model graphs, full std pipeline)
//===----------------------------------------------------------------------===//

TEST(EngineBudget, ZooDifferentialUnderStepCeiling) {
  auto Suite = models::hfSuite();
  ASSERT_FALSE(Suite.empty());
  size_t Checked = 0;
  for (const models::ModelEntry &Model : Suite) {
    if (Checked == 3)
      break;
    ++Checked;
    auto Run = [&](unsigned NumThreads) {
      term::Signature Sig;
      auto G = Model.Build(Sig);
      opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
      BudgetLimits L;
      L.MaxTotalSteps = 2000;
      Budget B(L);
      rewrite::RewriteOptions Opts;
      Opts.NumThreads = NumThreads;
      Opts.EngineBudget = &B;
      StressOutcome Out;
      Out.Stats = rewrite::rewriteToFixpoint(*G, Pipe.Rules,
                                             graph::ShapeInference(), Opts);
      Out.GraphText = graph::writeGraphText(*G);
      return Out;
    };
    StressOutcome Serial = Run(0);
    for (unsigned Threads : {1u, 4u, 8u}) {
      SCOPED_TRACE(Model.Name + " @" + std::to_string(Threads));
      StressOutcome Parallel = Run(Threads);
      expectOutcomesEqual(Serial, Parallel,
                          Model.Name + " threads=0 vs " +
                              std::to_string(Threads));
    }
  }
}

} // namespace
