//===- tests/test_differential.cpp - VM vs declarative semantics ---------------===//
///
/// Randomized differential testing of the algorithmic semantics against the
/// declarative semantics — the executable counterpart of the paper's Coq
/// development (Theorems 1 and 2, `succ_sound` / `fail_sound`):
///
///   SuccessSound   success(θ, φ)  ⇒  p @ ⟨θ, φ⟩ ≈ t derivable
///   FailureSound   failure        ⇒  no witness exists (bounded-complete
///                                    enumeration finds none)
///   FirstComplete  a witness exists ⇒ the machine finds one
///   Weakening      p @ θ ≈ t ∧ θ ⊆ θ′  ⇒  p @ θ′ ≈ t  (Theorem 1)
///   SolutionsAgree the machine's solution stream ⊆ the declarative
///                  witness set (compared on user-visible variables)
///
/// Patterns are generated over every core construct (variables, nonlinear
/// uses, applications, alternates, guards, ∃/∃F, match constraints,
/// function variables, μ-recursion with a structurally decreasing step) so
/// the properties cover the full calculus. Each parameterized instance
/// fixes a seed and checks a few hundred random (pattern, term) pairs.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "support/Random.h"

using namespace pypm;
using namespace pypm::match;
using namespace pypm::pattern;

namespace {

class Generator {
public:
  Generator(uint64_t Seed, term::Signature &Sig, term::TermArena &Arena,
            PatternArena &PA)
      : R(Seed), Sig(Sig), Arena(Arena), PA(PA) {
    Consts = {Sig.getOrAddOp("c0", 0), Sig.getOrAddOp("c1", 0),
              Sig.getOrAddOp("c2", 0)};
    Unaries = {Sig.getOrAddOp("u0", 1, 1, "unary_pointwise"),
               Sig.getOrAddOp("u1", 1, 1, "unary_pointwise")};
    Binaries = {Sig.getOrAddOp("b0", 2), Sig.getOrAddOp("b1", 2)};
  }

  term::TermRef term(unsigned Depth) {
    if (Depth == 0 || R.chance(1, 3))
      return Arena.leaf(pick(Consts));
    if (R.chance(1, 2)) {
      term::TermRef C = term(Depth - 1);
      return Arena.make(pick(Unaries), {C});
    }
    term::TermRef A = term(Depth - 1);
    term::TermRef B = term(Depth - 1);
    return Arena.make(pick(Binaries), {A, B});
  }

  struct Scope {
    std::vector<Symbol> Vars{Symbol::intern("x"), Symbol::intern("y")};
    std::vector<Symbol> FunVars{Symbol::intern("f")};
  };

  const Pattern *pattern(unsigned Depth) {
    Scope S;
    return gen(Depth, S);
  }

private:
  Rng R;
  term::Signature &Sig;
  term::TermArena &Arena;
  PatternArena &PA;
  std::vector<term::OpId> Consts, Unaries, Binaries;
  uint64_t FreshCounter = 0;

  template <typename T> T pick(const std::vector<T> &V) {
    return V[R.below(V.size())];
  }

  Symbol freshName(const char *Base) {
    return Symbol::intern(std::string(Base) + "_g" +
                          std::to_string(FreshCounter++));
  }

  const GuardExpr *guard(const Scope &S) {
    Symbol Var = pick(S.Vars);
    static const Symbol Attrs[3] = {Symbol::intern("size"),
                                    Symbol::intern("depth"),
                                    Symbol::intern("arity")};
    const GuardExpr *Lhs = PA.attr(Var, Attrs[R.below(3)]);
    GuardKind Cmp = R.chance(1, 2) ? GuardKind::Le : GuardKind::Eq;
    const GuardExpr *Base = PA.binary(Cmp, Lhs, PA.intLit(R.range(0, 4)));
    if (R.chance(1, 4))
      return PA.notExpr(Base);
    if (R.chance(1, 4))
      return PA.binary(R.chance(1, 2) ? GuardKind::And : GuardKind::Or,
                       Base, guard(S));
    return Base;
  }

  const Pattern *gen(unsigned Depth, Scope &S) {
    if (Depth == 0)
      return R.chance(1, 2) ? PA.var(pick(S.Vars))
                            : PA.app(pick(Consts), {});
    switch (R.below(9)) {
    case 0:
      return PA.var(pick(S.Vars));
    case 1:
      return PA.app(pick(Unaries), {gen(Depth - 1, S)});
    case 2:
      return PA.app(pick(Binaries), {gen(Depth - 1, S), gen(Depth - 1, S)});
    case 3:
      return PA.alt(gen(Depth - 1, S), gen(Depth - 1, S));
    case 4:
      return PA.guarded(gen(Depth - 1, S), guard(S));
    case 5: {
      Symbol V = freshName("e");
      Scope Inner = S;
      Inner.Vars.push_back(V);
      return PA.exists(V, gen(Depth - 1, Inner));
    }
    case 6: {
      // p ; (p′ ≈ v) with v guaranteed to occur in p.
      Symbol V = pick(S.Vars);
      const Pattern *Sub = R.chance(1, 2)
                               ? PA.var(V)
                               : PA.app(pick(Unaries), {PA.var(V)});
      return PA.matchConstraint(Sub, gen(Depth - 1, S), V);
    }
    case 7: {
      unsigned Arity = R.chance(1, 2) ? 1 : 2;
      Symbol F = R.chance(1, 2) ? pick(S.FunVars) : freshName("F");
      std::vector<const Pattern *> Children;
      for (unsigned I = 0; I != Arity; ++I)
        Children.push_back(gen(Depth - 1, S));
      const Pattern *App = PA.funVarApp(F, std::move(Children));
      if (R.chance(1, 2))
        return PA.existsFun(F, App);
      return App;
    }
    case 8: {
      // Structurally decreasing μ: each unfold consumes one constructor,
      // so a fuel of term-depth + slack decides the match.
      Symbol Self = freshName("P");
      Symbol Param = freshName("r");
      Scope Inner = S;
      Inner.Vars.push_back(Param);
      const Pattern *Step =
          R.chance(1, 2)
              ? PA.app(pick(Unaries), {PA.recCall(Self, {Param})})
              : PA.app(pick(Binaries), {PA.recCall(Self, {Param}),
                                        gen(Depth - 1, Inner)});
      const Pattern *Base = gen(Depth - 1, Inner);
      return PA.mu(Self, {Param}, {pick(S.Vars)}, PA.alt(Step, Base));
    }
    }
    return PA.var(pick(S.Vars));
  }
};

/// Restriction of a witness to "user-visible" variables: generated fresh
/// binder names (from the generator or from μ-unfolding) contain marker
/// characters; witnesses are compared modulo those.
bool isUserVisible(Symbol S) {
  std::string_view Str = S.str();
  return Str.find('$') == std::string_view::npos &&
         Str.find("_g") == std::string_view::npos;
}

Witness restrict(const Witness &W) {
  Witness Out;
  for (const auto &[K, V] : W.Theta)
    if (isUserVisible(K))
      Out.Theta.bind(K, V);
  for (const auto &[K, V] : W.Phi)
    if (isUserVisible(K))
      Out.Phi.bind(K, V);
  return Out;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(DifferentialTest, MachineAgreesWithDeclarativeSemantics) {
  term::Signature Sig;
  term::TermArena Arena(Sig);
  PatternArena PA;
  Generator Gen(GetParam() * 7919 + 13, Sig, Arena, PA);

  DeclOptions DOpts;
  DOpts.MuFuel = 48;
  Machine::Options MOpts;
  MOpts.MaxMuUnfolds = 4096;

  unsigned Successes = 0, Failures = 0;
  for (int Iter = 0; Iter != 250; ++Iter) {
    term::TermRef T = Gen.term(4);
    const Pattern *P = Gen.pattern(3);
    MatchResult VM = matchPattern(P, T, Arena, MOpts);
    EnumResult Decl = enumerateWitnesses(P, T, Arena, DOpts);

    if (VM.Status == MachineStatus::Success) {
      ++Successes;
      // Theorem 2 (success soundness): the machine's witness derives the
      // declarative judgment.
      EXPECT_TRUE(checkDerivable(P, T, VM.W.Theta, VM.W.Phi, Arena, DOpts))
          << "VM witness not derivable for pattern "
          << P->toString(Sig) << " against " << Arena.toString(T)
          << " with " << toString(VM.W, Sig);

      // Theorem 1 (weakening): extending θ preserves derivability.
      Subst Bigger = VM.W.Theta;
      Bigger.bind(Symbol::intern("zzz_extra"), T);
      EXPECT_TRUE(checkDerivable(P, T, Bigger, VM.W.Phi, Arena, DOpts));

      // The machine's witness appears in the declarative witness set
      // (modulo generated binder names).
      if (!Decl.Incomplete) {
        Witness VMVisible = restrict(VM.W);
        bool Found = false;
        for (const Witness &W : Decl.Witnesses)
          Found |= restrict(W) == VMVisible;
        EXPECT_TRUE(Found)
            << "VM witness missing from enumeration for "
            << P->toString(Sig) << " against " << Arena.toString(T);
      }
    } else if (VM.Status == MachineStatus::Failure) {
      ++Failures;
      // Theorem 2 (failure soundness): no witness exists.
      if (!Decl.Incomplete) {
        EXPECT_TRUE(Decl.Witnesses.empty())
            << "VM failed but witnesses exist for " << P->toString(Sig)
            << " against " << Arena.toString(T) << ", e.g. "
            << toString(Decl.Witnesses.front(), Sig);
      }
    }

    // Completeness of the search: if the bounded-complete enumeration
    // found a witness, the machine must find one too.
    if (!Decl.Incomplete && !Decl.Witnesses.empty()) {
      EXPECT_EQ(VM.Status, MachineStatus::Success)
          << P->toString(Sig) << " against " << Arena.toString(T);
    }
  }
  // The generator should produce a healthy mix, not all-fail or all-match.
  EXPECT_GT(Successes, 5u);
  EXPECT_GT(Failures, 5u);
}

TEST_P(DifferentialTest, SolutionStreamIsSoundAndDeduplicated) {
  term::Signature Sig;
  term::TermArena Arena(Sig);
  PatternArena PA;
  Generator Gen(GetParam() * 104729 + 7, Sig, Arena, PA);

  DeclOptions DOpts;
  DOpts.MuFuel = 48;

  for (int Iter = 0; Iter != 80; ++Iter) {
    term::TermRef T = Gen.term(3);
    const Pattern *P = Gen.pattern(3);
    std::vector<Witness> Stream = allSolutions(P, T, Arena, 64);
    EnumResult Decl = enumerateWitnesses(P, T, Arena, DOpts);
    for (const Witness &W : Stream) {
      // Every streamed solution is declaratively derivable.
      EXPECT_TRUE(checkDerivable(P, T, W.Theta, W.Phi, Arena, DOpts))
          << P->toString(Sig) << " against " << Arena.toString(T);
      if (!Decl.Incomplete) {
        bool Found = false;
        for (const Witness &D : Decl.Witnesses)
          Found |= restrict(D) == restrict(W);
        EXPECT_TRUE(Found);
      }
    }
    // And the machine cannot stream more distinct restricted witnesses
    // than the declarative relation contains.
    if (!Decl.Incomplete && Stream.size() < 64) {
      std::vector<Witness> Restricted;
      for (const Witness &W : Stream) {
        Witness RW = restrict(W);
        bool Dup = false;
        for (const Witness &Seen : Restricted)
          Dup |= Seen == RW;
        if (!Dup)
          Restricted.push_back(RW);
      }
      EXPECT_LE(Restricted.size(), Decl.Witnesses.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(0, 12));
