//===- examples/graph_partitioning.cpp - Directed graph partitioning (§4.2) ---===//
///
/// \file
/// Section 4.2's use case: when no hand-written replacement exists for a
/// complex matched family (Fig. 14's "matmul followed by some number of
/// pointwise operations"), use the pattern to *partition* the graph into
/// regions and hand each region to a compiler that can fuse it "just in
/// time". The pipeline here: contract decomposed GELU (so the towers are
/// visible), partition with MatMulEpilogExt, price each region as one
/// fused kernel with the cost model, substitute, and compare.
///
/// Run:  ./build/examples/graph_partitioning
///
//===----------------------------------------------------------------------===//

#include "models/Transformers.h"
#include "opt/StdPatterns.h"
#include "rewrite/Partition.h"
#include "rewrite/RewriteEngine.h"
#include "sim/CostModel.h"

#include <cstdio>

using namespace pypm;

int main() {
  std::printf("Fig. 14's partition patterns:\n%s\n",
              std::string(opt::partitionSource()).c_str());

  term::Signature Sig;
  models::TransformerConfig Cfg;
  Cfg.Name = "bert-like";
  Cfg.Layers = 4;
  Cfg.Hidden = 512;
  Cfg.SeqLen = 128;
  Cfg.Batch = 4;
  auto G = models::buildTransformer(Sig, Cfg);
  sim::CostModel CM;
  double T0 = CM.graphCost(*G).Seconds;

  // Stage 1: contract decomposed GELU so epilog towers become visible.
  auto Epilog = opt::compileEpilog(Sig);
  rewrite::RuleSet GeluOnly;
  for (const pattern::NamedPattern &NP : Epilog->PatternDefs)
    if (NP.Name == Symbol::intern("GeluExpanded"))
      GeluOnly.addPattern(NP, Epilog->rulesFor(NP.Name));
  rewrite::rewriteToFixpoint(*G, GeluOnly, graph::ShapeInference());

  // Stage 2: partition.
  auto Partition = opt::compilePartition(Sig);
  Symbol Frontier[3] = {Symbol::intern("a"), Symbol::intern("b"),
                        Symbol::intern("b1")};
  rewrite::PartitionResult PR = rewrite::partitionGraph(
      *G, *Partition->findPattern("MatMulEpilogExt"), Frontier);
  std::printf("partitioning: %llu matches, %zu regions accepted "
              "(%llu overlap / %llu escape rejections)\n\n",
              (unsigned long long)PR.Stats.Matches, PR.Regions.size(),
              (unsigned long long)PR.Stats.OverlapRejects,
              (unsigned long long)PR.Stats.EscapeRejects);

  for (size_t I = 0; I != PR.Regions.size() && I < 8; ++I) {
    const rewrite::Region &R = PR.Regions[I];
    std::printf("  region %zu: root=%u ops=[", I, R.Root);
    for (size_t J = 0; J != R.Interior.size(); ++J)
      std::printf("%s%s", J ? " " : "",
                  std::string(Sig.name(G->op(R.Interior[J])).str()).c_str());
    sim::KernelCost K =
        CM.fusedRegionCost(*G, R.Interior, R.Frontier, R.Root);
    std::printf("] inputs=%zu fused-kernel=%.1fus\n", R.Frontier.size(),
                K.Seconds * 1e6);
  }
  if (PR.Regions.size() > 8)
    std::printf("  … and %zu more\n", PR.Regions.size() - 8);

  // Stage 3: "recursively compile" — substitute each region by one fused
  // kernel carrying its summed work.
  std::vector<graph::NodeId> Fused =
      rewrite::fuseRegions(*G, PR, graph::ShapeInference());
  double T1 = CM.graphCost(*G).Seconds;
  std::printf("\nfused %zu regions: %.3fms -> %.3fms (%.3fx)\n",
              Fused.size(), T0 * 1e3, T1 * 1e3, T0 / T1);
  DiagnosticEngine Diags;
  if (!G->verify(Diags)) {
    std::fprintf(stderr, "graph invalid after fusion:\n%s",
                 Diags.renderAll().c_str());
    return 1;
  }
  std::printf("graph verifies after fusion.\n");
  return 0;
}
