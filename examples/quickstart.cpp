//===- examples/quickstart.cpp - Paper Figure 1, end to end -------------------===//
///
/// \file
/// The cuBLAS example that opens the paper (§1–§2, Fig. 1): declare
/// operators, write the MMxyT pattern and its dtype-dispatching rule in
/// the PyPM dialect, build a small tensor graph, and run the DLCB rewrite
/// pass. Shows the match substitution, the fired rule, and the graph
/// before and after.
///
/// Run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "dsl/Sema.h"
#include "graph/Dot.h"
#include "graph/ShapeInference.h"
#include "graph/TermView.h"
#include "match/Machine.h"
#include "rewrite/RewriteEngine.h"

#include <cstdio>

using namespace pypm;

int main() {
  // --- 1. A PyPM program: Figure 1, in the textual dialect. -------------
  const char *Program = R"(
    op MatMul(2);
    op Trans(1);
    op cublasMM_xyT_f32(2);
    op cublasMM_xyT_i8(2);

    pattern MMxyT(x, y) {
      assert x.shape.rank == 2;
      assert y.shape.rank == 2;
      yt = Trans(y);
      return MatMul(x, yt);
    }

    rule cublasrule for MMxyT(x, y) {
      assert (x.eltType == f32 && y.eltType == f32)
          || (x.eltType == i8 && y.eltType == i8);
      if x.eltType == f32 && y.eltType == f32 {
        return cublasMM_xyT_f32(x, y);
      } elif x.eltType == i8 && y.eltType == i8 {
        return cublasMM_xyT_i8(x, y);
      }
    }
  )";

  term::Signature Sig;
  DiagnosticEngine Diags;
  auto Lib = dsl::compile(Program, Sig, Diags);
  if (!Lib) {
    std::fprintf(stderr, "%s", Diags.renderAll().c_str());
    return 1;
  }
  const pattern::NamedPattern *MMxyT = Lib->findPattern("MMxyT");
  std::printf("compiled pattern  %s = %s\n", "MMxyT",
              MMxyT->Pat->toString(Sig).c_str());
  for (const pattern::RewriteRule &R : Lib->Rules)
    std::printf("compiled rule     %s: guard %s -> %s\n",
                std::string(R.Name.str()).c_str(),
                R.Guard ? R.Guard->toString().c_str() : "<none>",
                R.Rhs->toString(Sig).c_str());

  // --- 2. A computation graph computing A · Bᵀ on f32 matrices. ---------
  graph::Graph G(Sig);
  graph::NodeId A = G.addLeaf(
      "Input", graph::TensorType::make(term::DType::F32, {512, 256}));
  graph::NodeId B = G.addLeaf(
      "Input", graph::TensorType::make(term::DType::F32, {128, 256}));
  graph::NodeId T = G.addNode(Sig.lookup("Trans"), {B});
  graph::NodeId M = G.addNode(Sig.lookup("MatMul"), {A, T});
  G.addOutput(M);
  graph::ShapeInference SI;
  SI.inferAll(G);
  std::printf("\nbefore:\n%s", graph::toDot(G, "before").c_str());

  // --- 3. Match the pattern at the root and show the witness. -----------
  term::TermArena Arena(Sig);
  graph::TermView View(G, Arena);
  match::MatchResult R = match::matchPattern(MMxyT->Pat, View.termFor(M),
                                             Arena);
  std::printf("\nmatch at root: %s\n",
              R.matched() ? "success" : "failure");
  if (R.matched())
    std::printf("substitution θ = %s\n", match::toString(R.W, Sig).c_str());

  // --- 4. Run the rewrite pass to fixpoint. ------------------------------
  rewrite::RuleSet Rules;
  Rules.addLibrary(*Lib);
  rewrite::RewriteStats Stats = rewrite::rewriteToFixpoint(G, Rules, SI);
  std::printf("\nrewrite: %s\n", Stats.summary().c_str());
  std::printf("\nafter:\n%s", graph::toDot(G, "after").c_str());
  std::printf("result: %zu cublas call(s), %zu naive matmul(s) remain\n",
              G.countOps("cublasMM_xyT_f32"), G.countOps("MatMul"));
  return 0;
}
