//===- examples/gelu_fusion.cpp - Pattern alternates on real spellings --------===//
///
/// \file
/// Section 2.1's motivating example: across the HuggingFace transformers,
/// the x/2 inside GELU appears both as Div(x, 2) and Mul(x, 0.5). One
/// PyPM pattern with two Half alternates covers both. This example builds
/// two transformer models with the two spellings, shows the decomposed
/// GELU subgraphs, and runs the Epilog library over both — the same rules
/// contract both spellings and fuse the result into the matmul feeding it.
///
/// Run:  ./build/examples/gelu_fusion
///
//===----------------------------------------------------------------------===//

#include "models/Transformers.h"
#include "opt/StdPatterns.h"
#include "rewrite/RewriteEngine.h"
#include "sim/CostModel.h"

#include <cstdio>

using namespace pypm;

static void runOne(models::TransformerConfig::HalfStyle Half,
                   const char *Label) {
  term::Signature Sig;
  models::TransformerConfig Cfg;
  Cfg.Name = Label;
  Cfg.Layers = 2;
  Cfg.Hidden = 256;
  Cfg.SeqLen = 128;
  Cfg.Batch = 4;
  Cfg.Half = Half;
  auto G = models::buildTransformer(Sig, Cfg);

  sim::CostModel CM;
  sim::GraphCost Before = CM.graphCost(*G);

  opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::EpilogOnly);
  rewrite::RewriteStats Stats =
      rewrite::rewriteToFixpoint(*G, Pipe.Rules, graph::ShapeInference());
  sim::GraphCost After = CM.graphCost(*G);

  std::printf("%-10s  gelu-contractions=%llu epilog-fusions=%zu  "
              "kernels %u -> %u  time %.3fms -> %.3fms  speedup %.3fx\n",
              Label,
              (unsigned long long)Stats.PerPattern.at("GeluExpanded")
                  .RulesFired,
              G->countOps("GemmBiasEpilog") + G->countOps("GemmEpilog"),
              Before.Kernels, After.Kernels, Before.Seconds * 1e3,
              After.Seconds * 1e3, Before.Seconds / After.Seconds);
}

int main() {
  std::printf("The Half(x) pattern alternates (Fig. 2):\n%.*s\n",
              460, opt::epilogSource().data());
  std::printf("Fusing both HuggingFace GELU spellings with ONE pattern "
              "library:\n\n");
  runOne(models::TransformerConfig::HalfStyle::DivTwo, "Div(x,2)");
  runOne(models::TransformerConfig::HalfStyle::MulHalf, "Mul(x,0.5)");
  std::printf("\nBoth spellings contract to the fused Gelu operator and "
              "then fold into the GEMM epilog —\nwithout alternates this "
              "would need one pattern per spelling per surrounding "
              "context (§2.1).\n");
  return 0;
}
