//===- examples/mha_fusion.cpp - Fused multi-head attention (§4.1) ------------===//
///
/// \file
/// The paper's flagship optimization: recognize softmax(α·Q·Kᵀ)·V — as
/// frontends actually emit it, "three matrix products, a transpose, and a
/// row-wise softmax" — and replace it with the FMHA fused kernel. This
/// example sweeps sequence lengths on a BERT-like model and reports the
/// simulated inference time for all four benchmark configurations
/// (the per-model slice of Figures 10).
///
/// Run:  ./build/examples/mha_fusion
///
//===----------------------------------------------------------------------===//

#include "models/Transformers.h"
#include "opt/StdPatterns.h"
#include "rewrite/RewriteEngine.h"
#include "sim/CostModel.h"

#include <cstdio>

using namespace pypm;

int main() {
  std::printf("The MHA pattern (both scale spellings via alternates):\n%s\n",
              std::string(opt::fmhaSource()).c_str());

  std::printf("%-8s | %12s %12s %12s %12s | %s\n", "seqlen", "none(ms)",
              "fmha(ms)", "epilog(ms)", "both(ms)", "best speedup");
  for (int SeqLen : {64, 128, 256, 512, 1024}) {
    double Times[4];
    int I = 0;
    for (auto Config : {opt::OptConfig::None, opt::OptConfig::FmhaOnly,
                        opt::OptConfig::EpilogOnly, opt::OptConfig::Both}) {
      term::Signature Sig;
      models::TransformerConfig Cfg;
      Cfg.Name = "bert-like";
      Cfg.Layers = 4;
      Cfg.Hidden = 512;
      Cfg.SeqLen = SeqLen;
      Cfg.Batch = 4;
      auto G = models::buildTransformer(Sig, Cfg);
      opt::Pipeline Pipe = opt::makePipeline(Sig, Config);
      rewrite::rewriteToFixpoint(*G, Pipe.Rules, graph::ShapeInference());
      Times[I++] = sim::CostModel().graphCost(*G).Seconds * 1e3;
    }
    std::printf("%-8d | %12.3f %12.3f %12.3f %12.3f | %.3fx\n", SeqLen,
                Times[0], Times[1], Times[2], Times[3],
                Times[0] / Times[3]);
  }
  std::printf("\nFMHA gains grow with sequence length (the S×S score "
              "intermediates it eliminates grow\nquadratically), while the "
              "epilog fusion's benefit is roughly constant per layer.\n");
  return 0;
}
