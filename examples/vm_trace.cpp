//===- examples/vm_trace.cpp - Watching the algorithmic semantics run ----------===//
///
/// \file
/// Steps the backtracking machine of §3.1.2 one transition at a time on
/// the paper's non-completeness example — matching f(c1, c2) against
/// f(x, y) ‖ f(y, x) — printing each state in the paper's notation:
/// running(θ, stk, k) with the continuation and backtrack stack visible.
/// Then resumes past the first success to enumerate the second witness
/// the declarative semantics admits.
///
/// Run:  ./build/examples/vm_trace
///
//===----------------------------------------------------------------------===//

#include "match/Declarative.h"
#include "match/Machine.h"
#include "term/TermParser.h"

#include <cstdio>

using namespace pypm;

int main() {
  term::Signature Sig;
  term::TermArena Arena(Sig);
  pattern::PatternArena PA;

  term::TermRef T = term::parseTermOrDie("f(c1, c2)", Sig, Arena);
  const pattern::Pattern *P = PA.alt(
      PA.app(Sig.lookup("f"), {PA.var("x"), PA.var("y")}),
      PA.app(Sig.lookup("f"), {PA.var("y"), PA.var("x")}));

  std::printf("pattern  p = %s\n", P->toString(Sig).c_str());
  std::printf("term     t = %s\n\n", Arena.toString(T).c_str());

  match::Machine M(Arena);
  M.start(P, T);
  std::printf("initial  %s\n", M.describeState(Sig).c_str());
  unsigned Step = 0;
  while (M.status() == match::MachineStatus::Running) {
    M.step();
    std::printf("step %-3u %s\n", ++Step, M.describeState(Sig).c_str());
  }

  std::printf("\nThe machine is deterministic and left-eager: the first "
              "witness is always\n{x -> c1, y -> c2} (§3.1.2). resume() "
              "backtracks into the saved choice point:\n\n");
  M.resume();
  std::printf("resumed  %s\n", M.describeState(Sig).c_str());

  match::EnumResult Decl = match::enumerateWitnesses(P, T, Arena);
  std::printf("\ndeclarative witness set (%zu):\n", Decl.Witnesses.size());
  for (const match::Witness &W : Decl.Witnesses)
    std::printf("  %s\n", match::toString(W, Sig).c_str());
  std::printf("\nTheorem 2 in action: every machine answer appears in the "
              "declarative set; the\nmachine is sound but (first-answer) "
              "incomplete.\n");
  return 0;
}
