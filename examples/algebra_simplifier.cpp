//===- examples/algebra_simplifier.cpp - PyPM beyond tensor compilers ----------===//
///
/// \file
/// The paper positions PyPM next to general rewriting systems (egg,
/// Prolog-family languages, §1/§5); CorePyPM itself is parameterized over
/// an arbitrary signature Σ. This example instantiates it for a different
/// domain — a small algebraic simplifier over +, *, neg — built entirely
/// through the fluent C++ builder, and rewrites expressions to fixpoint:
///
///   x + 0 → x        x * 1 → x        x * 0 → 0
///   neg(neg(x)) → x  (x + y) * z → x*z + y*z   (when asked to distribute)
///
/// Run:  ./build/examples/algebra_simplifier
///
//===----------------------------------------------------------------------===//

#include "frontend/Builder.h"
#include "graph/ShapeInference.h"
#include "graph/TermView.h"
#include "rewrite/RewriteEngine.h"

#include <cstdio>

using namespace pypm;
using namespace pypm::frontend;

int main() {
  term::Signature Sig;
  ModuleBuilder B(Sig);
  auto Plus = B.op("Plus", 2);
  auto Times = B.op("Times", 2);
  auto Neg = B.op("Neg", 1);
  B.op("Const", 0); // matched via value_u6, as in the tensor dialect

  // x + 0 → x
  {
    auto P = B.pattern("AddZero", {"x"});
    P.ret(Plus(P.arg("x"), P.lit(0.0)));
    P.done();
    auto R = B.rule("add_zero", "AddZero");
    R.ret(R.arg("x").rhs());
  }
  // x * 1 → x
  {
    auto P = B.pattern("MulOne", {"x"});
    P.ret(Times(P.arg("x"), P.lit(1.0)));
    P.done();
    auto R = B.rule("mul_one", "MulOne");
    R.ret(R.arg("x").rhs());
  }
  // neg(neg(x)) → x
  {
    auto P = B.pattern("DoubleNeg", {"x"});
    P.ret(Neg(Neg(P.arg("x"))));
    P.done();
    auto R = B.rule("double_neg", "DoubleNeg");
    R.ret(R.arg("x").rhs());
  }

  auto Lib = B.finish();
  if (!Lib)
    return 1;

  // The expression graph: neg(neg(a * 1)) + 0.
  graph::Graph G(Sig);
  graph::NodeId A = G.addLeaf(
      "Input", graph::TensorType::make(term::DType::F64, {1}));
  graph::NodeId MulN = G.addNode(Times.id(), {A, G.addConst(1.0)});
  graph::NodeId NegNeg =
      G.addNode(Neg.id(), {G.addNode(Neg.id(), {MulN})});
  graph::NodeId Root = G.addNode(Plus.id(), {NegNeg, G.addConst(0.0)});
  G.addOutput(Root);
  graph::ShapeInference SI;
  SI.inferAll(G);

  term::TermArena Arena(Sig);
  {
    graph::TermView View(G, Arena);
    std::printf("before: %s\n",
                Arena.toString(View.termFor(G.outputs()[0])).c_str());
  }

  rewrite::RuleSet Rules;
  Rules.addLibrary(*Lib);
  rewrite::RewriteStats Stats =
      rewrite::rewriteToFixpoint(G, Rules, SI);

  {
    graph::TermView View(G, Arena);
    std::printf("after:  %s\n",
                Arena.toString(View.termFor(G.outputs()[0])).c_str());
  }
  std::printf("rules fired: %llu (expected 3: mul_one, double_neg, "
              "add_zero)\n",
              (unsigned long long)Stats.TotalFired);
  std::printf("\nSame calculus, same machine, different Σ — the pattern "
              "language is not tensor-specific.\n");
  return Stats.TotalFired == 3 ? 0 : 1;
}
